"""Reference interpreter for element IR.

This is the executable semantics of the DSL: the Python backend's
generated code, the eBPF/P4 models, and every optimization pass are all
tested against it (differential testing). It is also used directly as the
execution engine for data-plane processors in the simulator.

Rows are dictionaries. Input-tuple fields use plain string keys; columns
joined in from state tables use ``(table, column)`` tuple keys, so the
two namespaces cannot collide and emitted tuples are recovered by
dropping tuple keys.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..errors import RuntimeFault
from ..state.table import StateStore, StateTable
from .expr_utils import EvalEnv, _truthy, evaluate
from .nodes import (
    AdvanceInput,
    AssignVar,
    DeleteRows,
    ElementIR,
    EmitRows,
    FilterRows,
    HandlerIR,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    Scan,
    StatementIR,
    UpdateRows,
)

Row = Dict[str, object]


class ElementInstance:
    """One running replica of a compiled element, with its own state.

    ``process(tuple, kind)`` implements the paper's element contract
    (§5.1): consume one RPC tuple, read/write internal state, and produce
    zero or more output tuples.
    """

    def __init__(
        self,
        ir: ElementIR,
        registry: Optional[FunctionRegistry] = None,
        on_func_call: Optional[Callable] = None,
    ):
        self.ir = ir
        self.registry = registry or DEFAULT_REGISTRY
        self.on_func_call = on_func_call
        initial_vars = {decl.name: decl.init.value for decl in ir.vars}
        self.state = StateStore(ir.states, initial_vars)
        #: members completed before a fused element's internal drop
        self.fused_progress = 0
        self._run_init()

    # -- lifecycle -----------------------------------------------------------

    def _run_init(self) -> None:
        for stmt in self.ir.init:
            self._execute_statement(stmt, input_row=None)

    def clone_fresh(self) -> "ElementInstance":
        """A new instance with freshly initialized state (scale-out of
        stateless or re-initializable elements)."""
        return ElementInstance(self.ir, self.registry, self.on_func_call)

    # -- the element contract ---------------------------------------------

    def process(self, rpc: Row, kind: str) -> List[Row]:
        """Run the ``on <kind>`` handler over one RPC tuple.

        Returns emitted tuples: ``[]`` means the element dropped the RPC,
        more than one means fan-out (e.g. mirroring).
        """
        handler = self.ir.handler(kind)
        if handler is None:
            # No handler for this direction: forward unchanged.
            return [dict(rpc)]
        return self._run_handler(handler, rpc)

    def _run_handler(self, handler: HandlerIR, rpc: Row) -> List[Row]:
        emitted: List[Row] = []
        self.fused_progress = 0
        current = rpc
        for stmt in handler.statements:
            if len(stmt.ops) == 1 and isinstance(stmt.ops[0], AdvanceInput):
                # fusion seam: previous member's single output becomes
                # the next member's input; no output = fused drop
                if not emitted:
                    return []
                current = emitted[0]
                emitted = []
                self.fused_progress += 1
                continue
            emitted.extend(self._execute_statement(stmt, input_row=current))
        return emitted

    # -- statement execution ----------------------------------------------

    def _env(self, row: Row) -> EvalEnv:
        return EvalEnv(
            row=row,
            vars=self.state.vars,
            tables=self.state.tables,
            registry=self.registry,
            on_func_call=self.on_func_call,
        )

    def _execute_statement(
        self, stmt: StatementIR, input_row: Optional[Row]
    ) -> List[Row]:
        rows: List[Row] = []
        for op in stmt.ops:
            if isinstance(op, Scan):
                if input_row is None:
                    raise RuntimeFault("Scan outside a handler")
                rows = [dict(input_row)]
            elif isinstance(op, JoinState):
                rows = self._join(rows, op)
            elif isinstance(op, FilterRows):
                rows = [
                    row
                    for row in rows
                    if _truthy(evaluate(op.predicate, self._env(row)))
                ]
            elif isinstance(op, Project):
                rows = [self._project(row, op) for row in rows]
            elif isinstance(op, EmitRows):
                return [
                    {k: v for k, v in row.items() if isinstance(k, str)}
                    for row in rows
                ]
            elif isinstance(op, InsertRows):
                table = self.state.table(op.table)
                for row in rows:
                    table.insert(
                        {k: v for k, v in row.items() if isinstance(k, str)}
                    )
            elif isinstance(op, InsertLiterals):
                table = self.state.table(op.table)
                for values in op.rows:
                    table.insert_values(values)
            elif isinstance(op, UpdateRows):
                self._update(op, input_row or {})
            elif isinstance(op, DeleteRows):
                self._delete(op, input_row or {})
            elif isinstance(op, AssignVar):
                self._assign(op, input_row or {})
            else:
                raise RuntimeFault(f"unknown op {op!r}")
        return []

    def _join(self, rows: List[Row], op: JoinState) -> List[Row]:
        table = self.state.table(op.table)
        joined: List[Row] = []
        for row in rows:
            for state_row in table.rows():
                candidate = dict(row)
                for column, value in state_row.items():
                    candidate[(op.table, column)] = value
                if _truthy(evaluate(op.on, self._env(candidate))):
                    joined.append(candidate)
        return joined

    def _project(self, row: Row, op: Project) -> Row:
        output: Row = {}
        if op.keep_input:
            output.update({k: v for k, v in row.items() if isinstance(k, str)})
        for table in op.star_tables:
            for key, value in row.items():
                if isinstance(key, tuple) and key[0] == table:
                    output[key[1]] = value
        env = self._env(row)
        for name, expr in op.items:
            output[name] = evaluate(expr, env)
        # keep joined columns visible to later pipeline stages
        for key, value in row.items():
            if isinstance(key, tuple) and key not in output:
                output[key] = value
        return output

    def _row_env(self, table: StateTable, state_row: Row, input_row: Row) -> EvalEnv:
        combined: Row = dict(input_row)
        for column, value in state_row.items():
            combined[(table.name, column)] = value
        return self._env(combined)

    def _update(self, op: UpdateRows, input_row: Row) -> None:
        table = self.state.table(op.table)

        def predicate(state_row: Row) -> bool:
            if op.where is None:
                return True
            return _truthy(
                evaluate(op.where, self._row_env(table, state_row, input_row))
            )

        def updater(state_row: Row) -> Dict[str, object]:
            env = self._row_env(table, state_row, input_row)
            return {col: evaluate(expr, env) for col, expr in op.assignments}

        table.update_where(predicate, updater)

    def _delete(self, op: DeleteRows, input_row: Row) -> None:
        table = self.state.table(op.table)

        def predicate(state_row: Row) -> bool:
            if op.where is None:
                return True
            return _truthy(
                evaluate(op.where, self._row_env(table, state_row, input_row))
            )

        table.delete_where(predicate)

    def _assign(self, op: AssignVar, input_row: Row) -> None:
        env = self._env(dict(input_row))
        if op.where is not None and not _truthy(evaluate(op.where, env)):
            return
        self.state.vars[op.var] = evaluate(op.expr, env)


class ChainExecutor:
    """Execute a whole element chain over RPC tuples.

    Requests traverse the chain in order; responses traverse it reversed
    (the receiver-side element runs first on the way back), matching the
    runtime's dispatch. This is the reference semantics the translation
    validator replays rewritten chains against, and is also handy in
    tests that want chain-level behaviour without a simulator.
    """

    def __init__(
        self,
        elements: List[ElementIR],
        registry: Optional[FunctionRegistry] = None,
    ):
        self.instances = [ElementInstance(ir, registry) for ir in elements]

    def process(self, rpc: Row, kind: str) -> List[Row]:
        """All tuples leaving the far end of the chain for one RPC
        (``[]`` when some element dropped it; >1 on fan-out)."""
        ordered = (
            self.instances
            if kind == "request"
            else list(reversed(self.instances))
        )
        rows = [dict(rpc)]
        for instance in ordered:
            next_rows: List[Row] = []
            for row in rows:
                next_rows.extend(instance.process(row, kind))
            rows = next_rows
            if not rows:
                return []
        return rows

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-element state snapshots, keyed by element name."""
        return {
            instance.ir.name: instance.state.snapshot()
            for instance in self.instances
        }
