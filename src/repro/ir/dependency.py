"""Commutativity and dependency analysis between chain elements.

The compiler may reorder or parallelize elements only when doing so
preserves semantics (paper §3, Figure 2 configuration 3). Two elements
commute when, for every RPC, running them in either order produces the
same emitted tuples, the same state mutations, and the same drops.

We use a sound (conservative) decision procedure over the static
analyses:

1. *Field conflicts* — neither element writes a field the other reads or
   writes (classic Bernstein conditions on the tuple).
2. *Drop vs. effects* — if A may drop the RPC and B has observable
   effects (state writes, mirrored copies), then "B then A" performs B's
   effects on RPCs that "A then B" would never show to B.
3. *Drop vs. nondeterminism of drops* — two droppers commute (the kept
   set is the intersection of two order-independent predicates) provided
   their predicates don't read each other's writes, which rule 1 covers.
4. *Narrowing* — an element that narrows the tuple (explicit projection
   without ``*``) is a barrier: reordering across it changes what fields
   its successor sees, which rule 1 already catches via writes; narrowing
   is additionally treated as writing "all fields" to stay sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from .analysis import ElementAnalysis

#: Sentinel meaning "the element's write set is the whole tuple".
ALL_FIELDS = "<all>"


def _write_set(analysis: ElementAnalysis) -> Set[str]:
    for handler in analysis.handlers.values():
        if handler.narrowed_to is not None:
            return {ALL_FIELDS}
    return set(analysis.fields_written)


def _read_set(analysis: ElementAnalysis) -> Set[str]:
    return set(analysis.fields_read)


def _conflicting(a: Set[str], b: Set[str]) -> bool:
    if ALL_FIELDS in a:
        return bool(b) or ALL_FIELDS in b
    if ALL_FIELDS in b:
        return bool(a)
    return bool(a & b)


@dataclass(frozen=True)
class CommuteVerdict:
    """Result of a pairwise commutativity check, with reasons when not."""

    commutes: bool
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.commutes


def commute(a: ElementAnalysis, b: ElementAnalysis) -> CommuteVerdict:
    """Decide whether elements ``a`` and ``b`` may be reordered."""
    reasons: List[str] = []
    a_writes, b_writes = _write_set(a), _write_set(b)
    a_reads, b_reads = _read_set(a), _read_set(b)
    if _conflicting(a_writes, b_reads):
        reasons.append(
            f"{a.name} writes fields {sorted(a_writes)} that {b.name} reads"
        )
    if _conflicting(b_writes, a_reads):
        reasons.append(
            f"{b.name} writes fields {sorted(b_writes)} that {a.name} reads"
        )
    if _conflicting(a_writes, b_writes):
        overlap = sorted(
            (a_writes & b_writes) or a_writes | b_writes
        )
        reasons.append(
            f"{a.name} and {b.name} write overlapping fields {overlap}"
        )
    for first, second in ((a, b), (b, a)):
        if not first.can_drop:
            continue
        if second.observable_effects:
            reasons.append(
                f"{first.name} may drop RPCs and {second.name} has "
                "observable effects"
            )
        elif second.history_dependent:
            reasons.append(
                f"{first.name} may drop RPCs and {second.name}'s behaviour "
                "depends on the tuples it sees"
            )
    if a.can_multiply and b.can_multiply:
        reasons.append(f"both {a.name} and {b.name} fan out RPCs")
    return CommuteVerdict(commutes=not reasons, reasons=tuple(reasons))


def can_parallelize(a: ElementAnalysis, b: ElementAnalysis) -> CommuteVerdict:
    """Parallel execution is stricter than reordering: the runtime runs
    both elements on the *same* input tuple and merges their outputs, so
    additionally neither may fan out, and their drop decisions must be
    independent (guaranteed by field-independence)."""
    verdict = commute(a, b)
    reasons = list(verdict.reasons)
    if a.can_multiply or b.can_multiply:
        reasons.append("fan-out elements cannot run in a parallel group")
    for side in (a, b):
        safety = side.replication
        if safety is not None and not safety.replicable:
            for reason in safety.reasons():
                reasons.append(
                    f"{side.name} is unsafe to replicate: {reason}"
                )
    return CommuteVerdict(commutes=not reasons, reasons=tuple(reasons))


def ordering_violations(
    order: List[str],
    original: List[str],
    analyses: dict,
) -> List[str]:
    """Check that ``order`` is reachable from ``original`` by swapping only
    commuting adjacent pairs. Returns human-readable violations (empty =
    the reorder is semantics-preserving).

    A permutation is legal iff every pair that is *inverted* relative to
    the original order commutes — inversion-counting argument: any legal
    sequence of adjacent commuting swaps inverts exactly the commuting
    pairs.
    """
    position = {name: i for i, name in enumerate(original)}
    violations: List[str] = []
    for i, first in enumerate(order):
        for second in order[i + 1 :]:
            if position[first] > position[second]:  # inverted pair
                verdict = commute(analyses[first], analyses[second])
                if not verdict:
                    violations.extend(verdict.reasons)
    return violations
