"""Static analysis of element IR.

These facts drive every optimization and placement decision the paper
describes (§4 Q1, §5.2):

* field read/write sets → safe reordering, parallelization, minimal
  headers;
* state access and shape → migration/scaling strategy (keyed tables can
  be partitioned, append-only tables can be drained);
* drop/multiply behaviour and side effects → which reorderings preserve
  semantics (a logger must see exactly the RPCs that were not dropped
  before it);
* platform-relevant facts (payload UDFs, loops, nondeterminism) → which
  backends can host the element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..dsl.ast_nodes import BinaryOp, ColumnRef, Expr
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from .expr_utils import collect_refs, expr_cost_us, is_deterministic, op_count
from .nodes import (
    AdvanceInput,
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    HandlerIR,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    StatementIR,
    UpdateRows,
)
from .replication import ReplicationSafety, replication_safety


@dataclass
class HandlerAnalysis:
    """Facts about one handler (request or response direction)."""

    kind: str
    fields_read: Set[str] = field(default_factory=set)
    fields_written: Set[str] = field(default_factory=set)
    #: None = output keeps all input fields (possibly plus written ones);
    #: a set = output is narrowed to exactly these fields.
    narrowed_to: Optional[Set[str]] = None
    state_read: Set[str] = field(default_factory=set)
    state_written: Set[str] = field(default_factory=set)
    var_read: Set[str] = field(default_factory=set)
    var_written: Set[str] = field(default_factory=set)
    can_drop: bool = False
    can_multiply: bool = False
    deterministic: bool = True
    payload_funcs: Set[str] = field(default_factory=set)
    functions: Set[str] = field(default_factory=set)
    #: static cost estimate of one invocation, excluding per-byte terms
    cost_us: float = 0.0
    #: IR size (expression nodes + ops) — proxy for generated-code work
    op_count: int = 0
    emit_statements: int = 0

    def propagate_fields(self, incoming: FrozenSet[str]) -> FrozenSet[str]:
        """Fields available downstream given fields available on entry."""
        if self.narrowed_to is not None:
            return frozenset(self.narrowed_to)
        return incoming | frozenset(self.fields_written)


@dataclass
class ElementAnalysis:
    """Union of handler analyses plus element-level facts."""

    name: str
    handlers: Dict[str, HandlerAnalysis] = field(default_factory=dict)
    has_state: bool = False
    keyed_state: bool = False
    append_only_state: bool = False
    #: replication-safety classification of every state table/var
    replication: Optional[ReplicationSafety] = None

    # -- aggregates over handlers --------------------------------------

    @property
    def fields_read(self) -> Set[str]:
        return set().union(*(h.fields_read for h in self.handlers.values()))

    @property
    def fields_written(self) -> Set[str]:
        return set().union(*(h.fields_written for h in self.handlers.values()))

    @property
    def state_written(self) -> Set[str]:
        return set().union(*(h.state_written for h in self.handlers.values()))

    @property
    def can_drop(self) -> bool:
        return any(h.can_drop for h in self.handlers.values())

    @property
    def can_multiply(self) -> bool:
        return any(h.can_multiply for h in self.handlers.values())

    @property
    def deterministic(self) -> bool:
        return all(h.deterministic for h in self.handlers.values())

    @property
    def payload_funcs(self) -> Set[str]:
        return set().union(*(h.payload_funcs for h in self.handlers.values()))

    @property
    def observable_effects(self) -> bool:
        """True when executing the element has effects visible outside the
        tuple it returns: persistent state writes or extra emitted copies.
        Reordering such an element across a dropper changes behaviour."""
        return bool(self.state_written) or self.can_multiply

    @property
    def history_dependent(self) -> bool:
        """True when the element's per-tuple behaviour depends on which
        tuples it has processed before (it reads state or variables that
        it also writes) — e.g. round-robin counters, rate limiters,
        admission windows. Such an element cannot be reordered across a
        dropper: the dropper changes the history it sees."""
        for handler in self.handlers.values():
            if handler.var_written & handler.var_read:
                return True
            if handler.state_written & handler.state_read:
                return True
        # cross-handler coupling (e.g. Admission: request writes the
        # window that request reads; response writes it too)
        all_var_read = set().union(*(h.var_read for h in self.handlers.values()))
        all_var_written = set().union(
            *(h.var_written for h in self.handlers.values())
        )
        all_state_read = set().union(
            *(h.state_read for h in self.handlers.values())
        )
        return bool(all_var_read & all_var_written) or bool(
            all_state_read & self.state_written
        )

    def handler_cost_us(self, kind: str) -> float:
        handler = self.handlers.get(kind)
        return handler.cost_us if handler else 0.0

    def handler_ops(self, kind: str) -> int:
        handler = self.handlers.get(kind)
        return handler.op_count if handler else 0


def analyze_element(
    element: ElementIR, registry: Optional[FunctionRegistry] = None
) -> ElementAnalysis:
    """Compute and attach an :class:`ElementAnalysis` to ``element``."""
    registry = registry or DEFAULT_REGISTRY
    analysis = ElementAnalysis(name=element.name)
    analysis.has_state = bool(element.states) or bool(element.vars)
    analysis.keyed_state = any(
        any(col.is_key for col in decl.columns) for decl in element.states
    )
    analysis.append_only_state = any(decl.append_only for decl in element.states)
    key_columns = {
        decl.name: tuple(col.name for col in decl.columns if col.is_key)
        for decl in element.states
    }
    for kind, handler in element.handlers.items():
        analysis.handlers[kind] = _analyze_handler(handler, key_columns, registry)
    analysis.replication = replication_safety(element)
    element.analysis = analysis
    return analysis


def _analyze_handler(
    handler: HandlerIR,
    key_columns: Dict[str, Tuple[str, ...]],
    registry: FunctionRegistry,
) -> HandlerAnalysis:
    segments = _split_segments(handler.statements)
    if len(segments) == 1:
        return _analyze_segment(handler.kind, segments[0], key_columns, registry)
    # fused handler: analyze each member segment against *its* input and
    # merge — a fused element drops if any segment may produce zero rows,
    # and its output narrowing composes through the seams.
    parts = [
        _analyze_segment(handler.kind, segment, key_columns, registry)
        for segment in segments
    ]
    result = HandlerAnalysis(kind=handler.kind)
    narrowed: Optional[Set[str]] = None
    for part in parts:
        result.fields_read |= part.fields_read
        result.fields_written |= part.fields_written
        result.state_read |= part.state_read
        result.state_written |= part.state_written
        result.var_read |= part.var_read
        result.var_written |= part.var_written
        result.functions |= part.functions
        result.payload_funcs |= part.payload_funcs
        result.can_drop = result.can_drop or part.can_drop
        result.can_multiply = result.can_multiply or part.can_multiply
        result.deterministic = result.deterministic and part.deterministic
        result.cost_us += part.cost_us
        result.op_count += part.op_count
        if part.narrowed_to is not None:
            narrowed = set(part.narrowed_to)
        elif narrowed is not None:
            narrowed |= part.fields_written
    result.narrowed_to = narrowed
    result.emit_statements = parts[-1].emit_statements
    result.op_count += len(segments) - 1  # one AdvanceInput op per seam
    return result


def _split_segments(
    statements: Tuple[StatementIR, ...]
) -> Tuple[Tuple[StatementIR, ...], ...]:
    """Split a handler body at AdvanceInput fusion seams."""
    segments: list = []
    current: list = []
    for stmt in statements:
        if any(isinstance(op, AdvanceInput) for op in stmt.ops):
            segments.append(tuple(current))
            current = []
        else:
            current.append(stmt)
    segments.append(tuple(current))
    return tuple(segments)


def _analyze_segment(
    kind: str,
    statements: Tuple[StatementIR, ...],
    key_columns: Dict[str, Tuple[str, ...]],
    registry: FunctionRegistry,
) -> HandlerAnalysis:
    result = HandlerAnalysis(kind=kind)
    unconditional_emit = False
    for stmt in statements:
        _analyze_statement(stmt, key_columns, registry, result)
        if stmt.emits and not _statement_conditional(stmt, key_columns):
            unconditional_emit = True
    if result.emit_statements == 0:
        # an element with no emit statements forwards nothing: always drops
        result.can_drop = True
    elif not unconditional_emit:
        result.can_drop = True
    if result.emit_statements > 1:
        result.can_multiply = True
    result.op_count += sum(len(stmt.ops) for stmt in statements)
    return result


def _statement_conditional(
    stmt: StatementIR, key_columns: Dict[str, Tuple[str, ...]]
) -> bool:
    """True when this emit pipeline might produce zero rows."""
    for op in stmt.ops:
        if isinstance(op, FilterRows):
            return True
        if isinstance(op, JoinState):
            # even a unique-key join drops the row when no key matches
            return True
    return False


def _join_is_unique(
    op: JoinState, key_columns: Dict[str, Tuple[str, ...]]
) -> bool:
    """True when the join predicate pins every key column of the table to
    a value independent of the table, so at most one row can match."""
    keys = set(key_columns.get(op.table, ()))
    if not keys:
        return False
    pinned: Set[str] = set()
    for conjunct in _conjuncts(op.on):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "=="):
            continue
        for side, other in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(side, ColumnRef)
                and side.table == op.table
                and side.name in keys
                and not _references_table(other, op.table)
            ):
                pinned.add(side.name)
    return pinned >= keys


def _conjuncts(expr: Expr):
    if isinstance(expr, BinaryOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _references_table(expr: Expr, table: str) -> bool:
    return any(
        tbl == table for tbl, _ in collect_refs(expr).table_columns
    )


def _analyze_statement(
    stmt: StatementIR,
    key_columns: Dict[str, Tuple[str, ...]],
    registry: FunctionRegistry,
    out: HandlerAnalysis,
) -> None:
    for op in stmt.ops:
        if isinstance(op, JoinState):
            out.state_read.add(op.table)
            _absorb_expr(op.on, registry, out)
            if not _join_is_unique(op, key_columns):
                out.can_multiply = True
            out.cost_us += 0.08  # hash-lookup / probe cost
        elif isinstance(op, FilterRows):
            _absorb_expr(op.predicate, registry, out)
        elif isinstance(op, Project):
            for name, expr in op.items:
                out.fields_written.add(name)
                _absorb_expr(expr, registry, out)
            if not op.keep_input and stmt.emits:
                narrowed = {name for name, _ in op.items}
                for table in op.star_tables:
                    out.state_read.add(table)
                if out.narrowed_to is None:
                    out.narrowed_to = narrowed
                else:
                    out.narrowed_to |= narrowed
            elif stmt.emits and op.keep_input and out.narrowed_to is not None:
                # a later full-width emit widens the output again
                out.narrowed_to = None
            out.cost_us += 0.02 * max(1, len(op.items))
        elif isinstance(op, InsertRows):
            out.state_written.add(op.table)
            out.cost_us += 0.08
        elif isinstance(op, InsertLiterals):
            out.state_written.add(op.table)
            out.cost_us += 0.05
        elif isinstance(op, UpdateRows):
            out.state_read.add(op.table)
            out.state_written.add(op.table)
            for _, expr in op.assignments:
                _absorb_expr(expr, registry, out)
            _absorb_expr(op.where, registry, out)
            out.cost_us += 0.1
        elif isinstance(op, DeleteRows):
            out.state_read.add(op.table)
            out.state_written.add(op.table)
            _absorb_expr(op.where, registry, out)
            out.cost_us += 0.1
        elif isinstance(op, AssignVar):
            out.var_written.add(op.var)
            _absorb_expr(op.expr, registry, out)
            _absorb_expr(op.where, registry, out)
            out.cost_us += 0.01
    if stmt.emits:
        out.emit_statements += 1
        out.cost_us += 0.03  # output tuple materialization


def _absorb_expr(
    expr: Optional[Expr], registry: FunctionRegistry, out: HandlerAnalysis
) -> None:
    if expr is None:
        return
    refs = collect_refs(expr)
    out.fields_read |= refs.input_fields
    out.var_read |= refs.vars
    out.functions |= refs.functions
    out.state_read |= refs.tables_counted
    for table, _column in refs.table_columns:
        out.state_read.add(table)
    for func_name in refs.functions:
        spec = registry.get(func_name)
        if spec.payload_op:
            out.payload_funcs.add(func_name)
    if not is_deterministic(expr, registry):
        out.deterministic = False
    out.cost_us += expr_cost_us(expr, registry)
    out.op_count += op_count(expr)
