"""Replication-safety classification of element state (paper §5).

The paper's scaling story rests on "decoupled tabular state": an element
can be replicated or sharded only when its state tables tolerate it.
This module classifies every state table and element variable of an
element by *access pattern*:

* ``READ_ONLY`` — never written by a handler (init-time population is
  fine: init runs once, before replicas diverge). Replicas can each hold
  a copy.
* ``COMMUTATIVE`` — written only through order-insensitive operations:
  pure INSERTs (append-only logs) or self-relative counter updates
  (``col = col + delta`` where ``delta`` does not read the table).
  Replica-local copies can be merged by union/sum, so replication is
  safe.
* ``PARTITIONED`` — read-modify-write, but every access pins *all* key
  columns of the table to values independent of the table (typically
  derived from the RPC). Each RPC touches exactly one shard, so the
  table can be sharded by key — replicas are sound only under key-based
  partitioning, not plain duplication.
* ``READ_MODIFY_WRITE`` — everything else: decisions feed back into
  unkeyed (or un-pinned) state, aggregate reads span all rows, or a
  variable is both read and written. Replicating such an element
  silently changes semantics (each replica sees a fraction of history).

The result is attached to :class:`~repro.ir.analysis.ElementAnalysis`
as ``analysis.replication`` and consulted by

* :func:`repro.ir.dependency.can_parallelize` (the parallelize pass's
  legality oracle),
* :class:`repro.control.scaling.Autoscaler` (scale-out refusal),
* the ``ADN3xx`` lint rules (:mod:`repro.lint.rules.state_race`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..dsl.ast_nodes import BinaryOp, ColumnRef, Expr, VarRef
from ..dsl.span import Span
from .expr_utils import collect_refs
from .nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    StatementIR,
    UpdateRows,
)


class AccessMode(enum.Enum):
    """How an element touches one piece of state, ordered by how much the
    access pattern constrains replication."""

    READ_ONLY = "read-only"
    COMMUTATIVE = "commutative"
    PARTITIONED = "partitioned"
    READ_MODIFY_WRITE = "read-modify-write"


#: Modes safe under plain replication (every replica holds a copy).
_REPLICABLE_MODES = (AccessMode.READ_ONLY, AccessMode.COMMUTATIVE)


@dataclass(frozen=True)
class StateAccess:
    """Classification of one state table or variable of an element."""

    name: str
    kind: str  # "table" | "var"
    mode: AccessMode
    detail: str  # human-readable evidence for the classification
    span: Optional[Span] = None  # first access that forced the mode


@dataclass(frozen=True)
class ReplicationSafety:
    """Per-element verdict: which state blocks replication, and why."""

    element: str
    accesses: Tuple[StateAccess, ...] = ()

    @property
    def replicable(self) -> bool:
        """Safe to run N identical replicas with independent state."""
        return all(a.mode in _REPLICABLE_MODES for a in self.accesses)

    @property
    def shardable(self) -> bool:
        """Safe to scale out when the runtime shards keyed tables —
        PARTITIONED tables are fine, but read-modify-write state (and any
        read-modify-write variable, which has no key to shard by) is not.
        """
        for access in self.accesses:
            if access.mode in _REPLICABLE_MODES:
                continue
            if access.mode is AccessMode.PARTITIONED and access.kind == "table":
                continue
            return False
        return True

    @property
    def blocking(self) -> Tuple[StateAccess, ...]:
        """Accesses that make plain replication unsound."""
        return tuple(
            a for a in self.accesses if a.mode not in _REPLICABLE_MODES
        )

    def reasons(self) -> List[str]:
        """Human-readable reasons plain replication is refused."""
        out = []
        for access in self.blocking:
            out.append(
                f"{access.kind} {access.name!r} is "
                f"{access.mode.value}: {access.detail}"
            )
        return out


# -- expression helpers (local copies: analysis.py imports this module) ---


def _conjuncts(expr: Expr):
    if isinstance(expr, BinaryOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _references_table(expr: Optional[Expr], table: str) -> bool:
    if expr is None:
        return False
    refs = collect_refs(expr)
    if table in refs.tables_counted:
        return True
    return any(tbl == table for tbl, _ in refs.table_columns)


def _pins_all_keys(
    predicate: Optional[Expr], table: str, keys: Set[str]
) -> bool:
    """True when ``predicate`` pins every key column of ``table`` by
    equality to a table-independent expression — the same per-key test
    used by unique-join detection, applied to any WHERE/ON clause."""
    if not keys or predicate is None:
        return False
    pinned: Set[str] = set()
    for conjunct in _conjuncts(predicate):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "=="):
            continue
        for side, other in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(side, ColumnRef)
                and side.table == table
                and side.name in keys
                and not _references_table(other, table)
            ):
                pinned.add(side.name)
    return pinned >= keys


def _is_commutative_assignment(
    table: str, column: str, expr: Expr
) -> bool:
    """``col = col + delta`` (or ``-``) where ``delta`` never reads the
    table: increments from concurrent replicas merge by summation."""
    if not (isinstance(expr, BinaryOp) and expr.op in ("+", "-")):
        return False
    left, right = expr.left, expr.right
    if not (
        isinstance(left, ColumnRef)
        and left.table in (table, None)
        and left.name == column
    ):
        return False
    return not _references_table(right, table)


def _is_self_increment(var: str, expr: Expr) -> bool:
    """``v = v + delta`` / ``v = v - delta`` with a var-free delta."""
    if not (isinstance(expr, BinaryOp) and expr.op in ("+", "-")):
        return False
    if not (isinstance(expr.left, VarRef) and expr.left.name == var):
        return False
    return var not in collect_refs(expr.right).vars


# -- per-table evidence collection ---------------------------------------


@dataclass
class _TableEvidence:
    reads: List[Tuple[str, Optional[Span]]] = field(default_factory=list)
    aggregate_reads: List[Tuple[str, Optional[Span]]] = field(
        default_factory=list
    )
    pure_inserts: List[Tuple[str, Optional[Span]]] = field(
        default_factory=list
    )
    commutative_updates: List[Tuple[str, Optional[Span]]] = field(
        default_factory=list
    )
    #: updates/deletes that are neither pure-insert nor commutative
    rmw_writes: List[Tuple[str, Optional[Span]]] = field(default_factory=list)
    #: every keyed access predicate pinned all key columns so far
    all_accesses_pinned: bool = True

    @property
    def writes(self) -> bool:
        return bool(
            self.pure_inserts or self.commutative_updates or self.rmw_writes
        )


@dataclass
class _VarEvidence:
    reads: List[Tuple[str, Optional[Span]]] = field(default_factory=list)
    writes: List[Tuple[str, Optional[Span]]] = field(default_factory=list)
    commutative_writes: List[Tuple[str, Optional[Span]]] = field(
        default_factory=list
    )


def _note_expr_reads(
    expr: Optional[Expr],
    span: Optional[Span],
    tables: Dict[str, _TableEvidence],
    vars_: Dict[str, _VarEvidence],
    what: str,
    skip_var: Optional[str] = None,
    skip_table: Optional[str] = None,
) -> None:
    """Record state reads in ``expr``. ``skip_table`` suppresses plain
    column reads of that table — an UPDATE/DELETE referencing its own
    target addresses the rows being written (or performs a commutative
    self-increment), which the write classification already accounts
    for. Aggregate reads are never suppressed: they span all rows, which
    no write classification covers."""
    if expr is None:
        return
    refs = collect_refs(expr)
    seen: Set[str] = set()
    for tbl, col in refs.table_columns:
        if tbl == skip_table:
            continue
        if tbl in tables and tbl not in seen:
            tables[tbl].reads.append((f"{what} reads column {col!r}", span))
            seen.add(tbl)
    for tbl in refs.tables_counted:
        if tbl in tables:
            tables[tbl].aggregate_reads.append(
                (f"{what} aggregates over the whole table", span)
            )
    for var in refs.vars:
        if var in vars_ and var != skip_var:
            vars_[var].reads.append((f"{what} reads the variable", span))


def _collect(
    element: ElementIR,
    tables: Dict[str, _TableEvidence],
    vars_: Dict[str, _VarEvidence],
    key_columns: Dict[str, Tuple[str, ...]],
) -> None:
    """Walk every handler statement (init excluded: it runs once at
    deploy time, before replicas exist) and record state accesses."""
    for handler in element.handlers.values():
        for stmt in handler.statements:
            _collect_statement(stmt, tables, vars_, key_columns)


def _collect_statement(
    stmt: StatementIR,
    tables: Dict[str, _TableEvidence],
    vars_: Dict[str, _VarEvidence],
    key_columns: Dict[str, Tuple[str, ...]],
) -> None:
    span = stmt.span
    for op in stmt.ops:
        if isinstance(op, JoinState):
            if op.table in tables:
                ev = tables[op.table]
                ev.reads.append(("JOIN reads matching rows", span))
                keys = set(key_columns.get(op.table, ()))
                if not _pins_all_keys(op.on, op.table, keys):
                    ev.all_accesses_pinned = False
            _note_expr_reads(op.on, span, tables, vars_, "JOIN predicate")
        elif isinstance(op, Project):
            for tbl in op.star_tables:
                if tbl in tables:
                    tables[tbl].reads.append(
                        ("projection reads the whole table", span)
                    )
                    tables[tbl].all_accesses_pinned = False
            for _name, expr in op.items:
                _note_expr_reads(expr, span, tables, vars_, "projection")
        elif isinstance(op, (InsertRows, InsertLiterals)):
            if op.table in tables:
                tables[op.table].pure_inserts.append(("pure INSERT", span))
        elif isinstance(op, UpdateRows):
            if op.table in tables:
                ev = tables[op.table]
                commutative = all(
                    _is_commutative_assignment(op.table, column, expr)
                    for column, expr in op.assignments
                )
                if commutative:
                    ev.commutative_updates.append(
                        ("counter-style UPDATE (col = col + delta)", span)
                    )
                else:
                    cols = ", ".join(c for c, _ in op.assignments)
                    ev.rmw_writes.append(
                        (f"UPDATE rewrites column(s) {cols}", span)
                    )
                keys = set(key_columns.get(op.table, ()))
                if not _pins_all_keys(op.where, op.table, keys):
                    ev.all_accesses_pinned = False
            for _column, expr in op.assignments:
                _note_expr_reads(
                    expr, span, tables, vars_, "UPDATE expression",
                    skip_table=op.table,
                )
            _note_expr_reads(
                op.where, span, tables, vars_, "UPDATE WHERE",
                skip_table=op.table,
            )
        elif isinstance(op, DeleteRows):
            if op.table in tables:
                ev = tables[op.table]
                ev.rmw_writes.append(("DELETE removes rows", span))
                keys = set(key_columns.get(op.table, ()))
                if not _pins_all_keys(op.where, op.table, keys):
                    ev.all_accesses_pinned = False
            _note_expr_reads(
                op.where, span, tables, vars_, "DELETE WHERE",
                skip_table=op.table,
            )
        elif isinstance(op, AssignVar):
            if op.var in vars_:
                ev = vars_[op.var]
                if _is_self_increment(op.var, op.expr):
                    ev.commutative_writes.append(
                        ("self-relative increment", span)
                    )
                else:
                    ev.writes.append(("SET overwrites the variable", span))
            _note_expr_reads(
                op.expr, span, tables, vars_, "SET expression",
                skip_var=op.var if _is_self_increment(op.var, op.expr) else None,
            )
            _note_expr_reads(op.where, span, tables, vars_, "SET WHERE")
        elif isinstance(op, FilterRows):
            _note_expr_reads(op.predicate, span, tables, vars_, "WHERE")


def _first_span(
    *evidence: List[Tuple[str, Optional[Span]]]
) -> Optional[Span]:
    for bucket in evidence:
        for _what, span in bucket:
            if span is not None:
                return span
    return None


def _classify_table(
    name: str, ev: _TableEvidence, keyed: bool
) -> StateAccess:
    if not ev.writes:
        return StateAccess(
            name=name,
            kind="table",
            mode=AccessMode.READ_ONLY,
            detail="handlers only read it",
            span=_first_span(ev.reads, ev.aggregate_reads),
        )
    plain_reads = ev.reads or ev.aggregate_reads
    if not ev.rmw_writes and not plain_reads:
        kind = (
            "append-only INSERTs"
            if ev.pure_inserts and not ev.commutative_updates
            else "counter-style updates"
        )
        return StateAccess(
            name=name,
            kind="table",
            mode=AccessMode.COMMUTATIVE,
            detail=f"written only through {kind}, never read by handlers",
            span=_first_span(ev.pure_inserts, ev.commutative_updates),
        )
    if ev.aggregate_reads:
        what, span = ev.aggregate_reads[0]
        return StateAccess(
            name=name,
            kind="table",
            mode=AccessMode.READ_MODIFY_WRITE,
            detail=f"{what}, so shards would each see partial history",
            span=span or _first_span(ev.rmw_writes, ev.reads),
        )
    if keyed and ev.all_accesses_pinned:
        return StateAccess(
            name=name,
            kind="table",
            mode=AccessMode.PARTITIONED,
            detail=(
                "every access pins all key columns to RPC-derived values; "
                "shard by key to scale"
            ),
            span=_first_span(ev.rmw_writes, ev.commutative_updates, ev.reads),
        )
    what, span = (ev.rmw_writes or ev.reads)[0]
    return StateAccess(
        name=name,
        kind="table",
        mode=AccessMode.READ_MODIFY_WRITE,
        detail=f"{what} and the result feeds back into later decisions",
        span=span,
    )


def _classify_var(name: str, ev: _VarEvidence) -> StateAccess:
    if not ev.writes and not ev.commutative_writes:
        return StateAccess(
            name=name,
            kind="var",
            mode=AccessMode.READ_ONLY,
            detail="handlers only read it",
            span=_first_span(ev.reads),
        )
    if ev.reads:
        what, span = ev.reads[0]
        return StateAccess(
            name=name,
            kind="var",
            mode=AccessMode.READ_MODIFY_WRITE,
            detail=f"written and read back ({what})",
            span=span or _first_span(ev.writes, ev.commutative_writes),
        )
    if ev.writes:
        what, span = ev.writes[0]
        return StateAccess(
            name=name,
            kind="var",
            mode=AccessMode.COMMUTATIVE,
            detail=f"write-only ({what}); replicas never observe it",
            span=span,
        )
    return StateAccess(
        name=name,
        kind="var",
        mode=AccessMode.COMMUTATIVE,
        detail="only self-relative increments; merge by summation",
        span=_first_span(ev.commutative_writes),
    )


def replication_safety(element: ElementIR) -> ReplicationSafety:
    """Classify every state table and variable of ``element``.

    Operates on the lowered IR (single source of truth for state access)
    and carries :class:`~repro.dsl.span.Span` positions from statements
    so lint diagnostics can point at the offending DSL text.
    """
    tables: Dict[str, _TableEvidence] = {
        decl.name: _TableEvidence() for decl in element.states
    }
    vars_: Dict[str, _VarEvidence] = {
        decl.name: _VarEvidence() for decl in element.vars
    }
    key_columns = {
        decl.name: tuple(col.name for col in decl.columns if col.is_key)
        for decl in element.states
    }
    _collect(element, tables, vars_, key_columns)
    accesses: List[StateAccess] = []
    for name, ev in tables.items():
        accesses.append(
            _classify_table(name, ev, keyed=bool(key_columns.get(name)))
        )
    for name, ev in vars_.items():
        accesses.append(_classify_var(name, ev))
    return ReplicationSafety(element=element.name, accesses=tuple(accesses))
