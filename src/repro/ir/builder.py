"""Lowering from validated DSL AST to the IR.

The builder assumes the element already passed
:func:`repro.dsl.validator.validate_element` — names are resolved
(element variables are :class:`VarRef` nodes) and tables/columns exist.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dsl.ast_nodes import (
    ColumnRef,
    DeleteStmt,
    ElementDef,
    Expr,
    InsertValues,
    Literal,
    SelectItem,
    SelectStmt,
    SetStmt,
    Star,
    Statement,
    UpdateStmt,
)
from ..errors import CompileError
from .nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    EmitRows,
    FilterRows,
    HandlerIR,
    InsertLiterals,
    InsertRows,
    JoinState,
    Op,
    Project,
    Scan,
    StatementIR,
    UpdateRows,
)


def build_element_ir(element: ElementDef) -> ElementIR:
    """Lower a validated element definition into :class:`ElementIR`."""
    handlers = {}
    for handler in element.handlers:
        statements = tuple(
            _lower_statement(element, stmt) for stmt in handler.statements
        )
        handlers[handler.kind] = HandlerIR(kind=handler.kind, statements=statements)
    init = tuple(_lower_init_statement(element, stmt) for stmt in element.init)
    return ElementIR(
        name=element.name,
        meta=dict(element.meta),
        states=element.states,
        vars=element.vars,
        init=init,
        handlers=handlers,
    )


def _lower_statement(element: ElementDef, stmt: Statement) -> StatementIR:
    if isinstance(stmt, SelectStmt):
        return _lower_select(element, stmt)
    if isinstance(stmt, InsertValues):
        return StatementIR(ops=(_lower_insert_values(stmt),), span=stmt.span)
    if isinstance(stmt, UpdateStmt):
        return StatementIR(
            ops=(
                UpdateRows(
                    table=stmt.table,
                    assignments=stmt.assignments,
                    where=stmt.where,
                ),
            ),
            span=stmt.span,
        )
    if isinstance(stmt, DeleteStmt):
        return StatementIR(
            ops=(DeleteRows(table=stmt.table, where=stmt.where),), span=stmt.span
        )
    if isinstance(stmt, SetStmt):
        return StatementIR(
            ops=(AssignVar(var=stmt.var, expr=stmt.expr, where=stmt.where),),
            span=stmt.span,
        )
    raise CompileError(f"cannot lower statement {stmt!r}")


def _lower_init_statement(element: ElementDef, stmt: Statement) -> StatementIR:
    lowered = _lower_statement(element, stmt)
    for op in lowered.ops:
        if isinstance(op, (Scan, EmitRows)):
            raise CompileError("init statements cannot touch the input stream")
    return lowered


def _lower_select(element: ElementDef, stmt: SelectStmt) -> StatementIR:
    if stmt.source != "input":
        raise CompileError(
            f"element {element.name!r}: SELECT source must be 'input' "
            f"in handlers (got {stmt.source!r})"
        )
    ops: List[Op] = [Scan()]
    for join in stmt.joins:
        ops.append(JoinState(table=join.table, on=join.on))
    if stmt.where is not None:
        ops.append(FilterRows(predicate=stmt.where))
    ops.append(_build_project(element, stmt))
    if stmt.into is None:
        ops.append(EmitRows())
    else:
        ops.append(InsertRows(table=stmt.into))
    return StatementIR(ops=tuple(ops), span=stmt.span)


def _build_project(element: ElementDef, stmt: SelectStmt) -> Project:
    keep_input = False
    star_tables: List[str] = []
    items: List[Tuple[str, Expr]] = []
    position = 0
    target_columns: Optional[Tuple[str, ...]] = None
    if stmt.into is not None:
        decl = element.state(stmt.into)
        if decl is None:
            raise CompileError(f"unknown target table {stmt.into!r}")
        target_columns = tuple(col.name for col in decl.columns)
    for item in stmt.items:
        if isinstance(item, Star):
            if item.table in (None, "input"):
                keep_input = True
            else:
                star_tables.append(item.table)
            continue
        assert isinstance(item, SelectItem)
        name = _output_name(item, target_columns, position)
        items.append((name, item.expr))
        position += 1
    return Project(
        items=tuple(items),
        keep_input=keep_input,
        star_tables=tuple(star_tables),
    )


def _output_name(
    item: SelectItem,
    target_columns: Optional[Tuple[str, ...]],
    position: int,
) -> str:
    if item.alias:
        return item.alias
    if target_columns is not None:
        # positional mapping into the target table's columns
        if position >= len(target_columns):
            raise CompileError("more expressions than target columns")
        return target_columns[position]
    if isinstance(item.expr, ColumnRef):
        return item.expr.name
    raise CompileError(
        f"expression {item.expr!r} needs an AS alias to name its output"
    )


def _lower_insert_values(stmt: InsertValues) -> InsertLiterals:
    rows = []
    for row in stmt.rows:
        values = []
        for expr in row:
            if not isinstance(expr, Literal):
                raise CompileError("INSERT VALUES must be literal rows")
            values.append(expr.value)
        rows.append(tuple(values))
    return InsertLiterals(table=stmt.table, rows=tuple(rows))
