"""Optimizer entry points, built on the pass manager.

``optimize_element`` runs the semantics-preserving statement rewrites
(constant folding, predicate pushdown) and re-analyzes.
``optimize_chain`` runs the full chain pipeline — element passes, early-
drop reordering, dead-field elimination, cross-element fusion, parallel
staging — composed and reported by :class:`repro.ir.passmgr.PassManager`.
Every chain-level transform is guarded by :mod:`repro.ir.dependency`;
the resulting :class:`~repro.ir.nodes.ChainIR` carries the per-pass
:class:`~repro.ir.passmgr.PassReport` list so callers (the CLI's
``compile --explain``, benches, tests) can see exactly what ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from .analysis import analyze_element
from .nodes import ChainIR, ElementIR
from .passes import fold_constants_element, pushdown_element
from .passmgr import PassManager


@dataclass
class OptimizerOptions:
    """Which passes to apply (benches toggle these for the ablation
    experiment). Fusion is opt-in: it trades per-element placement
    freedom for dispatch savings, a choice the caller makes."""

    constant_folding: bool = True
    predicate_pushdown: bool = True
    reorder: bool = True
    parallelize: bool = True
    dead_fields: bool = True
    fusion: bool = False
    #: run the translation validator after every pass, recording the
    #: verdict in each PassReport (compile --verify); needs a schema for
    #: the abstract/concolic checks to run
    verify: bool = False


@dataclass
class ChainContext:
    """Inputs to chain optimization beyond the elements themselves."""

    app: str = "app"
    src: str = "client"
    dst: str = "server"
    #: (first, second) ordering constraints from the app spec
    pinned_pairs: Tuple[Tuple[str, str], ...] = ()
    registry: FunctionRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)
    #: the app's RpcSchema; required for dead-field elimination (its
    #: fields are always live), None skips that pass
    schema: Optional[object] = None


def optimize_element(
    element: ElementIR,
    options: Optional[OptimizerOptions] = None,
    registry: Optional[FunctionRegistry] = None,
) -> ElementIR:
    """Apply element-level passes; returns a new, re-analyzed ElementIR."""
    options = options or OptimizerOptions()
    registry = registry or DEFAULT_REGISTRY
    if options.constant_folding:
        element = fold_constants_element(element, registry)
    if options.predicate_pushdown:
        element = pushdown_element(element)
    analyze_element(element, registry)
    return element


def optimize_chain(
    elements: Sequence[ElementIR],
    context: Optional[ChainContext] = None,
    options: Optional[OptimizerOptions] = None,
    manager: Optional[PassManager] = None,
) -> ChainIR:
    """Optimize an ordered element chain into a :class:`ChainIR`."""
    context = context or ChainContext()
    options = options or OptimizerOptions()
    manager = manager or PassManager()
    state, reports = manager.run(elements, context, options)
    return ChainIR(
        app=context.app,
        src=context.src,
        dst=context.dst,
        elements=tuple(state.elements),
        stages=state.stages,
        reordered=state.reordered,
        pass_reports=tuple(reports),
    )
