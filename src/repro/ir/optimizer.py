"""Pass manager: element-level and chain-level optimization pipelines.

``optimize_element`` runs the semantics-preserving statement rewrites
(constant folding, predicate pushdown) and re-analyzes. ``optimize_chain``
additionally reorders elements for early drop and groups them into
parallel stages, producing a :class:`~repro.ir.nodes.ChainIR`. Every
chain-level transform is guarded by :mod:`repro.ir.dependency`, and the
result records whether reordering happened so callers (and tests) can
check legality with :func:`repro.ir.dependency.ordering_violations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from .analysis import ElementAnalysis, analyze_element
from .nodes import ChainIR, ElementIR
from .passes import (
    fold_constants_element,
    parallel_stages,
    pushdown_element,
    reorder_for_early_drop,
)


@dataclass
class OptimizerOptions:
    """Which optimizations to apply (all on by default; benches toggle
    these for the ablation experiment)."""

    constant_folding: bool = True
    predicate_pushdown: bool = True
    reorder: bool = True
    parallelize: bool = True


@dataclass
class ChainContext:
    """Inputs to chain optimization beyond the elements themselves."""

    app: str = "app"
    src: str = "client"
    dst: str = "server"
    #: (first, second) ordering constraints from the app spec
    pinned_pairs: Tuple[Tuple[str, str], ...] = ()
    registry: FunctionRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)


def optimize_element(
    element: ElementIR,
    options: Optional[OptimizerOptions] = None,
    registry: Optional[FunctionRegistry] = None,
) -> ElementIR:
    """Apply element-level passes; returns a new, re-analyzed ElementIR."""
    options = options or OptimizerOptions()
    registry = registry or DEFAULT_REGISTRY
    if options.constant_folding:
        element = fold_constants_element(element, registry)
    if options.predicate_pushdown:
        element = pushdown_element(element)
    analyze_element(element, registry)
    return element


def optimize_chain(
    elements: Sequence[ElementIR],
    context: Optional[ChainContext] = None,
    options: Optional[OptimizerOptions] = None,
) -> ChainIR:
    """Optimize an ordered element chain into a :class:`ChainIR`."""
    context = context or ChainContext()
    options = options or OptimizerOptions()
    optimized = [
        optimize_element(element, options, context.registry)
        for element in elements
    ]
    analyses: Dict[str, ElementAnalysis] = {
        element.name: element.analysis  # type: ignore[misc]
        for element in optimized
    }
    order: List[str] = [element.name for element in optimized]
    reordered = False
    if options.reorder:
        order, reordered = reorder_for_early_drop(
            order, analyses, context.pinned_pairs
        )
    by_name = {element.name: element for element in optimized}
    ordered_elements = tuple(by_name[name] for name in order)
    if options.parallelize:
        stages = parallel_stages(order, analyses)
    else:
        stages = tuple((name,) for name in order)
    return ChainIR(
        app=context.app,
        src=context.src,
        dst=context.dst,
        elements=ordered_elements,
        stages=stages,
        reordered=reordered,
    )
