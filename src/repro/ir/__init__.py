"""Intermediate representation: lowering, analysis, interpretation,
dependency analysis, and optimization passes."""

from .analysis import ElementAnalysis, HandlerAnalysis, analyze_element
from .builder import build_element_ir
from .interp import ElementInstance
from .nodes import ChainIR, ElementIR, HandlerIR, StatementIR

__all__ = [
    "ChainIR",
    "ElementAnalysis",
    "ElementIR",
    "ElementInstance",
    "HandlerAnalysis",
    "HandlerIR",
    "StatementIR",
    "analyze_element",
    "build_element_ir",
]

from .dependency import CommuteVerdict, can_parallelize, commute, ordering_violations
from .optimizer import ChainContext, OptimizerOptions, optimize_chain, optimize_element

__all__ += [
    "ChainContext",
    "CommuteVerdict",
    "OptimizerOptions",
    "can_parallelize",
    "commute",
    "optimize_chain",
    "optimize_element",
    "ordering_violations",
]
