"""Expression walking, reference collection, and evaluation.

Shared by the validator-free IR analyses, the reference interpreter, and
the code-generation backends. Evaluation implements the DSL's SQL-flavored
semantics: three-valued-ish NULL handling is simplified to "comparisons
with None are False; arithmetic with None raises".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Set, Tuple

from ..dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    VarRef,
)
from ..dsl.functions import FunctionRegistry
from ..errors import RuntimeFault

#: Functions whose first argument is a state-table *name*, not a value.
TABLE_ARG_FUNCS = frozenset(
    {"count", "contains", "sum_of", "min_of", "max_of", "avg_of"}
)

#: table aggregates whose second argument is a *column name* of that table
COLUMN_AGG_FUNCS = frozenset({"sum_of", "min_of", "max_of", "avg_of"})


def run_column_aggregate(name: str, table, column: str):
    """Evaluate a column aggregate over a state table's rows.

    Empty-table semantics follow SQL-ish conventions: sum is 0, min/max/
    avg are None (NULL).
    """
    values = [row[column] for row in table.rows() if row[column] is not None]
    if name == "sum_of":
        return sum(values) if values else 0
    if not values:
        return None
    if name == "min_of":
        return min(values)
    if name == "max_of":
        return max(values)
    return sum(values) / len(values)  # avg_of


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, FuncCall):
        args = expr.args[1:] if expr.name in TABLE_ARG_FUNCS else expr.args
        for arg in args:
            yield from walk(arg)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.whens:
            yield from walk(condition)
            yield from walk(value)
        if expr.default is not None:
            yield from walk(expr.default)


@dataclass
class ExprRefs:
    """References collected from an expression tree."""

    input_fields: Set[str] = field(default_factory=set)
    table_columns: Set[Tuple[str, str]] = field(default_factory=set)
    vars: Set[str] = field(default_factory=set)
    functions: Set[str] = field(default_factory=set)
    tables_counted: Set[str] = field(default_factory=set)

    def merge(self, other: "ExprRefs") -> "ExprRefs":
        self.input_fields |= other.input_fields
        self.table_columns |= other.table_columns
        self.vars |= other.vars
        self.functions |= other.functions
        self.tables_counted |= other.tables_counted
        return self


def collect_refs(expr: Optional[Expr]) -> ExprRefs:
    """All input fields, state columns, vars, and functions referenced."""
    refs = ExprRefs()
    if expr is None:
        return refs
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            if node.table in (None, "input"):
                refs.input_fields.add(node.name)
            else:
                refs.table_columns.add((node.table, node.name))
        elif isinstance(node, VarRef):
            refs.vars.add(node.name)
        elif isinstance(node, FuncCall):
            refs.functions.add(node.name)
            if node.name in TABLE_ARG_FUNCS:
                first = node.args[0]
                if isinstance(first, ColumnRef):
                    refs.tables_counted.add(first.name)
    return refs


@dataclass
class EvalEnv:
    """Everything an expression needs to evaluate.

    * ``row`` — current row: input fields plus any joined state columns
      under ``(table, column)`` keys.
    * ``vars`` — element variable values (mutable mapping).
    * ``tables`` — state-table accessors for ``count``/``contains``:
      name → object with ``__len__`` and ``contains_key(value)``.
    * ``registry`` — function implementations.
    """

    row: Dict[str, object]
    vars: Dict[str, object]
    tables: Dict[str, object] = field(default_factory=dict)
    registry: Optional[FunctionRegistry] = None
    #: optional hook(spec, result_size) the cost model uses to charge calls
    on_func_call: Optional[Callable] = None


def evaluate(expr: Expr, env: EvalEnv) -> object:
    """Evaluate an expression to a Python value.

    Every failure mode — missing field, unbound variable, bad coercion,
    division by zero — raises :class:`RuntimeFault` carrying the span of
    the offending (sub-)expression, never a bare ``KeyError``/
    ``TypeError``/``ZeroDivisionError``.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, VarRef):
        try:
            return env.vars[expr.name]
        except KeyError:
            raise RuntimeFault(
                f"unbound variable {expr.name!r}", span=expr.span
            ) from None
    if isinstance(expr, ColumnRef):
        return _lookup_column(expr, env)
    if isinstance(expr, FuncCall):
        return _call_function(expr, env)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, env)
        if expr.op == "not":
            return not _truthy(value)
        if expr.op == "-":
            try:
                return -value  # type: ignore[operator]
            except TypeError:
                raise RuntimeFault(
                    f"cannot negate {type(value).__name__}", span=expr.span
                ) from None
        raise RuntimeFault(f"unknown unary op {expr.op!r}", span=expr.span)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, env)
    if isinstance(expr, CaseExpr):
        for condition, value in expr.whens:
            if _truthy(evaluate(condition, env)):
                return evaluate(value, env)
        if expr.default is not None:
            return evaluate(expr.default, env)
        return None
    raise RuntimeFault(
        f"cannot evaluate {expr!r}", span=getattr(expr, "span", None)
    )


def _lookup_column(ref: ColumnRef, env: EvalEnv) -> object:
    if ref.table in (None, "input"):
        if ref.name in env.row:
            return env.row[ref.name]
        raise RuntimeFault(
            f"input has no field {ref.name!r}", span=ref.span
        )
    key = (ref.table, ref.name)
    if key in env.row:
        return env.row[key]
    raise RuntimeFault(
        f"row has no column {ref.table}.{ref.name}", span=ref.span
    )


def _call_function(call: FuncCall, env: EvalEnv) -> object:
    if env.registry is None:
        raise RuntimeFault("no function registry bound", span=call.span)
    spec = env.registry.get(call.name)
    if call.name in TABLE_ARG_FUNCS:
        table_name = call.args[0]
        assert isinstance(table_name, ColumnRef)
        table = env.tables.get(table_name.name)
        if table is None:
            raise RuntimeFault(
                f"unknown state table {table_name.name!r}", span=call.span
            )
        if call.name == "count":
            result = len(table)
        elif call.name == "contains":
            key_value = evaluate(call.args[1], env)
            result = table.contains_key(key_value)
        else:  # column aggregate: second argument names a column
            column_ref = call.args[1]
            assert isinstance(column_ref, ColumnRef)
            result = run_column_aggregate(
                call.name, table, column_ref.name
            )
        if env.on_func_call is not None:
            env.on_func_call(spec, 0)
        return result
    args = [evaluate(arg, env) for arg in call.args]
    try:
        result = spec.impl(*args)
    except RuntimeFault:
        raise
    except (TypeError, ValueError) as exc:
        raise RuntimeFault(
            f"{call.name}() failed: {exc}", span=call.span
        ) from None
    if env.on_func_call is not None:
        size = 0
        if spec.payload_op and args and isinstance(args[0], (bytes, str)):
            size = len(args[0])
        env.on_func_call(spec, size)
    return result


def _truthy(value: object) -> bool:
    """SQL-ish truth: None is false, everything else by Python rules."""
    if value is None:
        return False
    return bool(value)


def _eval_binary(expr: BinaryOp, env: EvalEnv) -> object:
    op = expr.op
    if op == "and":
        return _truthy(evaluate(expr.left, env)) and _truthy(
            evaluate(expr.right, env)
        )
    if op == "or":
        return _truthy(evaluate(expr.left, env)) or _truthy(
            evaluate(expr.right, env)
        )
    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        if left is None or right is None:
            # SQL NULL comparisons are never true (NULL != x is also false
            # here; we simplify three-valued logic to two-valued)
            return False
        try:
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
        except TypeError:
            raise RuntimeFault(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}",
                span=expr.span,
            ) from None
    if left is None or right is None:
        raise RuntimeFault(f"arithmetic {op!r} on NULL", span=expr.span)
    try:
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            return left / right  # type: ignore[operator]
        if op == "%":
            return left % right  # type: ignore[operator]
    except TypeError:
        raise RuntimeFault(
            f"bad operand types for {op!r}: {type(left).__name__}, "
            f"{type(right).__name__}",
            span=expr.span,
        ) from None
    except ZeroDivisionError:
        raise RuntimeFault(
            f"division by zero in {op!r}", span=expr.span
        ) from None
    raise RuntimeFault(f"unknown binary op {op!r}", span=expr.span)


def is_deterministic(expr: Optional[Expr], registry: FunctionRegistry) -> bool:
    """True when the expression has no nondeterministic function calls."""
    if expr is None:
        return True
    for node in walk(expr):
        if isinstance(node, FuncCall) and not registry.get(node.name).deterministic:
            return False
    return True


def expr_cost_us(expr: Optional[Expr], registry: FunctionRegistry) -> float:
    """Static per-evaluation cost estimate (excluding per-byte terms)."""
    if expr is None:
        return 0.0
    total = 0.0
    for node in walk(expr):
        if isinstance(node, FuncCall):
            total += registry.get(node.name).cost_us
        elif isinstance(node, (BinaryOp, UnaryOp)):
            total += 0.005
        elif isinstance(node, (ColumnRef, VarRef)):
            total += 0.002
    return total


def op_count(expr: Optional[Expr]) -> int:
    """Number of nodes in an expression tree (codegen size metric)."""
    if expr is None:
        return 0
    return sum(1 for _ in walk(expr))
