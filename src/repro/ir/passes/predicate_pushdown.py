"""Predicate pushdown within statement pipelines.

A ``WHERE`` clause lowers to a :class:`FilterRows` *after* all joins. When
a conjunct of the predicate references only the input tuple and element
variables (no joined columns), evaluating it before the joins skips the
join work for rows that would be discarded anyway — the classic
selection-pushdown rewrite, applied to the element's micro-plan.
"""

from __future__ import annotations

from typing import List, Optional

from ...dsl.ast_nodes import BinaryOp, Expr
from ..expr_utils import collect_refs
from ..nodes import (
    ElementIR,
    FilterRows,
    HandlerIR,
    JoinState,
    Op,
    Scan,
    StatementIR,
)


def _conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(parts: List[Expr]) -> Optional[Expr]:
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("and", result, part)
    return result


def _input_only(expr: Expr) -> bool:
    """True when the conjunct reads no joined state columns (it may read
    input fields, element vars, and call functions including table
    aggregates — those see the table, not the joined row)."""
    return not collect_refs(expr).table_columns


def _pushdown_statement(stmt: StatementIR) -> StatementIR:
    has_join = any(isinstance(op, JoinState) for op in stmt.ops)
    if not has_join:
        return stmt
    filters = [op for op in stmt.ops if isinstance(op, FilterRows)]
    if not filters:
        return stmt
    early: List[Expr] = []
    late: List[Expr] = []
    for filter_op in filters:
        for conjunct in _conjuncts(filter_op.predicate):
            (early if _input_only(conjunct) else late).append(conjunct)
    if not early:
        return stmt
    ops: List[Op] = []
    for op in stmt.ops:
        if isinstance(op, Scan):
            ops.append(op)
            early_pred = _conjoin(early)
            if early_pred is not None:
                ops.append(FilterRows(predicate=early_pred))
        elif isinstance(op, FilterRows):
            late_pred = _conjoin(late)
            if late_pred is not None:
                ops.append(FilterRows(predicate=late_pred))
                late = []
        else:
            ops.append(op)
    return StatementIR(ops=tuple(ops), span=stmt.span)


def pushdown_element(element: ElementIR) -> ElementIR:
    """Apply predicate pushdown to every handler statement."""
    handlers = {
        kind: HandlerIR(
            kind=kind,
            statements=tuple(_pushdown_statement(s) for s in handler.statements),
        )
        for kind, handler in element.handlers.items()
    }
    return ElementIR(
        name=element.name,
        meta=dict(element.meta),
        states=element.states,
        vars=element.vars,
        init=element.init,
        handlers=handlers,
    )
