"""Cross-element fusion (paper §5.2: "multiple element instances can be
fused into one").

Adjacent compatible elements merge into one fused ``ElementIR``: handler
bodies are concatenated with :class:`~repro.ir.nodes.AdvanceInput` seams
(request order forward, response order reversed), state tables and
variables are renamed on collision, and the runtime pays a *single*
module dispatch per traversal instead of one per member.

Legality is decided per candidate member, conservatively:

* **no fan-out** — a member that can multiply RPCs breaks the single-row
  seam semantics (``AdvanceInput`` re-binds exactly one row);
* **no response-side drops** — an unfused response drop degenerates to
  forwarding *at that element*, preserving upstream response handlers; a
  fused drop would skip them, so response droppers never fuse;
* **no ordering pins** — an app ``before``/``after`` constraint between
  two members (either orientation) keeps them separate, so constrained
  pairs stay individually placeable and reorderable;
* **position compatibility** — ``sender`` and ``receiver`` elements never
  merge (``any`` merges with either).

Fusion never reorders statements, so state-write ordering, drop points,
and nondeterministic draw sequences (``rand()``) are preserved exactly —
the fused chain is differential-testable against the unfused one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ...dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    StateDecl,
    UnaryOp,
    VarDecl,
    VarRef,
)
from ...dsl.functions import FunctionRegistry
from ..analysis import analyze_element
from ..expr_utils import TABLE_ARG_FUNCS
from ..nodes import (
    AdvanceInput,
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    HandlerIR,
    InsertLiterals,
    InsertRows,
    JoinState,
    Op,
    Project,
    StatementIR,
    UpdateRows,
)


def fuse_elements(
    elements: Sequence[ElementIR],
    pinned_pairs: Tuple[Tuple[str, str], ...],
    registry: FunctionRegistry,
) -> Tuple[List[ElementIR], List[Tuple[str, ...]], List[str]]:
    """Greedily fuse maximal runs of adjacent compatible elements.

    Returns ``(new_elements, fused_groups, refusal_notes)``. Elements must
    already be analyzed; fused elements come back analyzed.
    """
    result: List[ElementIR] = []
    groups: List[Tuple[str, ...]] = []
    notes: List[str] = []
    run: List[ElementIR] = []
    for element in elements:
        if not run:
            run = [element]
            continue
        refusal = _fusion_refusal(run, element, pinned_pairs)
        if refusal is None:
            run.append(element)
        else:
            notes.append(refusal)
            result.append(_close_run(run, groups, registry))
            run = [element]
    if run:
        result.append(_close_run(run, groups, registry))
    return result, groups, notes


def _close_run(
    run: List[ElementIR],
    groups: List[Tuple[str, ...]],
    registry: FunctionRegistry,
) -> ElementIR:
    if len(run) == 1:
        return run[0]
    groups.append(tuple(e.name for e in run))
    return fuse_group(run, registry)


def _fusion_refusal(
    run: List[ElementIR], candidate: ElementIR, pinned: Tuple[Tuple[str, str], ...]
) -> Optional[str]:
    """Why ``candidate`` cannot join the current run (None = it can)."""
    for member in run + [candidate]:
        analysis = member.analysis
        assert analysis is not None, "fusion requires analyzed elements"
        if analysis.can_multiply:
            return f"{member.name} fans out RPCs: single-row seam is unsound"
        response = analysis.handlers.get("response")
        if response is not None and response.can_drop:
            return (
                f"{member.name} may drop responses: fusing would skip "
                "upstream response handlers"
            )
    for member in run:
        for pair in ((member.name, candidate.name), (candidate.name, member.name)):
            if pair in pinned:
                return (
                    f"ordering constraint pins {pair[0]} before {pair[1]}: "
                    "members stay separately placeable"
                )
    positions = {e.position for e in run + [candidate]} - {"any"}
    if len(positions) > 1:
        return (
            f"incompatible positions {sorted(positions)}: sender and "
            "receiver elements never merge"
        )
    return None


def fuse_group(
    members: Sequence[ElementIR], registry: FunctionRegistry
) -> ElementIR:
    """Merge ``members`` (already legality-checked) into one ElementIR."""
    table_maps, var_maps = _rename_maps(members)
    name = "__".join(e.name for e in members)
    states: List[StateDecl] = []
    vars_: List[VarDecl] = []
    init: List[StatementIR] = []
    for member in members:
        tmap, vmap = table_maps[member.name], var_maps[member.name]
        for decl in member.states:
            states.append(replace(decl, name=tmap.get(decl.name, decl.name)))
        for decl in member.vars:
            vars_.append(replace(decl, name=vmap.get(decl.name, decl.name)))
        for stmt in member.init:
            init.append(_rewrite_statement(stmt, tmap, vmap))
    positions = {e.position for e in members} - {"any"}
    meta: Dict[str, object] = {"fused_from": tuple(e.name for e in members)}
    if positions:
        meta["position"] = positions.pop()
    if any(e.mandatory for e in members):
        meta["mandatory"] = True
    handlers: Dict[str, HandlerIR] = {}
    request = _concat_handlers(members, "request", table_maps, var_maps)
    if request is not None:
        handlers["request"] = request
    response = _concat_handlers(
        list(reversed(members)), "response", table_maps, var_maps
    )
    if response is not None:
        handlers["response"] = response
    fused = ElementIR(
        name=name,
        meta=meta,
        states=tuple(states),
        vars=tuple(vars_),
        init=tuple(init),
        handlers=handlers,
    )
    analyze_element(fused, registry)
    return fused


def _concat_handlers(
    members: Sequence[ElementIR],
    kind: str,
    table_maps: Dict[str, Dict[str, str]],
    var_maps: Dict[str, Dict[str, str]],
) -> Optional[HandlerIR]:
    """Concatenate member handler bodies with AdvanceInput seams.

    Members without a handler in this direction are identity and are
    skipped without a seam."""
    present = [m for m in members if m.handler(kind) is not None]
    if not present:
        return None
    statements: List[StatementIR] = []
    for index, member in enumerate(present):
        if index > 0:
            statements.append(
                StatementIR(ops=(AdvanceInput(source=present[index - 1].name),))
            )
        tmap, vmap = table_maps[member.name], var_maps[member.name]
        for stmt in member.handler(kind).statements:
            statements.append(_rewrite_statement(stmt, tmap, vmap))
    return HandlerIR(kind=kind, statements=tuple(statements))


def _rename_maps(
    members: Sequence[ElementIR],
) -> Tuple[Dict[str, Dict[str, str]], Dict[str, Dict[str, str]]]:
    """Per-member rename maps for colliding state tables and variables.

    The first member to use a name keeps it (so e.g. an ``endpoints``
    table stays visible to the controller's replica push); later members
    get ``{member}__{name}``."""
    table_maps: Dict[str, Dict[str, str]] = {}
    var_maps: Dict[str, Dict[str, str]] = {}
    seen_tables: set = set()
    seen_vars: set = set()
    for member in members:
        tmap: Dict[str, str] = {}
        vmap: Dict[str, str] = {}
        for decl in member.states:
            if decl.name in seen_tables:
                tmap[decl.name] = f"{member.name}__{decl.name}"
            else:
                seen_tables.add(decl.name)
        for decl in member.vars:
            if decl.name in seen_vars:
                vmap[decl.name] = f"{member.name}__{decl.name}"
            else:
                seen_vars.add(decl.name)
        table_maps[member.name] = tmap
        var_maps[member.name] = vmap
    return table_maps, var_maps


# -- rewriting ----------------------------------------------------------


def _rewrite_statement(
    stmt: StatementIR, tmap: Dict[str, str], vmap: Dict[str, str]
) -> StatementIR:
    if not tmap and not vmap:
        return stmt
    return StatementIR(
        ops=tuple(_rewrite_op(op, tmap, vmap) for op in stmt.ops),
        span=stmt.span,
    )


def _rewrite_op(op: Op, tmap: Dict[str, str], vmap: Dict[str, str]) -> Op:
    if isinstance(op, JoinState):
        return JoinState(
            table=tmap.get(op.table, op.table),
            on=_rewrite_expr(op.on, tmap, vmap),
        )
    if isinstance(op, FilterRows):
        return FilterRows(predicate=_rewrite_expr(op.predicate, tmap, vmap))
    if isinstance(op, Project):
        return Project(
            items=tuple(
                (name, _rewrite_expr(expr, tmap, vmap)) for name, expr in op.items
            ),
            keep_input=op.keep_input,
            star_tables=tuple(tmap.get(t, t) for t in op.star_tables),
        )
    if isinstance(op, InsertRows):
        return InsertRows(table=tmap.get(op.table, op.table))
    if isinstance(op, InsertLiterals):
        return InsertLiterals(table=tmap.get(op.table, op.table), rows=op.rows)
    if isinstance(op, UpdateRows):
        return UpdateRows(
            table=tmap.get(op.table, op.table),
            assignments=tuple(
                (name, _rewrite_expr(expr, tmap, vmap))
                for name, expr in op.assignments
            ),
            where=_rewrite_expr(op.where, tmap, vmap),
        )
    if isinstance(op, DeleteRows):
        return DeleteRows(
            table=tmap.get(op.table, op.table),
            where=_rewrite_expr(op.where, tmap, vmap),
        )
    if isinstance(op, AssignVar):
        return AssignVar(
            var=vmap.get(op.var, op.var),
            expr=_rewrite_expr(op.expr, tmap, vmap),
            where=_rewrite_expr(op.where, tmap, vmap),
        )
    return op


def _rewrite_expr(
    expr: Optional[Expr], tmap: Dict[str, str], vmap: Dict[str, str]
) -> Optional[Expr]:
    if expr is None:
        return None
    if isinstance(expr, ColumnRef):
        if expr.table is not None and expr.table in tmap:
            return replace(expr, table=tmap[expr.table])
        return expr
    if isinstance(expr, VarRef):
        if expr.name in vmap:
            return replace(expr, name=vmap[expr.name])
        return expr
    if isinstance(expr, FuncCall):
        args = list(expr.args)
        start = 0
        if expr.name in TABLE_ARG_FUNCS and args:
            first = args[0]
            # the first argument names a state table, not a value
            if isinstance(first, ColumnRef) and first.name in tmap:
                args[0] = replace(first, name=tmap[first.name])
            start = 1
        for i in range(start, len(args)):
            args[i] = _rewrite_expr(args[i], tmap, vmap)
        return replace(expr, args=tuple(args))
    if isinstance(expr, BinaryOp):
        return replace(
            expr,
            left=_rewrite_expr(expr.left, tmap, vmap),
            right=_rewrite_expr(expr.right, tmap, vmap),
        )
    if isinstance(expr, UnaryOp):
        return replace(expr, operand=_rewrite_expr(expr.operand, tmap, vmap))
    if isinstance(expr, CaseExpr):
        return replace(
            expr,
            whens=tuple(
                (
                    _rewrite_expr(cond, tmap, vmap),
                    _rewrite_expr(value, tmap, vmap),
                )
                for cond, value in expr.whens
            ),
            default=_rewrite_expr(expr.default, tmap, vmap),
        )
    return expr
