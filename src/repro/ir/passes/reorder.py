"""Chain reordering: move droppers early, subject to commutativity.

An RPC dropped by an element never reaches later elements, so executing
cheap droppers (ACL, fault injection, admission control) first saves the
work of every element behind them (paper Figure 2 configuration 3 — the
access control runs on the switch *before* decompression after the
compiler proves the reorder safe).

The pass is a stable bubble sort that only swaps adjacent elements when
:func:`repro.ir.dependency.commute` approves, so any produced order is
reachable through semantics-preserving swaps by construction. Explicit
``before``/``after`` constraints from the app spec pin pairs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..analysis import ElementAnalysis
from ..dependency import commute


def _priority(analysis: ElementAnalysis) -> Tuple[int, float]:
    """Sort key: droppers first, then cheaper elements first."""
    request_cost = analysis.handler_cost_us("request")
    return (0 if analysis.can_drop else 1, request_cost)


def reorder_by_priority(
    order: Sequence[str],
    analyses: Dict[str, ElementAnalysis],
    priority,
    pinned_pairs: Sequence[Tuple[str, str]] = (),
) -> Tuple[List[str], bool]:
    """Stable bubble sort by ``priority(name)``, swapping only adjacent
    commuting pairs, honouring explicit (first, second) pins. Any result
    is reachable through semantics-preserving swaps by construction.
    Returns (new_order, changed)."""
    names = list(order)
    pinned: Set[Tuple[str, str]] = set(pinned_pairs)
    changed = False
    for _ in range(len(names)):
        swapped_this_round = False
        for i in range(len(names) - 1):
            first, second = names[i], names[i + 1]
            if priority(second) >= priority(first):
                continue
            if (first, second) in pinned:
                continue
            if not commute(analyses[first], analyses[second]):
                continue
            names[i], names[i + 1] = second, first
            changed = True
            swapped_this_round = True
        if not swapped_this_round:
            break
    return names, changed


def inversions(
    before: Sequence[str], after: Sequence[str]
) -> List[Tuple[str, str]]:
    """Pairs whose relative order flipped between the two orders.

    An order produced by adjacent commuting swaps is legal iff every
    inverted pair commutes, so this is the reorder pass's independent
    correctness certificate: the translation validator rechecks
    ``commute`` for exactly these pairs instead of trusting the pass.
    """
    position = {name: index for index, name in enumerate(after)}
    flipped: List[Tuple[str, str]] = []
    for i, first in enumerate(before):
        if first not in position:
            continue  # fused/dropped names have no order to invert
        for second in before[i + 1 :]:
            if second not in position:
                continue
            if position[second] < position[first]:
                flipped.append((first, second))
    return flipped


def reorder_for_early_drop(
    order: Sequence[str],
    analyses: Dict[str, ElementAnalysis],
    pinned_pairs: Sequence[Tuple[str, str]] = (),
) -> Tuple[List[str], bool]:
    """Return (new_order, changed).

    ``pinned_pairs`` are (first, second) pairs that must keep their
    relative order regardless of commutativity (explicit app
    constraints).
    """
    return reorder_by_priority(
        order,
        analyses,
        lambda name: _priority(analyses[name]),
        pinned_pairs,
    )
