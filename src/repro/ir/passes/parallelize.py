"""Parallelization grouping: stage elements that may run concurrently.

"If two elements do not operate on the same RPC fields, they can be
executed in parallel" (paper §5.2). We form maximal runs of consecutive
elements that pairwise satisfy :func:`repro.ir.dependency.can_parallelize`;
each run becomes one *stage*. The data plane executes a stage by handing
the same input tuple to each member and merging their field updates
(drops intersect: the RPC survives only if every member emits it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis import ElementAnalysis
from ..dependency import can_parallelize


def parallel_stages(
    order: Sequence[str],
    analyses: Dict[str, ElementAnalysis],
) -> Tuple[Tuple[str, ...], ...]:
    """Group the ordered chain into parallel stages."""
    stages: List[Tuple[str, ...]] = []
    current: List[str] = []
    for name in order:
        if not current:
            current = [name]
            continue
        if all(
            can_parallelize(analyses[member], analyses[name])
            for member in current
        ):
            current.append(name)
        else:
            stages.append(tuple(current))
            current = [name]
    if current:
        stages.append(tuple(current))
    return tuple(stages)


def stages_partition(
    stages: Sequence[Tuple[str, ...]],
    order: Sequence[str],
) -> bool:
    """True when the stages are an order-preserving partition of the
    chain: concatenated in sequence they reproduce the element order
    exactly. The translation validator uses this as the parallelize
    pass's structural certificate (staging must never add, drop, or
    permute elements)."""
    flattened = [name for stage in stages for name in stage]
    return flattened == list(order)


def stage_cost_us(
    stage: Sequence[str],
    analyses: Dict[str, ElementAnalysis],
    kind: str,
) -> float:
    """Latency of a stage = max member cost (members run concurrently)."""
    return max(analyses[name].handler_cost_us(kind) for name in stage)
