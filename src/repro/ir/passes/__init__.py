"""Optimization passes over element and chain IR.

Element-level passes rewrite statement pipelines in place-preserving,
semantics-preserving ways (constant folding, predicate pushdown). Chain-
level passes rearrange or merge whole elements (early-drop reordering,
dead-field elimination, cross-element fusion, parallelization grouping)
guarded by :mod:`repro.ir.dependency`. The pipeline that composes them —
and the per-pass diagnostics — lives in :mod:`repro.ir.passmgr`.
"""

from .constant_folding import fold_constants_element, fold_expr
from .dead_fields import eliminate_dead_fields
from .fusion import fuse_elements, fuse_group
from .predicate_pushdown import pushdown_element
from .reorder import reorder_by_priority, reorder_for_early_drop
from .parallelize import parallel_stages

__all__ = [
    "eliminate_dead_fields",
    "fold_constants_element",
    "fold_expr",
    "fuse_elements",
    "fuse_group",
    "parallel_stages",
    "pushdown_element",
    "reorder_by_priority",
    "reorder_for_early_drop",
]
