"""Optimization passes over element and chain IR.

Element-level passes rewrite statement pipelines in place-preserving,
semantics-preserving ways (constant folding, predicate pushdown). Chain-
level passes rearrange whole elements (early-drop reordering,
parallelization grouping) guarded by :mod:`repro.ir.dependency`.
"""

from .constant_folding import fold_constants_element, fold_expr
from .predicate_pushdown import pushdown_element
from .reorder import reorder_for_early_drop
from .parallelize import parallel_stages

__all__ = [
    "fold_constants_element",
    "fold_expr",
    "parallel_stages",
    "pushdown_element",
    "reorder_for_early_drop",
]
