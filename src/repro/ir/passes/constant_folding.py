"""Constant folding over DSL expressions embedded in the IR.

Folds literal-only arithmetic/comparisons/logic and prunes decided CASE
branches and trivially-true/false predicates. Function calls are folded
only when the function is deterministic and pure and all arguments are
literals.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ...dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
)
from ...dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..expr_utils import TABLE_ARG_FUNCS
from ..nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    HandlerIR,
    JoinState,
    Op,
    Project,
    StatementIR,
    UpdateRows,
)


def fold_expr(expr: Expr, registry: Optional[FunctionRegistry] = None) -> Expr:
    """Return an equivalent expression with constants folded."""
    registry = registry or DEFAULT_REGISTRY
    if isinstance(expr, BinaryOp):
        left = fold_expr(expr.left, registry)
        right = fold_expr(expr.right, registry)
        if isinstance(left, Literal) and isinstance(right, Literal):
            folded = _fold_binary(expr.op, left.value, right.value)
            if folded is not _NO_FOLD:
                return Literal(folded)
        # boolean identities: (x AND true) = x, (x OR false) = x, ...
        if expr.op == "and":
            if isinstance(left, Literal):
                return right if left.value is True else Literal(False)
            if isinstance(right, Literal):
                return left if right.value is True else Literal(False)
        if expr.op == "or":
            if isinstance(left, Literal):
                return Literal(True) if left.value is True else right
            if isinstance(right, Literal):
                return Literal(True) if right.value is True else left
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = fold_expr(expr.operand, registry)
        if isinstance(operand, Literal):
            if expr.op == "not":
                return Literal(not operand.value)
            if expr.op == "-" and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, FuncCall):
        if expr.name in TABLE_ARG_FUNCS:
            rest = tuple(fold_expr(a, registry) for a in expr.args[1:])
            return FuncCall(expr.name, (expr.args[0],) + rest)
        args = tuple(fold_expr(a, registry) for a in expr.args)
        spec = registry.get(expr.name)
        if (
            spec.deterministic
            and spec.pure
            and spec.impl is not None
            and all(isinstance(a, Literal) for a in args)
        ):
            try:
                return Literal(spec.impl(*[a.value for a in args]))  # type: ignore[union-attr]
            except Exception:
                pass  # fold failure is not an error; leave the call
        return FuncCall(expr.name, args)
    if isinstance(expr, CaseExpr):
        whens = []
        for condition, value in expr.whens:
            condition = fold_expr(condition, registry)
            value = fold_expr(value, registry)
            if isinstance(condition, Literal):
                if condition.value:
                    if not whens:
                        return value  # first branch statically taken
                    whens.append((Literal(True), value))
                    return CaseExpr(tuple(whens), None)
                continue  # statically dead branch
            whens.append((condition, value))
        default = (
            fold_expr(expr.default, registry) if expr.default is not None else None
        )
        if not whens:
            return default if default is not None else Literal(None)
        return CaseExpr(tuple(whens), default)
    return expr


_NO_FOLD = object()


def _fold_binary(op: str, left: object, right: object) -> object:
    try:
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
        if left is None or right is None:
            if op in ("==", "!=", "<", "<=", ">", ">="):
                return False
            return _NO_FOLD
        return {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "%": lambda: left % right,
            "==": lambda: left == right,
            "!=": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
        }[op]()
    except (TypeError, ZeroDivisionError, KeyError):
        return _NO_FOLD


def _fold_op(op: Op, registry: FunctionRegistry) -> Op:
    if isinstance(op, JoinState):
        return replace(op, on=fold_expr(op.on, registry))
    if isinstance(op, FilterRows):
        return replace(op, predicate=fold_expr(op.predicate, registry))
    if isinstance(op, Project):
        return replace(
            op,
            items=tuple((n, fold_expr(e, registry)) for n, e in op.items),
        )
    if isinstance(op, UpdateRows):
        return replace(
            op,
            assignments=tuple(
                (c, fold_expr(e, registry)) for c, e in op.assignments
            ),
            where=fold_expr(op.where, registry) if op.where is not None else None,
        )
    if isinstance(op, DeleteRows):
        return replace(
            op,
            where=fold_expr(op.where, registry) if op.where is not None else None,
        )
    if isinstance(op, AssignVar):
        return replace(
            op,
            expr=fold_expr(op.expr, registry),
            where=fold_expr(op.where, registry) if op.where is not None else None,
        )
    return op


def _fold_statement(stmt: StatementIR, registry: FunctionRegistry) -> StatementIR:
    ops = []
    for op in stmt.ops:
        folded = _fold_op(op, registry)
        if isinstance(folded, FilterRows) and isinstance(folded.predicate, Literal):
            if folded.predicate.value:
                continue  # WHERE true: drop the filter entirely
        ops.append(folded)
    return StatementIR(ops=tuple(ops), span=stmt.span)


def fold_constants_element(
    element: ElementIR, registry: Optional[FunctionRegistry] = None
) -> ElementIR:
    """Fold constants in every handler and init statement (returns a new
    ElementIR; the input is not mutated)."""
    registry = registry or DEFAULT_REGISTRY
    handlers = {
        kind: HandlerIR(
            kind=kind,
            statements=tuple(
                _fold_statement(s, registry) for s in handler.statements
            ),
        )
        for kind, handler in element.handlers.items()
    }
    return ElementIR(
        name=element.name,
        meta=dict(element.meta),
        states=element.states,
        vars=element.vars,
        init=tuple(_fold_statement(s, registry) for s in element.init),
        handlers=handlers,
    )
