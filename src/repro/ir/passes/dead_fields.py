"""Dead-field elimination across a chain (paper §4 Q2's flip side).

Minimal-header planning already keeps a field off the wire when nothing
downstream reads it; this pass removes the *computation* too: a
``Project`` item whose output field is never read by any later element
(in traversal order for its direction), never consumed by the
application schema, and is not a transport field, is dropped from the
emit pipeline. Narrowing projections shrink accordingly, so
``fields_available_at`` — and with it every hop header — can only
shrink or hold.

Conservatism:

* the removed expression must be deterministic — deleting a ``rand()``
  call would shift the element's draw sequence and change behaviour;
* responses echo the full request tuple (``make_response``), so a field
  written on the request path is live if *any* element's response
  handler reads it;
* fused handlers (containing ``AdvanceInput`` seams) are left alone —
  fusion runs after this pass;
* state writes are never touched: tables are observable effects
  (telemetry, logs, controller snapshots).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ...dsl.functions import FunctionRegistry
from ..analysis import analyze_element
from ..expr_utils import is_deterministic
from ..nodes import AdvanceInput, ElementIR, HandlerIR, Project, StatementIR

#: always-live fields: transport addressing/matching (mirrors
#: repro.compiler.headers.TRANSPORT_FIELDS, duplicated to keep the IR
#: layer import-free of the compiler layer) plus the status code every
#: response carries.
_ALWAYS_LIVE = frozenset({"src", "dst", "rpc_id", "kind", "status"})

#: (element name, handler kind, field name) of one removed projection
Removal = Tuple[str, str, str]


def eliminate_dead_fields(
    elements: Sequence[ElementIR],
    schema,
    registry: FunctionRegistry,
    app_fields: Optional[Set[str]] = None,
) -> Tuple[List[ElementIR], List[Removal]]:
    """Strip dead Project items from every element of an ordered chain.

    Elements must be analyzed; modified elements come back re-analyzed.
    Requires the app's ``RpcSchema`` (its fields are always live); with
    ``schema=None`` the pass is a no-op. ``app_fields`` overrides which
    schema fields the *destination* application consumes on the request
    path: per chain that is all of them, but the mesh-wide liveness
    analysis (:mod:`repro.analysis.graph`) can prove a smaller live set
    for one edge and pass it here. The response direction always keeps
    the full schema live — responses echo to the caller's application,
    which sits outside the mesh liveness model.
    """
    if schema is None:
        return list(elements), []
    schema_fields = set(schema.application_field_names())
    if app_fields is None:
        app_fields = set(schema_fields)
    else:
        app_fields = set(app_fields) & schema_fields
    request_reads = [_handler_reads(e, "request") for e in elements]
    response_reads = [_handler_reads(e, "response") for e in elements]
    all_response_reads: Set[str] = set().union(*response_reads) if elements else set()
    result: List[ElementIR] = []
    removed: List[Removal] = []
    for index, element in enumerate(elements):
        new_handlers = {}
        element_removed: List[Removal] = []
        for kind, handler in element.handlers.items():
            if kind == "request":
                # later request handlers, plus every response handler
                # (the response echoes the request tuple)
                live = set().union(
                    _ALWAYS_LIVE,
                    app_fields,
                    all_response_reads,
                    *request_reads[index + 1 :],
                )
            else:
                # responses traverse the chain in reverse: downstream of
                # position i are the elements before it
                live = set().union(
                    _ALWAYS_LIVE, schema_fields, *response_reads[:index]
                )
            new_handler, handler_removed = _strip_handler(
                element.name, handler, live, registry
            )
            new_handlers[kind] = new_handler
            element_removed.extend(handler_removed)
        if element_removed:
            rewritten = ElementIR(
                name=element.name,
                meta=dict(element.meta),
                states=element.states,
                vars=element.vars,
                init=element.init,
                handlers=new_handlers,
            )
            analyze_element(rewritten, registry)
            result.append(rewritten)
            removed.extend(element_removed)
        else:
            result.append(element)
    return result, removed


def _handler_reads(element: ElementIR, kind: str) -> Set[str]:
    analysis = element.analysis
    assert analysis is not None, "dead-field elimination requires analysis"
    handler = analysis.handlers.get(kind)
    return set(handler.fields_read) if handler else set()


def _strip_handler(
    element_name: str,
    handler: HandlerIR,
    live: Set[str],
    registry: FunctionRegistry,
) -> Tuple[HandlerIR, List[Removal]]:
    if any(
        isinstance(op, AdvanceInput) for stmt in handler.statements for op in stmt.ops
    ):
        return handler, []
    removed: List[Removal] = []
    statements: List[StatementIR] = []
    for stmt in handler.statements:
        if not stmt.emits:
            statements.append(stmt)
            continue
        ops = []
        for op in stmt.ops:
            if isinstance(op, Project):
                removable = {
                    index
                    for index, (name, expr) in enumerate(op.items)
                    if name not in live and is_deterministic(expr, registry)
                }
                if not op.keep_input and len(removable) == len(op.items):
                    # never empty a narrowing projection entirely
                    removable.discard(len(op.items) - 1)
                kept = []
                for index, (name, expr) in enumerate(op.items):
                    if index in removable:
                        removed.append((element_name, handler.kind, name))
                    else:
                        kept.append((name, expr))
                if len(kept) != len(op.items):
                    op = Project(
                        items=tuple(kept),
                        keep_input=op.keep_input,
                        star_tables=op.star_tables,
                    )
            ops.append(op)
        statements.append(StatementIR(ops=tuple(ops), span=stmt.span))
    if not removed:
        return handler, []
    return HandlerIR(kind=handler.kind, statements=tuple(statements)), removed
