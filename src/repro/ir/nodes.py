"""Intermediate representation for compiled ADN elements.

The compiler lowers each validated element handler into a sequence of
*statement pipelines*. A pipeline is a short list of dataflow operators
applied to the element's current row set (which starts as the single
arriving RPC tuple):

.. code-block:: text

    SELECT input.*, e.replica AS dst FROM input
        JOIN endpoints e ON ...  WHERE ...
    =>  Scan -> JoinState(endpoints, on) -> FilterRows(pred)
            -> Project(...) -> EmitRows

State-mutating statements lower to single-op pipelines (InsertRows,
UpdateRows, DeleteRows, AssignVar). Operators reference expressions from
:mod:`repro.dsl.ast_nodes` directly; the IR adds structure (what is a
join, what feeds the wire) rather than a second expression language.

The IR is what analyses (:mod:`repro.ir.analysis`), optimizations
(:mod:`repro.ir.optimizer`) and all code-generation backends consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..dsl.ast_nodes import Expr, StateDecl, VarDecl
from ..dsl.span import Span


@dataclass(frozen=True)
class Op:
    """Base class for IR operators."""


@dataclass(frozen=True)
class Scan(Op):
    """Bind the element's current input tuple as the initial row set."""


@dataclass(frozen=True)
class JoinState(Op):
    """Inner-join current rows with a state table on a predicate.

    For each current row, rows of ``table`` satisfying ``on`` are matched;
    output cardinality is the match count (0 drops the row, >1 fans out).
    """

    table: str
    on: Expr


@dataclass(frozen=True)
class FilterRows(Op):
    """Keep only rows satisfying the predicate."""

    predicate: Expr


@dataclass(frozen=True)
class Project(Op):
    """Compute the output tuple.

    ``keep_input`` mirrors ``*`` / ``input.*``: start from all fields of
    the arriving tuple. ``star_tables`` adds all columns of joined tables
    (``t.*``). ``items`` are explicit ``expr AS name`` outputs applied
    last, so an aliased expression overrides an input field of the same
    name (how elements modify RPCs, paper §5.1).
    """

    items: Tuple[Tuple[str, Expr], ...]
    keep_input: bool = False
    star_tables: Tuple[str, ...] = ()


@dataclass(frozen=True)
class EmitRows(Op):
    """Send the current rows downstream (the element's output stream)."""


@dataclass(frozen=True)
class InsertRows(Op):
    """Append current rows (as projected) into a state table."""

    table: str


@dataclass(frozen=True)
class InsertLiterals(Op):
    """``INSERT INTO table VALUES ...`` — constant rows (init blocks)."""

    table: str
    rows: Tuple[Tuple[object, ...], ...]


@dataclass(frozen=True)
class UpdateRows(Op):
    """In-place update of state-table rows matching ``where``.

    Assignment expressions may reference the input tuple, element vars,
    and the row being updated (by table-qualified or bare column name).
    """

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr]


@dataclass(frozen=True)
class DeleteRows(Op):
    """Delete state-table rows matching ``where``."""

    table: str
    where: Optional[Expr]


@dataclass(frozen=True)
class AssignVar(Op):
    """``SET var = expr [WHERE guard]``."""

    var: str
    expr: Expr
    where: Optional[Expr]


@dataclass(frozen=True)
class AdvanceInput(Op):
    """Fusion seam between two concatenated element bodies (§5.2 fusion).

    Executed as a single-op statement: if the statements before the seam
    emitted no rows, the fused element drops (returns no output); otherwise
    the handler's *input* row is re-bound to the single emitted row and the
    emit buffer is cleared, so the next member's statements read their
    predecessor's output exactly as they would across a dispatch boundary.
    ``source`` names the member element whose output feeds the seam.
    """

    source: str


@dataclass(frozen=True)
class StatementIR:
    """One lowered statement: an operator pipeline.

    ``emits`` is True when the pipeline ends in :class:`EmitRows` —
    i.e. this statement contributes to the element's output stream.

    ``span`` is the source position of the DSL statement this was lowered
    from (None for statements synthesized by optimization passes). Like
    AST spans it is metadata: excluded from equality/hashing so optimized
    and pretty-printed IR stay structurally comparable.
    """

    ops: Tuple[Op, ...]
    span: Optional["Span"] = field(default=None, compare=False, kw_only=True)

    @property
    def emits(self) -> bool:
        return bool(self.ops) and isinstance(self.ops[-1], EmitRows)

    @property
    def writes_state(self) -> bool:
        return any(
            isinstance(op, (InsertRows, InsertLiterals, UpdateRows, DeleteRows))
            for op in self.ops
        )


def op_exprs(op: Op) -> Iterator[Expr]:
    """Yield every expression embedded in one IR operator.

    The single source of truth for "which operator fields hold
    expressions" — the pass manager's size metric, the abstract type
    checker, and the dead-field liveness analysis all iterate with this
    instead of re-listing operator shapes.
    """
    if isinstance(op, JoinState):
        yield op.on
    elif isinstance(op, FilterRows):
        yield op.predicate
    elif isinstance(op, Project):
        for _, expr in op.items:
            yield expr
    elif isinstance(op, UpdateRows):
        for _, expr in op.assignments:
            yield expr
        if op.where is not None:
            yield op.where
    elif isinstance(op, DeleteRows):
        if op.where is not None:
            yield op.where
    elif isinstance(op, AssignVar):
        yield op.expr
        if op.where is not None:
            yield op.where


def statement_exprs(stmt: "StatementIR") -> Iterator[Expr]:
    """Yield every expression in a statement pipeline, in op order."""
    for op in stmt.ops:
        yield from op_exprs(op)


@dataclass(frozen=True)
class HandlerIR:
    """All statement pipelines of one ``on request``/``on response``."""

    kind: str
    statements: Tuple[StatementIR, ...]


@dataclass
class ElementIR:
    """A fully lowered element, ready for analysis and codegen."""

    name: str
    meta: Dict[str, object]
    states: Tuple[StateDecl, ...]
    vars: Tuple[VarDecl, ...]
    init: Tuple[StatementIR, ...]
    handlers: Dict[str, HandlerIR] = field(default_factory=dict)
    #: populated by repro.ir.analysis.analyze_element
    analysis: Optional[object] = None

    def handler(self, kind: str) -> Optional[HandlerIR]:
        return self.handlers.get(kind)

    def state_decl(self, name: str) -> Optional[StateDecl]:
        for decl in self.states:
            if decl.name == name:
                return decl
        return None

    @property
    def position(self) -> str:
        """Placement hint from ``meta { position: ...; }``."""
        return str(self.meta.get("position", "any"))

    @property
    def mandatory(self) -> bool:
        """True when the element must run outside the app binary (§3)."""
        return bool(self.meta.get("mandatory", False))


@dataclass
class ChainIR:
    """An ordered element chain between two services, after optimization.

    ``stages`` groups elements that the optimizer proved independent and
    may execute in parallel (paper §5.2): each stage is a tuple of element
    names; stages execute in order, elements within a stage concurrently.
    """

    app: str
    src: str
    dst: str
    elements: Tuple[ElementIR, ...]
    stages: Tuple[Tuple[str, ...], ...] = ()
    reordered: bool = False
    #: per-pass diagnostics (repro.ir.passmgr.PassReport) from optimization
    pass_reports: Tuple[object, ...] = ()

    def element(self, name: str) -> ElementIR:
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(name)

    @property
    def element_names(self) -> Tuple[str, ...]:
        return tuple(element.name for element in self.elements)
