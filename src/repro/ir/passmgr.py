"""Pass manager: registered IR passes, pipelines, per-pass diagnostics.

The optimizer is structured the way the paper's compiler (and any query
optimizer) is: a pipeline of registered passes over the IR, each pass
reporting what it did (IR size before/after, rewrites applied, wall
time) and re-checking its own legality obligation after running. The
pipeline for a compilation is selected by
:class:`~repro.ir.optimizer.OptimizerOptions`; a disabled pass still
appears in the report, marked skipped, so ablation output is
positionally stable.

Pass levels:

* ``element`` — rewrites statement pipelines inside each element
  independently (constant folding, predicate pushdown);
* ``chain`` — rearranges or merges whole elements (early-drop
  reordering, dead-field elimination, cross-element fusion,
  parallelization grouping).

Ordering of the default pipeline matters: element-local cleanups first;
reordering next so positions are final; dead-field elimination on the
final order (liveness is positional); fusion after dead-field
elimination so the liveness computation sees per-member granularity;
parallelization last, over the fused chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.span import Span
from .analysis import ElementAnalysis, analyze_element
from .dependency import can_parallelize, ordering_violations
from .expr_utils import op_count
from .nodes import ElementIR, StatementIR, op_exprs
from .passes import (
    eliminate_dead_fields,
    fold_constants_element,
    fuse_elements,
    parallel_stages,
    pushdown_element,
    reorder_for_early_drop,
)


@dataclass(frozen=True)
class PassReport:
    """What one pass did to one chain (or element set).

    When the pipeline runs with ``verify`` enabled, ``validated`` records
    the translation validator's verdict for this pass (None = validation
    not run or not applicable), ``verify_ms`` its cost, and on failure
    ``counterexample``/``counterexample_span`` describe the divergence.
    """

    name: str
    level: str  # "element" | "chain"
    ir_size_before: int
    ir_size_after: int
    rewrites: int
    wall_ms: float
    legality_ok: bool = True
    skipped: bool = False
    notes: Tuple[str, ...] = ()
    validated: Optional[bool] = None
    verify_ms: float = 0.0
    counterexample: str = ""
    counterexample_span: Optional[Span] = None

    @property
    def ir_delta(self) -> int:
        return self.ir_size_after - self.ir_size_before


@dataclass
class PassOutcome:
    """What a pass's ``run`` tells the manager."""

    rewrites: int = 0
    legality_ok: bool = True
    notes: Tuple[str, ...] = ()
    skipped: bool = False


@dataclass
class PipelineState:
    """Mutable chain state threaded through the pipeline."""

    elements: List[ElementIR]
    original_order: Tuple[str, ...]
    reordered: bool = False
    stages: Tuple[Tuple[str, ...], ...] = ()

    @property
    def order(self) -> List[str]:
        return [element.name for element in self.elements]

    def analyses(self) -> Dict[str, ElementAnalysis]:
        return {
            element.name: element.analysis  # type: ignore[misc]
            for element in self.elements
        }


class Pass:
    """Base class: a named, levelled IR transform with a report."""

    name: str = "<unnamed>"
    level: str = "chain"

    def enabled(self, options) -> bool:  # pragma: no cover - interface
        return True

    def run(self, state: PipelineState, context) -> PassOutcome:
        raise NotImplementedError


# -- IR size metric ------------------------------------------------------


def _statements_size(statements: Sequence[StatementIR]) -> int:
    total = 0
    for stmt in statements:
        total += len(stmt.ops)
        for op in stmt.ops:
            for expr in op_exprs(op):
                total += op_count(expr)
    return total


def element_ir_size(element: ElementIR) -> int:
    """IR nodes in one element: ops plus expression nodes."""
    total = _statements_size(element.init)
    for handler in element.handlers.values():
        total += _statements_size(handler.statements)
    return total


def chain_ir_size(elements: Sequence[ElementIR]) -> int:
    return sum(element_ir_size(element) for element in elements)


# -- concrete passes -----------------------------------------------------


class ConstantFoldingPass(Pass):
    name = "constant_folding"
    level = "element"

    def enabled(self, options) -> bool:
        return options.constant_folding

    def run(self, state: PipelineState, context) -> PassOutcome:
        rewrites = 0
        for index, element in enumerate(state.elements):
            folded = fold_constants_element(element, context.registry)
            if folded.handlers != element.handlers or folded.init != element.init:
                rewrites += 1
            analyze_element(folded, context.registry)
            state.elements[index] = folded
        return PassOutcome(rewrites=rewrites)


class PredicatePushdownPass(Pass):
    name = "predicate_pushdown"
    level = "element"

    def enabled(self, options) -> bool:
        return options.predicate_pushdown

    def run(self, state: PipelineState, context) -> PassOutcome:
        rewrites = 0
        for index, element in enumerate(state.elements):
            pushed = pushdown_element(element)
            if pushed.handlers != element.handlers:
                rewrites += 1
            analyze_element(pushed, context.registry)
            state.elements[index] = pushed
        return PassOutcome(rewrites=rewrites)


class ReorderPass(Pass):
    name = "reorder"
    level = "chain"

    def enabled(self, options) -> bool:
        return options.reorder

    def run(self, state: PipelineState, context) -> PassOutcome:
        analyses = state.analyses()
        before = state.order
        order, changed = reorder_for_early_drop(
            before, analyses, context.pinned_pairs
        )
        violations = ordering_violations(order, before, analyses)
        by_name = {element.name: element for element in state.elements}
        state.elements = [by_name[name] for name in order]
        state.reordered = state.reordered or changed
        moved = sum(1 for a, b in zip(before, order) if a != b)
        notes = tuple(violations) or (
            (f"order: {' -> '.join(order)}",) if changed else ()
        )
        return PassOutcome(
            rewrites=moved, legality_ok=not violations, notes=notes
        )


class DeadFieldPass(Pass):
    name = "dead_fields"
    level = "chain"

    def enabled(self, options) -> bool:
        return options.dead_fields

    def run(self, state: PipelineState, context) -> PassOutcome:
        schema = getattr(context, "schema", None)
        if schema is None:
            return PassOutcome(
                skipped=True, notes=("no app schema: liveness unknown",)
            )
        elements, removed = eliminate_dead_fields(
            state.elements, schema, context.registry
        )
        state.elements = list(elements)
        notes = tuple(
            f"{element}.{kind}: dropped dead field {name!r}"
            for element, kind, name in removed
        )
        return PassOutcome(
            rewrites=len(removed),
            legality_ok=self._recheck(state, removed),
            notes=notes,
        )

    @staticmethod
    def _recheck(state: PipelineState, removed) -> bool:
        """Re-verify liveness against the *post-pass* analyses: nothing
        downstream (its direction's traversal order) reads a removed
        field."""
        order = state.order
        position = {name: i for i, name in enumerate(order)}
        for element_name, kind, field_name in removed:
            index = position[element_name]
            if kind == "request":
                downstream = state.elements[index + 1 :]
                readers = [
                    e.analysis.handlers.get("request") for e in downstream
                ] + [
                    e.analysis.handlers.get("response") for e in state.elements
                ]
            else:
                downstream = state.elements[:index]
                readers = [
                    e.analysis.handlers.get("response") for e in downstream
                ]
            for handler in readers:
                if handler is not None and field_name in handler.fields_read:
                    return False
        return True


class FusionPass(Pass):
    name = "fuse_elements"
    level = "chain"

    def enabled(self, options) -> bool:
        return options.fusion

    def run(self, state: PipelineState, context) -> PassOutcome:
        elements, groups, refusals = fuse_elements(
            state.elements, context.pinned_pairs, context.registry
        )
        state.elements = list(elements)
        rewrites = sum(len(group) - 1 for group in groups)
        notes = [f"fused {' + '.join(group)}" for group in groups]
        notes.extend(refusals)
        legality_ok = all(
            element.analysis is not None and not element.analysis.can_multiply
            for element in state.elements
            if "fused_from" in element.meta
        )
        return PassOutcome(
            rewrites=rewrites, legality_ok=legality_ok, notes=tuple(notes)
        )


class ParallelizePass(Pass):
    name = "parallelize"
    level = "chain"

    def enabled(self, options) -> bool:
        return options.parallelize

    def run(self, state: PipelineState, context) -> PassOutcome:
        analyses = state.analyses()
        stages = parallel_stages(state.order, analyses)
        state.stages = stages
        grouped = sum(len(stage) for stage in stages if len(stage) > 1)
        legality_ok = all(
            bool(can_parallelize(analyses[a], analyses[b]))
            for stage in stages
            for i, a in enumerate(stage)
            for b in stage[i + 1 :]
        )
        notes = tuple(
            "stage: " + " | ".join(stage) for stage in stages if len(stage) > 1
        )
        return PassOutcome(rewrites=grouped, legality_ok=legality_ok, notes=notes)


# -- the manager ---------------------------------------------------------


def default_pipeline() -> List[Pass]:
    """The standard compilation pipeline, in order."""
    return [
        ConstantFoldingPass(),
        PredicatePushdownPass(),
        ReorderPass(),
        DeadFieldPass(),
        FusionPass(),
        ParallelizePass(),
    ]


@dataclass
class PassManager:
    """Runs a pipeline of passes over a chain, collecting reports."""

    passes: List[Pass] = field(default_factory=default_pipeline)

    def run(
        self,
        elements: Sequence[ElementIR],
        context,
        options,
    ) -> Tuple[PipelineState, List[PassReport]]:
        state = PipelineState(
            elements=list(elements),
            original_order=tuple(element.name for element in elements),
        )
        for element in state.elements:
            if element.analysis is None:
                analyze_element(element, context.registry)
        verify = bool(getattr(options, "verify", False))
        reports: List[PassReport] = []
        for pass_ in self.passes:
            size_before = chain_ir_size(state.elements)
            if not pass_.enabled(options):
                reports.append(
                    PassReport(
                        name=pass_.name,
                        level=pass_.level,
                        ir_size_before=size_before,
                        ir_size_after=size_before,
                        rewrites=0,
                        wall_ms=0.0,
                        skipped=True,
                        notes=("disabled by options",),
                    )
                )
                continue
            snapshot = list(state.elements) if verify else []
            start = time.perf_counter()
            outcome = pass_.run(state, context)
            wall_ms = (time.perf_counter() - start) * 1000.0
            validated: Optional[bool] = None
            verify_ms = 0.0
            counterexample = ""
            counterexample_span = None
            notes = outcome.notes
            if verify and not outcome.skipped:
                from ..analysis.validate import validate_rewrite

                verify_start = time.perf_counter()
                verdict = validate_rewrite(
                    snapshot,
                    state.elements,
                    getattr(context, "schema", None),
                    context.registry,
                    pass_name=pass_.name,
                    stages=state.stages if pass_.name == "parallelize" else (),
                )
                verify_ms = (time.perf_counter() - verify_start) * 1000.0
                validated = verdict.ok
                counterexample = verdict.counterexample
                counterexample_span = verdict.span
                if verdict.counterexample:
                    notes = notes + (
                        f"VALIDATION FAILED: {verdict.counterexample}",
                    )
                elif verdict.notes:
                    notes = notes + verdict.notes
            reports.append(
                PassReport(
                    name=pass_.name,
                    level=pass_.level,
                    ir_size_before=size_before,
                    ir_size_after=chain_ir_size(state.elements),
                    rewrites=outcome.rewrites,
                    wall_ms=wall_ms,
                    legality_ok=outcome.legality_ok,
                    skipped=outcome.skipped,
                    notes=notes,
                    validated=validated,
                    verify_ms=verify_ms,
                    counterexample=counterexample,
                    counterexample_span=counterexample_span,
                )
            )
        if not state.stages:
            state.stages = tuple((name,) for name in state.order)
        return state, reports


# -- graph-level passes --------------------------------------------------


class GraphDeadFieldPass(Pass):
    """Mesh-wide dead-field elimination, registered at level ``graph``.

    A graph-level pass transforms *every edge's chain at once* under
    whole-mesh facts (here: interprocedural field liveness), so it does
    not fit :class:`PassManager`'s single-chain ``run``;
    :class:`GraphPassManager` drives it instead. The heavy lifting lives
    in :func:`repro.analysis.graph.eliminate_dead_fields_graph` and is
    imported lazily — same layering trick as the validator import in
    :meth:`PassManager.run` (the IR layer must not import the analysis
    layer at module load)."""

    name = "graph_dead_fields"
    level = "graph"

    def enabled(self, options) -> bool:
        return bool(getattr(options, "dead_fields", True))

    def run_graph(self, graph, program, schema, registry, verify=True):
        from ..analysis.graph import eliminate_dead_fields_graph

        return eliminate_dead_fields_graph(
            graph, program, schema, registry=registry, verify=verify
        )


def graph_pipeline() -> List[Pass]:
    """Graph-level passes, in order (currently one)."""
    return [GraphDeadFieldPass()]


@dataclass
class GraphPassManager:
    """Runs graph-level passes over a whole :class:`ServiceGraph`,
    reporting in the same :class:`PassReport` shape (and table) as the
    per-chain manager — ``ir before``/``ir after`` become total request
    wire-header bytes across edges, ``rewrites`` the number of edges
    whose header shrank."""

    passes: List[Pass] = field(default_factory=graph_pipeline)

    def run(
        self, graph, program, schema, registry=None, options=None, verify=True
    ) -> Tuple[object, List[PassReport]]:
        plan = None
        reports: List[PassReport] = []
        for pass_ in self.passes:
            if options is not None and not pass_.enabled(options):
                reports.append(
                    PassReport(
                        name=pass_.name,
                        level=pass_.level,
                        ir_size_before=0,
                        ir_size_after=0,
                        rewrites=0,
                        wall_ms=0.0,
                        skipped=True,
                        notes=("disabled by options",),
                    )
                )
                continue
            start = time.perf_counter()
            plan = pass_.run_graph(
                graph, program, schema, registry, verify=verify
            )
            wall_ms = (time.perf_counter() - start) * 1000.0
            changes = plan.changes.values()
            verdicts = [c.verdict for c in changes if c.verdict is not None]
            failed = [v for v in verdicts if v.ok is False]
            notes = tuple(
                f"{change.edge.name}: "
                f"-{change.bytes_before - change.bytes_after} B "
                f"(dropped {', '.join(change.removed_wire)})"
                for change in changes
                if change.shrunk
            )
            reports.append(
                PassReport(
                    name=pass_.name,
                    level=pass_.level,
                    ir_size_before=sum(c.bytes_before for c in changes),
                    ir_size_after=sum(c.bytes_after for c in changes),
                    rewrites=len(plan.shrunk_edges()),
                    wall_ms=wall_ms,
                    legality_ok=not failed,
                    notes=notes,
                    validated=(
                        all(v.ok for v in verdicts) if verdicts else None
                    ),
                    counterexample=(
                        failed[0].counterexample if failed else ""
                    ),
                )
            )
        return plan, reports


def format_report_table(reports: Sequence[PassReport]) -> str:
    """Render pass reports as the aligned table ``--explain`` prints.

    A ``verified`` column (verdict plus validator cost) appears only when
    at least one pass actually ran under ``--verify``."""
    verified = any(report.validated is not None for report in reports)
    headers = ("pass", "level", "ir before", "ir after", "rewrites", "ms", "legal")
    if verified:
        headers = headers + ("verified",)
    rows = [headers]
    for report in reports:
        row = (
            report.name,
            report.level,
            str(report.ir_size_before),
            "skipped" if report.skipped else str(report.ir_size_after),
            "-" if report.skipped else str(report.rewrites),
            "-" if report.skipped else f"{report.wall_ms:.2f}",
            "-" if report.skipped else ("ok" if report.legality_ok else "VIOLATED"),
        )
        if verified:
            if report.validated is None:
                row = row + ("-",)
            elif report.validated:
                row = row + (f"ok ({report.verify_ms:.2f}ms)",)
            else:
                row = row + ("FAILED",)
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    for report in reports:
        for note in report.notes:
            if not report.skipped:
                lines.append(f"    [{report.name}] {note}")
    return "\n".join(lines)
