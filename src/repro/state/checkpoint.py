"""Crash-survivable state checkpoints (repro.faults).

Live migration (:mod:`repro.state.migration`) assumes a *cooperating*
source: the flip drains the source's delta log directly. A crashed
machine cannot cooperate — whatever sat only in its memory is gone. The
:class:`Checkpointer` therefore keeps a **warm standby** of watched
element state on the controller side, continuously and off the critical
path:

1. every ``stream_interval_s`` it drains each watched table's delta log
   and appends the deltas to a controller-side *pending backlog* (this
   is the paper §5.2 delta log, pointed at a remote sink);
2. every ``fold_every`` streams it folds the backlog into the shadow
   table (a background cost, not a blackout).

On recovery, :meth:`restore` materializes shadow + backlog into the
replacement instance. The blackout pays **only the backlog replay and a
fixed flip** — never a table-size-proportional copy, because the shadow
was already resident before the crash. That is the §5.2 disruption
property, extended to crashes; ``benchmarks/test_recovery.py`` pins it.

Writes after the last stream tick were never off the machine and are
honestly lost (``tail_writes_lost`` counts the detected cases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from typing import Callable

from ..errors import StateError
from .table import Delta, StateTable


@dataclass
class CheckpointTiming:
    """Cost parameters (microseconds), matched to MigrationTiming."""

    per_delta_stream_us: float = 0.1  # background: ship one delta out
    per_delta_fold_us: float = 0.2  # background: fold into the shadow
    per_delta_replay_us: float = 0.3  # blackout: replay on the target
    flip_fixed_us: float = 50.0  # blackout: routing switch propagation


@dataclass
class RestoreReport:
    """What one restore recovered and what the blackout paid for it."""

    element: str
    rows_restored: int = 0
    deltas_replayed: int = 0
    restore_s: float = 0.0


@dataclass
class _Watch:
    """Controller-side standby for one element's StateStore."""

    store: object  # StateStore
    #: shadow tables (folded standby copy), by table name
    shadow: Dict[str, StateTable] = field(default_factory=dict)
    #: streamed-but-not-yet-folded deltas, by table name
    pending: Dict[str, List[Delta]] = field(default_factory=dict)
    #: last streamed copy of the element's scalar vars
    vars: Dict[str, object] = field(default_factory=dict)
    #: reachability of the hosting machine; None = always reachable
    live_of: Optional[Callable[[], bool]] = None
    streams_since_fold: int = 0
    deltas_streamed: int = 0

    @property
    def live(self) -> bool:
        return self.live_of() if self.live_of is not None else True


class Checkpointer:
    """Streams delta logs of watched elements to a warm standby.

    Run :meth:`run` as a simulation process alongside the workload; on a
    crash, the orchestrator calls :meth:`restore` against the
    replacement instance's store and then :meth:`retarget` so streaming
    continues from the new instance.
    """

    def __init__(
        self,
        sim,
        stream_interval_s: float = 0.005,
        fold_every: int = 4,
        timing: Optional[CheckpointTiming] = None,
    ):
        self.sim = sim
        self.stream_interval_s = stream_interval_s
        self.fold_every = max(1, fold_every)
        self.timing = timing or CheckpointTiming()
        self._watches: Dict[str, _Watch] = {}
        self.tail_writes_lost = 0

    # -- registration -------------------------------------------------------

    def watch(self, element: str, store, live_of=None) -> None:
        """Start protecting an element's state. The current contents
        become the initial shadow (a bootstrap copy, paid nowhere: in a
        real system this rides the initial code push). ``live_of`` is an
        optional ``() -> bool`` for the hosting machine's reachability —
        a dead host's delta log cannot be drained."""
        watch = _Watch(store=store, live_of=live_of)
        for name, table in store.tables.items():
            shadow = StateTable(table.decl)
            shadow.load_snapshot(table.snapshot())
            watch.shadow[name] = shadow
            watch.pending[name] = []
            table.start_delta_log()
        watch.vars = dict(store.vars)
        self._watches[element] = watch

    def retarget(self, element: str, store, live_of=None) -> None:
        """Point an existing watch at a replacement instance (after
        recovery): its restored contents are the new shadow baseline."""
        if element not in self._watches:
            raise StateError(f"no checkpoint watch for element {element!r}")
        self.watch(element, store, live_of=live_of)

    def backlog(self, element: str) -> int:
        """Deltas that a restore right now would have to replay."""
        watch = self._watch(element)
        return sum(len(deltas) for deltas in watch.pending.values())

    def _watch(self, element: str) -> _Watch:
        try:
            return self._watches[element]
        except KeyError:
            raise StateError(
                f"no checkpoint watch for element {element!r}"
            ) from None

    # -- the streaming process ----------------------------------------------

    def stream_once(self) -> Generator:
        """One streaming tick over every watch: drain delta logs into
        the pending backlog, fold on cadence. An unreachable source
        (its ``live_of`` says down) is skipped — you cannot read a dead
        host's memory — but folding of already-streamed deltas
        continues."""
        for watch in self._watches.values():
            streamed = 0
            if watch.live:
                for name, table in watch.store.tables.items():
                    deltas = table.drain_delta_log()
                    table.start_delta_log()
                    watch.pending[name].extend(deltas)
                    streamed += len(deltas)
                watch.vars = dict(watch.store.vars)
            watch.deltas_streamed += streamed
            if streamed:
                yield self.sim.timeout(
                    streamed * self.timing.per_delta_stream_us * 1e-6
                )
            watch.streams_since_fold += 1
            if watch.streams_since_fold >= self.fold_every:
                watch.streams_since_fold = 0
                folded = 0
                for name, deltas in watch.pending.items():
                    watch.shadow[name].apply_deltas(deltas)
                    folded += len(deltas)
                    deltas.clear()
                if folded:
                    yield self.sim.timeout(
                        folded * self.timing.per_delta_fold_us * 1e-6
                    )

    def run(self, duration_s: float) -> Generator:
        """Simulation process: stream on the configured interval."""
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.stream_interval_s)
            yield from self.stream_once()

    # -- crash handling ------------------------------------------------------

    def mark_crashed(self, element: str) -> int:
        """The source machine just died: deltas still in its in-memory
        log never reached us and are lost. Returns how many (observable
        here only because this is a simulation — a real controller
        would not know)."""
        watch = self._watch(element)
        lost = 0
        for table in watch.store.tables.values():
            try:
                lost += len(table.drain_delta_log())
            except StateError:
                pass  # log not running — nothing was pending
        self.tail_writes_lost += lost
        return lost

    def restore(self, element: str, target_store) -> Generator:
        """Simulation process, run *inside the blackout*: materialize
        shadow + pending backlog into ``target_store``. Pays backlog
        replay plus a fixed flip — nothing proportional to table size.
        Returns a :class:`RestoreReport`."""
        watch = self._watch(element)
        report = RestoreReport(element=element)
        started = self.sim.now
        replayed = 0
        for name, shadow in watch.shadow.items():
            pending = watch.pending[name]
            target = target_store.table(name)
            target.load_snapshot(shadow.rows())
            target.apply_deltas(pending)
            report.rows_restored += len(target)
            replayed += len(pending)
        target_store.vars.update(watch.vars)
        report.deltas_replayed = replayed
        blackout_s = (
            replayed * self.timing.per_delta_replay_us
            + self.timing.flip_fixed_us
        ) * 1e-6
        yield self.sim.timeout(blackout_s)
        report.restore_s = self.sim.now - started
        return report
