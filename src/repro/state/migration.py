"""Live state migration (paper §5.2).

"The decoupling of code and state, and the tabular nature of state,
enables us to reconfigure the network without disrupting applications.
To migrate or scale out a load balancer, the controller can copy over
its state and start running a new instance; while reducing the number of
load balancer instances, it can merge their states."

The protocol implemented here is the standard two-phase live migration:

1. **warm copy** — start the source's delta log, snapshot the table, and
   load the snapshot into the target while the source keeps serving;
2. **flip** — pause the source (a short blackout during which the data
   plane buffers, not drops), replay the accumulated deltas on the
   target, switch routing, resume.

Disruption = the flip duration only, which is proportional to the delta
backlog, not the table size — the property the scaling benchmark checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

from ..errors import StateError
from .table import StateTable


@dataclass
class MigrationReport:
    """What one migration did and what it cost."""

    table: str
    rows_copied: int = 0
    deltas_replayed: int = 0
    warm_copy_s: float = 0.0
    pause_s: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class MigrationTiming:
    """Cost parameters for migration work (microseconds)."""

    per_row_copy_us: float = 0.5
    per_delta_replay_us: float = 0.3
    flip_fixed_us: float = 50.0  # routing switch propagation


class Migrator:
    """Runs live migrations inside the simulator.

    ``pause_hook``/``resume_hook`` let the data plane buffer traffic
    during the flip (the processor wires these to its queue).
    """

    def __init__(
        self,
        sim,
        timing: Optional[MigrationTiming] = None,
        pause_hook: Optional[Callable[[], None]] = None,
        resume_hook: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.timing = timing or MigrationTiming()
        self.pause_hook = pause_hook or (lambda: None)
        self.resume_hook = resume_hook or (lambda: None)

    def migrate(
        self, source: StateTable, target: StateTable
    ) -> Generator:
        """Simulation process: move ``source``'s contents to ``target``.
        Returns a :class:`MigrationReport`."""
        if source.name != target.name:
            raise StateError(
                f"cannot migrate {source.name!r} into {target.name!r}"
            )
        report = MigrationReport(table=source.name, started_at=self.sim.now)
        # phase 1: warm copy under a delta log
        source.start_delta_log()
        snapshot = source.snapshot()
        report.rows_copied = len(snapshot)
        warm_copy_s = (
            report.rows_copied * self.timing.per_row_copy_us * 1e-6
        )
        if warm_copy_s > 0:
            yield self.sim.timeout(warm_copy_s)
        report.warm_copy_s = warm_copy_s
        target.load_snapshot(snapshot)
        # phase 2: flip — pause, replay deltas, switch, resume
        self.pause_hook()
        pause_started = self.sim.now
        deltas = source.drain_delta_log()
        report.deltas_replayed = len(deltas)
        replay_s = (
            len(deltas) * self.timing.per_delta_replay_us
            + self.timing.flip_fixed_us
        ) * 1e-6
        yield self.sim.timeout(replay_s)
        target.apply_deltas(deltas)
        self.resume_hook()
        report.pause_s = self.sim.now - pause_started
        report.finished_at = self.sim.now
        return report

    def scale_out(
        self, source: StateTable, ways: int
    ) -> Generator:
        """Split a keyed table across ``ways`` fresh instances.

        Returns (tables, report). The source is left empty (its rows now
        live in the partitions)."""
        if ways < 2:
            raise StateError("scale_out needs ways >= 2")
        report = MigrationReport(table=source.name, started_at=self.sim.now)
        source.start_delta_log()
        parts = source.split(ways)
        report.rows_copied = sum(len(p) for p in parts)
        warm_copy_s = report.rows_copied * self.timing.per_row_copy_us * 1e-6
        if warm_copy_s > 0:
            yield self.sim.timeout(warm_copy_s)
        report.warm_copy_s = warm_copy_s
        self.pause_hook()
        pause_started = self.sim.now
        deltas = source.drain_delta_log()
        report.deltas_replayed = len(deltas)
        replay_s = (
            len(deltas) * self.timing.per_delta_replay_us
            + self.timing.flip_fixed_us
        ) * 1e-6
        yield self.sim.timeout(replay_s)
        for delta in deltas:
            row = delta.as_row()
            index = parts[0].partition_key_for(row) % ways if parts[0].keyed else 0
            parts[index].apply_deltas([delta])
        source.clear()
        self.resume_hook()
        report.pause_s = self.sim.now - pause_started
        report.finished_at = self.sim.now
        return parts, report

    def scale_in(
        self, decl, sources: Sequence[StateTable]
    ) -> Generator:
        """Merge several instances' tables into one (scale-in)."""
        report = MigrationReport(
            table=decl.name, started_at=self.sim.now
        )
        self.pause_hook()
        pause_started = self.sim.now
        merged = StateTable.merge(decl, sources)
        report.rows_copied = len(merged)
        merge_s = (
            report.rows_copied * self.timing.per_row_copy_us
            + self.timing.flip_fixed_us
        ) * 1e-6
        yield self.sim.timeout(merge_s)
        self.resume_hook()
        report.pause_s = self.sim.now - pause_started
        report.finished_at = self.sim.now
        return merged, report
