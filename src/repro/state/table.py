"""State tables for ADN elements.

The paper's central enabler for migration and scaling (§5.2) is that
element state is *decoupled from code and tabular*: the controller can
snapshot a table, split it by key across new instances, or merge the
tables of instances being decommissioned. This module implements those
operations with schema checking and a delta log for live migration.

Tables come in three shapes:

* **keyed** — one or more KEY columns; rows are unique per key and the
  table can be *partitioned* by key hash (scale-out) and *merged* by
  union (scale-in, last-writer-wins per key).
* **bag** — no key; rows are an unordered multiset; merging concatenates.
* **append-only** — write-only sinks (logs); reads are disallowed on the
  data path, and merging concatenates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..dsl.ast_nodes import StateDecl
from ..errors import StateError

Row = Dict[str, object]


def _stable_key_hash(value: object) -> int:
    """Deterministic hash for partitioning (process-salt free)."""
    import hashlib

    data = repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class Delta:
    """One logged mutation, replayable on another table instance."""

    op: str  # "insert" | "update" | "delete"
    row: Tuple[Tuple[str, object], ...]  # the affected row, as sorted items

    @classmethod
    def of(cls, op: str, row: Row) -> "Delta":
        return cls(op=op, row=tuple(sorted(row.items())))

    def as_row(self) -> Row:
        return dict(self.row)


class StateTable:
    """A mutable table instance owned by one element replica."""

    def __init__(self, decl: StateDecl):
        self.decl = decl
        self.name = decl.name
        self.columns: Tuple[str, ...] = tuple(col.name for col in decl.columns)
        self.key_columns: Tuple[str, ...] = tuple(
            col.name for col in decl.columns if col.is_key
        )
        self.append_only = decl.append_only
        self._by_key: Dict[Tuple[object, ...], Row] = {}
        self._rows: List[Row] = []  # for bag / append-only tables
        self._delta_log: Optional[List[Delta]] = None

    # -- basics -----------------------------------------------------------

    @property
    def keyed(self) -> bool:
        return bool(self.key_columns)

    def __len__(self) -> int:
        return len(self._by_key) if self.keyed else len(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate rows (copies are not made; do not mutate)."""
        if self.keyed:
            return iter(self._by_key.values())
        return iter(self._rows)

    def _key_of(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[col] for col in self.key_columns)

    def _check_row(self, row: Row) -> Row:
        if set(row) != set(self.columns):
            raise StateError(
                f"table {self.name!r}: row fields {sorted(row)} != "
                f"columns {sorted(self.columns)}"
            )
        for col in self.decl.columns:
            if row[col.name] is not None and not col.type.accepts(row[col.name]):
                raise StateError(
                    f"table {self.name!r}: column {col.name!r} expects "
                    f"{col.type.value}, got {row[col.name]!r}"
                )
        return row

    def contains_key(self, value: object) -> bool:
        """Membership test on the (single-column) key; used by the DSL's
        ``contains(table, value)``."""
        if not self.keyed:
            raise StateError(f"contains() on unkeyed table {self.name!r}")
        if len(self.key_columns) == 1:
            return (value,) in self._by_key
        return any(key[0] == value for key in self._by_key)

    def get(self, *key: object) -> Optional[Row]:
        """Row with the given key values, or None."""
        if not self.keyed:
            raise StateError(f"get() on unkeyed table {self.name!r}")
        return self._by_key.get(tuple(key))

    # -- mutations ------------------------------------------------------

    def insert(self, row: Row) -> None:
        row = dict(self._check_row(dict(row)))
        if self.keyed:
            self._by_key[self._key_of(row)] = row
        else:
            self._rows.append(row)
        self._log(Delta.of("insert", row))

    def insert_values(self, values: Sequence[object]) -> None:
        """Insert a positional row (INSERT INTO ... VALUES)."""
        if len(values) != len(self.columns):
            raise StateError(
                f"table {self.name!r}: {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.insert(dict(zip(self.columns, values)))

    def update_where(
        self,
        predicate: Callable[[Row], bool],
        updater: Callable[[Row], Dict[str, object]],
    ) -> int:
        """Apply ``updater`` to each row matching ``predicate``.

        Returns the number of rows changed. Updating key columns is
        rejected (it would silently re-home rows between partitions).
        """
        if self.append_only:
            raise StateError(f"update on append-only table {self.name!r}")
        changed = 0
        for row in list(self.rows()):
            if not predicate(row):
                continue
            new_values = updater(row)
            if any(col in self.key_columns for col in new_values):
                raise StateError(
                    f"table {self.name!r}: updating key columns is not allowed"
                )
            row.update(new_values)
            self._check_row(row)
            changed += 1
            self._log(Delta.of("update", row))
        return changed

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count."""
        if self.append_only:
            raise StateError(f"delete on append-only table {self.name!r}")
        removed = 0
        if self.keyed:
            doomed = [k for k, row in self._by_key.items() if predicate(row)]
            for key in doomed:
                self._log(Delta.of("delete", self._by_key[key]))
                del self._by_key[key]
            removed = len(doomed)
        else:
            kept: List[Row] = []
            for row in self._rows:
                if predicate(row):
                    self._log(Delta.of("delete", row))
                    removed += 1
                else:
                    kept.append(row)
            self._rows = kept
        return removed

    def clear(self) -> None:
        self._by_key.clear()
        self._rows.clear()

    # -- snapshot / migration --------------------------------------------------

    def snapshot(self) -> List[Row]:
        """Deep-enough copy of all rows (rows are copied, values shared)."""
        return [dict(row) for row in self.rows()]

    def load_snapshot(self, rows: Iterable[Row]) -> None:
        """Replace contents with a snapshot (used when migrating in)."""
        self.clear()
        for row in rows:
            self.insert(row)

    def start_delta_log(self) -> None:
        """Begin recording mutations (phase 1 of live migration)."""
        self._delta_log = []

    def drain_delta_log(self) -> List[Delta]:
        """Stop recording and return the accumulated deltas."""
        if self._delta_log is None:
            raise StateError(f"table {self.name!r}: delta log not started")
        deltas, self._delta_log = self._delta_log, None
        return deltas

    def apply_deltas(self, deltas: Iterable[Delta]) -> None:
        """Replay deltas captured on another instance."""
        for delta in deltas:
            row = delta.as_row()
            if delta.op in ("insert", "update"):
                self.insert(row)  # keyed insert is an upsert
            elif delta.op == "delete":
                if self.keyed:
                    self._by_key.pop(self._key_of(row), None)
                else:
                    try:
                        self._rows.remove(row)
                    except ValueError:
                        pass
            else:
                raise StateError(f"unknown delta op {delta.op!r}")

    def _log(self, delta: Delta) -> None:
        if self._delta_log is not None:
            self._delta_log.append(delta)

    # -- split / merge (paper §5.2) ----------------------------------------

    def split(self, ways: int) -> List["StateTable"]:
        """Partition a keyed table into ``ways`` disjoint tables by key
        hash. Bag and append-only tables are split round-robin (their rows
        carry no affinity)."""
        if ways <= 0:
            raise StateError("split ways must be positive")
        parts = [StateTable(self.decl) for _ in range(ways)]
        if self.keyed:
            for key, row in self._by_key.items():
                index = _stable_key_hash(key) % ways
                parts[index].insert(dict(row))
        else:
            for row, part in zip(self._rows, itertools.cycle(parts)):
                part.insert(dict(row))
        return parts

    @classmethod
    def merge(cls, decl: StateDecl, tables: Sequence["StateTable"]) -> "StateTable":
        """Union the contents of several instances into one.

        For keyed tables, duplicate keys resolve last-writer-wins in the
        order given (callers pass instances oldest-first).
        """
        merged = cls(decl)
        for table in tables:
            if table.name != decl.name:
                raise StateError(
                    f"cannot merge table {table.name!r} into {decl.name!r}"
                )
            for row in table.rows():
                merged.insert(dict(row))
        return merged

    def partition_key_for(self, row: Row) -> int:
        """Stable hash of a row's key (router side of a split table)."""
        if not self.keyed:
            raise StateError(f"table {self.name!r} has no key")
        return _stable_key_hash(self._key_of(row))


class StateStore:
    """All state of one element replica: its tables plus scalar vars."""

    def __init__(self, decls: Sequence[StateDecl], variables: Dict[str, object]):
        self.tables: Dict[str, StateTable] = {
            decl.name: StateTable(decl) for decl in decls
        }
        self.vars: Dict[str, object] = dict(variables)

    def table(self, name: str) -> StateTable:
        try:
            return self.tables[name]
        except KeyError:
            raise StateError(f"unknown state table {name!r}") from None

    def snapshot(self) -> Dict[str, object]:
        """Full state snapshot: tables and vars."""
        return {
            "tables": {name: t.snapshot() for name, t in self.tables.items()},
            "vars": dict(self.vars),
        }

    def load_snapshot(self, snapshot: Dict[str, object]) -> None:
        for name, rows in snapshot["tables"].items():  # type: ignore[union-attr]
            self.table(name).load_snapshot(rows)
        self.vars.update(snapshot["vars"])  # type: ignore[arg-type]
