"""State tables for ADN elements.

The paper's central enabler for migration and scaling (§5.2) is that
element state is *decoupled from code and tabular*: the controller can
snapshot a table, split it by key across new instances, or merge the
tables of instances being decommissioned. This module implements those
operations with schema checking and a delta log for live migration.

Tables come in three shapes:

* **keyed** — one or more KEY columns; rows are unique per key and the
  table can be *partitioned* by key hash (scale-out) and *merged* by
  union (scale-in, last-writer-wins per key).
* **bag** — no key; rows are an unordered multiset; merging concatenates.
* **append-only** — write-only sinks (logs); reads are disallowed on the
  data path, and merging concatenates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..dsl.ast_nodes import StateDecl
from ..errors import StateError

Row = Dict[str, object]


def _stable_key_hash(value: object) -> int:
    """Deterministic hash for partitioning (process-salt free)."""
    import hashlib

    data = repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class Delta:
    """One logged mutation, replayable on another table instance."""

    op: str  # "insert" | "update" | "delete"
    row: Tuple[Tuple[str, object], ...]  # the affected row, as sorted items

    @classmethod
    def of(cls, op: str, row: Row) -> "Delta":
        return cls(op=op, row=tuple(sorted(row.items())))

    def as_row(self) -> Row:
        return dict(self.row)


class StateTable:
    """A mutable table instance owned by one element replica."""

    def __init__(self, decl: StateDecl):
        self.decl = decl
        self.name = decl.name
        self.columns: Tuple[str, ...] = tuple(col.name for col in decl.columns)
        self.key_columns: Tuple[str, ...] = tuple(
            col.name for col in decl.columns if col.is_key
        )
        self.append_only = decl.append_only
        self._by_key: Dict[Tuple[object, ...], Row] = {}
        self._rows: List[Row] = []  # for bag / append-only tables
        self._delta_log: Optional[List[Delta]] = None
        #: optional shadow observer (:class:`StateSanitizer` binds one per
        #: attached replica); mirrors the delta-log idiom — mutation paths
        #: notify it with before/after rows, migration replay does not
        self.observer: Optional["_TableObserver"] = None

    # -- basics -----------------------------------------------------------

    @property
    def keyed(self) -> bool:
        return bool(self.key_columns)

    def __len__(self) -> int:
        return len(self._by_key) if self.keyed else len(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate rows (copies are not made; do not mutate)."""
        if self.keyed:
            return iter(self._by_key.values())
        return iter(self._rows)

    def _key_of(self, row: Row) -> Tuple[object, ...]:
        return tuple(row[col] for col in self.key_columns)

    def _check_row(self, row: Row) -> Row:
        if set(row) != set(self.columns):
            raise StateError(
                f"table {self.name!r}: row fields {sorted(row)} != "
                f"columns {sorted(self.columns)}"
            )
        for col in self.decl.columns:
            if row[col.name] is not None and not col.type.accepts(row[col.name]):
                raise StateError(
                    f"table {self.name!r}: column {col.name!r} expects "
                    f"{col.type.value}, got {row[col.name]!r}"
                )
        return row

    def contains_key(self, value: object) -> bool:
        """Membership test on the (single-column) key; used by the DSL's
        ``contains(table, value)``."""
        if not self.keyed:
            raise StateError(f"contains() on unkeyed table {self.name!r}")
        if len(self.key_columns) == 1:
            return (value,) in self._by_key
        return any(key[0] == value for key in self._by_key)

    def get(self, *key: object) -> Optional[Row]:
        """Row with the given key values, or None."""
        if not self.keyed:
            raise StateError(f"get() on unkeyed table {self.name!r}")
        return self._by_key.get(tuple(key))

    # -- mutations ------------------------------------------------------

    def insert(self, row: Row) -> None:
        row = dict(self._check_row(dict(row)))
        previous: Optional[Row] = None
        if self.keyed:
            previous = self._by_key.get(self._key_of(row))
            self._by_key[self._key_of(row)] = row
        else:
            self._rows.append(row)
        self._log(Delta.of("insert", row))
        if self.observer is not None:
            self.observer.on_insert(self, row, previous)

    def insert_values(self, values: Sequence[object]) -> None:
        """Insert a positional row (INSERT INTO ... VALUES)."""
        if len(values) != len(self.columns):
            raise StateError(
                f"table {self.name!r}: {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.insert(dict(zip(self.columns, values)))

    def update_where(
        self,
        predicate: Callable[[Row], bool],
        updater: Callable[[Row], Dict[str, object]],
    ) -> int:
        """Apply ``updater`` to each row matching ``predicate``.

        Returns the number of rows changed. Updating key columns is
        rejected (it would silently re-home rows between partitions).
        """
        if self.append_only:
            raise StateError(f"update on append-only table {self.name!r}")
        changed = 0
        for row in list(self.rows()):
            if not predicate(row):
                continue
            new_values = updater(row)
            if any(col in self.key_columns for col in new_values):
                raise StateError(
                    f"table {self.name!r}: updating key columns is not allowed"
                )
            before = dict(row)
            row.update(new_values)
            self._check_row(row)
            changed += 1
            self._log(Delta.of("update", row))
            if self.observer is not None and before != row:
                self.observer.on_update(self, before, dict(row))
        return changed

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count."""
        if self.append_only:
            raise StateError(f"delete on append-only table {self.name!r}")
        removed = 0
        if self.keyed:
            doomed = [k for k, row in self._by_key.items() if predicate(row)]
            for key in doomed:
                self._log(Delta.of("delete", self._by_key[key]))
                if self.observer is not None:
                    self.observer.on_delete(self, self._by_key[key])
                del self._by_key[key]
            removed = len(doomed)
        else:
            kept: List[Row] = []
            for row in self._rows:
                if predicate(row):
                    self._log(Delta.of("delete", row))
                    if self.observer is not None:
                        self.observer.on_delete(self, row)
                    removed += 1
                else:
                    kept.append(row)
            self._rows = kept
        return removed

    def clear(self) -> None:
        self._by_key.clear()
        self._rows.clear()

    # -- snapshot / migration --------------------------------------------------

    def snapshot(self) -> List[Row]:
        """Deep-enough copy of all rows (rows are copied, values shared)."""
        return [dict(row) for row in self.rows()]

    def load_snapshot(self, rows: Iterable[Row]) -> None:
        """Replace contents with a snapshot (used when migrating in)."""
        self.clear()
        for row in rows:
            self.insert(row)

    def start_delta_log(self) -> None:
        """Begin recording mutations (phase 1 of live migration)."""
        self._delta_log = []

    def drain_delta_log(self) -> List[Delta]:
        """Stop recording and return the accumulated deltas."""
        if self._delta_log is None:
            raise StateError(f"table {self.name!r}: delta log not started")
        deltas, self._delta_log = self._delta_log, None
        return deltas

    def apply_deltas(self, deltas: Iterable[Delta]) -> None:
        """Replay deltas captured on another instance."""
        for delta in deltas:
            row = delta.as_row()
            if delta.op in ("insert", "update"):
                self.insert(row)  # keyed insert is an upsert
            elif delta.op == "delete":
                if self.keyed:
                    self._by_key.pop(self._key_of(row), None)
                else:
                    try:
                        self._rows.remove(row)
                    except ValueError:
                        pass
            else:
                raise StateError(f"unknown delta op {delta.op!r}")

    def _log(self, delta: Delta) -> None:
        if self._delta_log is not None:
            self._delta_log.append(delta)

    # -- split / merge (paper §5.2) ----------------------------------------

    def split(self, ways: int) -> List["StateTable"]:
        """Partition a keyed table into ``ways`` disjoint tables by key
        hash. Bag and append-only tables are split round-robin (their rows
        carry no affinity)."""
        if ways <= 0:
            raise StateError("split ways must be positive")
        parts = [StateTable(self.decl) for _ in range(ways)]
        if self.keyed:
            for key, row in self._by_key.items():
                index = _stable_key_hash(key) % ways
                parts[index].insert(dict(row))
        else:
            for row, part in zip(self._rows, itertools.cycle(parts)):
                part.insert(dict(row))
        return parts

    @classmethod
    def merge(cls, decl: StateDecl, tables: Sequence["StateTable"]) -> "StateTable":
        """Union the contents of several instances into one.

        For keyed tables, duplicate keys resolve last-writer-wins in the
        order given (callers pass instances oldest-first).
        """
        merged = cls(decl)
        for table in tables:
            if table.name != decl.name:
                raise StateError(
                    f"cannot merge table {table.name!r} into {decl.name!r}"
                )
            for row in table.rows():
                merged.insert(dict(row))
        return merged

    def partition_key_for(self, row: Row) -> int:
        """Stable hash of a row's key (router side of a split table)."""
        if not self.keyed:
            raise StateError(f"table {self.name!r} has no key")
        return _stable_key_hash(self._key_of(row))


class StateStore:
    """All state of one element replica: its tables plus scalar vars."""

    def __init__(self, decls: Sequence[StateDecl], variables: Dict[str, object]):
        self.tables: Dict[str, StateTable] = {
            decl.name: StateTable(decl) for decl in decls
        }
        self.vars: Dict[str, object] = dict(variables)

    def table(self, name: str) -> StateTable:
        try:
            return self.tables[name]
        except KeyError:
            raise StateError(f"unknown state table {name!r}") from None

    def snapshot(self) -> Dict[str, object]:
        """Full state snapshot: tables and vars."""
        return {
            "tables": {name: t.snapshot() for name, t in self.tables.items()},
            "vars": dict(self.vars),
        }

    def load_snapshot(self, snapshot: Dict[str, object]) -> None:
        for name, rows in snapshot["tables"].items():  # type: ignore[union-attr]
            self.table(name).load_snapshot(rows)
        self.vars.update(snapshot["vars"])  # type: ignore[arg-type]


# -- shadow sanitizer (exactly-once / divergence checking) -----------------
#
# The static side (repro.analysis.effects + the ADN700 rule family) proves
# per-mutation-site idempotence and replica convergence. The sanitizer is
# the dynamic half of that contract: attached to element replicas during
# chaos/overload trials, it watches every state mutation with its RPC
# context and flags
#
# * **duplicate non-idempotent application** (maps to ADN700): a second
#   attempt of one logical RPC — attempts share an ``rpc_id`` — changed
#   state a prior attempt already changed, and the change is neither an
#   idempotent re-apply (same row content) nor rpc_id-keyed (dedup-able
#   downstream);
# * **cross-replica divergence** (maps to ADN702): replicas of one element
#   instance disagree on read-modify-write state after the trial.
#
# Chains the analysis proves clean must run sanitizer-silent; every
# violation the sanitizer raises must map to a static ADN700-family
# finding (tests/test_sanitizer.py pins both directions).


@dataclass(frozen=True)
class SanitizerViolation:
    """One dynamic exactly-once/divergence violation."""

    rule: str  # the static rule family it maps to: "ADN700" | "ADN702"
    element: str
    target: str  # "table:<name>" or "var:<name>"
    detail: str
    rpc_id: object = None
    attempt: int = 0
    tag: str = ""  # replica tag that observed it

    def describe(self) -> str:
        where = f"{self.element}/{self.target}"
        if self.rule == "ADN702":
            return f"[{self.rule}] {where}: {self.detail}"
        return (
            f"[{self.rule}] {where}: attempt {self.attempt} of rpc "
            f"{self.rpc_id!r} — {self.detail}"
        )


class _TableObserver:
    """Binds one table's mutation stream to the sanitizer with its
    replica identity (element, instance group, tag)."""

    def __init__(self, sanitizer: "StateSanitizer", element: str, instance: str, tag: str):
        self._sanitizer = sanitizer
        self._element = element
        self._instance = instance
        self._tag = tag

    def on_insert(self, table: StateTable, row: Row, previous: Optional[Row]) -> None:
        if table.keyed and previous == row:
            return  # idempotent re-apply: the upsert changed nothing
        self._sanitizer._on_mutation(
            element=self._element,
            tag=self._tag,
            target=f"table:{table.name}",
            rmw=False,
            rpc_keyable=True,
            values=tuple(row.values()),
            detail=(
                f"duplicate append to table {table.name!r} without an "
                "rpc_id column (a retry double-records)"
                if not table.keyed
                else f"duplicate keyed insert into table {table.name!r} "
                "wrote different content (non-idempotent set)"
            ),
        )

    def on_update(self, table: StateTable, before: Row, after: Row) -> None:
        self._sanitizer._on_mutation(
            element=self._element,
            tag=self._tag,
            target=f"table:{table.name}",
            rmw=True,
            rpc_keyable=False,
            values=(),
            detail=(
                f"duplicate update of table {table.name!r} changed a row "
                f"again ({before} -> {after}); the update is not "
                "idempotent under retries"
            ),
        )

    def on_delete(self, table: StateTable, row: Row) -> None:
        self._sanitizer._on_mutation(
            element=self._element,
            tag=self._tag,
            target=f"table:{table.name}",
            rmw=True,
            rpc_keyable=False,
            values=(),
            detail=(
                f"duplicate delete from table {table.name!r} removed "
                "rows again on a retried attempt"
            ),
        )


class _SanitizedVars(dict):
    """Var dict that notifies the sanitizer on every value change.

    Compiled element modules hold a direct reference to their var dict
    (``_vars[name] = value``), so the sanitizer swaps this subclass in
    on both the store and the instance when attaching.
    """

    def __init__(self, data: Dict[str, object], sanitizer: "StateSanitizer",
                 element: str, instance: str, tag: str):
        super().__init__(data)
        self._sanitizer = sanitizer
        self._element = element
        self._instance = instance
        self._tag = tag

    def __setitem__(self, key: str, value: object) -> None:
        changed = key not in self or self[key] != value
        super().__setitem__(key, value)
        if changed:
            self._sanitizer._on_mutation(
                element=self._element,
                tag=self._tag,
                target=f"var:{key}",
                rmw=True,
                rpc_keyable=False,
                values=(),
                detail=(
                    f"duplicate write to var {key!r} changed its value "
                    "again on a retried attempt"
                ),
            )


class StateSanitizer:
    """Shadow checker recording (rpc_id, mutation-site, key) at runtime.

    Wiring (see :mod:`repro.runtime.mrpc`): the stack calls
    :meth:`note_attempt` once per attempt entering ``call_raw`` (attempts
    of one logical RPC share an ``rpc_id``), processors bracket element
    execution with :meth:`enter` / :meth:`exit` so mutations carry their
    RPC context, and :meth:`attach` hooks an element replica's tables and
    vars. :meth:`check_divergence` compares replicas of one element
    instance after a trial.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.violations: List[SanitizerViolation] = []
        #: (scope, rpc_id) -> attempts seen at the stack boundary. The
        #: scope is the issuing stack's identity: each stack's retry
        #: wrapper numbers rpc_ids from the same base, so two edges can
        #: reuse one id value for unrelated logical calls
        self._attempts: Dict[Tuple[str, object], int] = {}
        #: active rpc context: (scope, rpc_id, attempt) or None
        self._ctx: Optional[Tuple[str, object, int]] = None
        #: ((scope, rpc_id), element, target) -> attempts that changed it
        self._mutated: Dict[Tuple[Tuple[str, object], str, str], Set[int]] = {}
        #: (element, target) mutated read-modify-write style at runtime —
        #: the only targets the divergence check compares (append logs
        #: and partitioned caches legitimately differ per replica)
        self._rmw_targets: Set[Tuple[str, str]] = set()
        #: attached replicas: (element, instance, tag) -> StateStore
        self._stores: Dict[Tuple[str, str, str], "StateStore"] = {}
        self.retries_observed = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, store: "StateStore", element: str,
               instance: str = "", tag: str = "",
               module: Optional[object] = None) -> None:
        """Hook one element replica's state. ``instance`` groups true
        replicas of one deployment (replicas share it, independent
        per-edge instances do not); ``tag`` names the replica. Pass the
        compiled ``module`` too so its direct var-dict reference is
        swapped along with the store's."""
        self._stores[(element, instance, tag)] = store
        for table in store.tables.values():
            table.observer = _TableObserver(self, element, instance, tag)
        if not isinstance(store.vars, _SanitizedVars):
            store.vars = _SanitizedVars(store.vars, self, element, instance, tag)
        if module is not None:
            module.vars = store.vars  # type: ignore[attr-defined]

    def detach(self, element: str, instance: str = "", tag: str = "") -> None:
        """Unhook one replica (e.g. a processor superseded by a failover
        re-plan) so its frozen state never enters the divergence check."""
        store = self._stores.pop((element, instance, tag), None)
        if store is not None:
            for table in store.tables.values():
                table.observer = None

    def note_attempt(self, rpc_id: object, scope: str = "") -> int:
        """Record one attempt entering a stack's raw path; returns its
        index (attempt 2+ of a (scope, rpc_id) is a duplicate
        execution). ``scope`` names the issuing stack."""
        key = (scope, rpc_id)
        count = self._attempts.get(key, 0) + 1
        self._attempts[key] = count
        return count

    def note_retry(self, rpc_id: object) -> None:
        """A retry filter re-issued this rpc_id (telemetry cross-check)."""
        self.retries_observed += 1

    def enter(self, rpc_id: object, scope: str = "") -> None:
        """Begin element execution for ``rpc_id`` (synchronous section)."""
        if rpc_id is None:
            self._ctx = None
            return
        self._ctx = (scope, rpc_id, self._attempts.get((scope, rpc_id), 1))

    def exit(self) -> None:
        self._ctx = None

    def reset(self) -> None:
        """Clear per-trial records (violations, attempts, mutation log);
        attached stores stay attached."""
        self.violations = []
        self._attempts = {}
        self._ctx = None
        self._mutated = {}
        self._rmw_targets = set()
        self.retries_observed = 0

    # -- mutation stream -----------------------------------------------------

    def _on_mutation(self, element: str, tag: str, target: str, rmw: bool,
                     rpc_keyable: bool, values: Tuple[object, ...],
                     detail: str) -> None:
        if not self.enabled:
            return
        if rmw:
            self._rmw_targets.add((element, target))
        if self._ctx is None:
            return  # init / migration / controller mutation: no rpc context
        scope, rpc_id, attempt = self._ctx
        if rpc_keyable and rpc_id in values:
            # the written row records the rpc_id: duplicates are
            # dedup-able downstream — exactly the static rpc_keyed proof
            return
        site = ((scope, rpc_id), element, target)
        earlier = self._mutated.setdefault(site, set())
        duplicate = any(prior != attempt for prior in earlier)
        earlier.add(attempt)
        if duplicate:
            self.violations.append(
                SanitizerViolation(
                    rule="ADN700",
                    element=element,
                    target=target,
                    detail=detail,
                    rpc_id=rpc_id,
                    attempt=attempt,
                    tag=tag,
                )
            )

    # -- post-trial divergence check ----------------------------------------

    def check_divergence(self) -> List[SanitizerViolation]:
        """Compare replicas of each element instance on the targets that
        were RMW-mutated at runtime; appends (and returns) ADN702-family
        violations for replicas that disagree."""
        found: List[SanitizerViolation] = []
        groups: Dict[Tuple[str, str], List[Tuple[str, "StateStore"]]] = {}
        for (element, instance, tag), store in self._stores.items():
            groups.setdefault((element, instance), []).append((tag, store))
        for (element, instance), replicas in sorted(groups.items()):
            if len({tag for tag, _ in replicas}) < 2:
                continue
            targets = sorted(
                target for (elem, target) in self._rmw_targets
                if elem == element
            )
            for target in targets:
                kind, name = target.split(":", 1)
                disagreement = self._replica_disagreement(
                    kind, name, replicas
                )
                if disagreement is None:
                    continue
                found.append(
                    SanitizerViolation(
                        rule="ADN702",
                        element=element,
                        target=target,
                        detail=(
                            f"replicas of instance {instance or element!r} "
                            f"diverged: {disagreement}"
                        ),
                    )
                )
        self.violations.extend(found)
        return found

    @staticmethod
    def _replica_disagreement(
        kind: str, name: str, replicas: List[Tuple[str, "StateStore"]]
    ) -> Optional[str]:
        if kind == "var":
            values = [(tag, store.vars.get(name)) for tag, store in replicas]
            if len({repr(value) for _, value in values}) > 1:
                return f"var {name!r} = " + ", ".join(
                    f"{value!r} on {tag!r}" for tag, value in values
                )
            return None
        # table: keyed tables disagree when a key present on several
        # replicas maps to different rows; bags compare as multisets
        keyed = all(
            name in store.tables and store.tables[name].keyed
            for _, store in replicas
        )
        if keyed:
            by_tag = {
                tag: {
                    tuple(row[col] for col in store.tables[name].key_columns):
                    tuple(sorted(row.items()))
                    for row in store.tables[name].rows()
                }
                for tag, store in replicas
            }
            tags = sorted(by_tag)
            for i, tag_a in enumerate(tags):
                for tag_b in tags[i + 1:]:
                    shared = set(by_tag[tag_a]) & set(by_tag[tag_b])
                    for key in sorted(shared, key=repr):
                        if by_tag[tag_a][key] != by_tag[tag_b][key]:
                            return (
                                f"table {name!r} key {key!r}: "
                                f"{dict(by_tag[tag_a][key])} on {tag_a!r} vs "
                                f"{dict(by_tag[tag_b][key])} on {tag_b!r}"
                            )
            return None
        contents = {
            tag: sorted(
                (tuple(sorted(row.items())) for row in store.tables[name].rows()),
                key=repr,
            )
            for tag, store in replicas
            if name in store.tables
        }
        if len({repr(rows) for rows in contents.values()}) > 1:
            return f"table {name!r} contents differ across replicas"
        return None
