"""Element state: tables with snapshot, split, merge, and delta logs."""

from .table import (
    Delta,
    Row,
    SanitizerViolation,
    StateSanitizer,
    StateStore,
    StateTable,
)

__all__ = [
    "Delta",
    "Row",
    "SanitizerViolation",
    "StateSanitizer",
    "StateStore",
    "StateTable",
]

from .migration import MigrationReport, MigrationTiming, Migrator

__all__ += ["MigrationReport", "MigrationTiming", "Migrator"]

from .checkpoint import Checkpointer, CheckpointTiming, RestoreReport

__all__ += ["Checkpointer", "CheckpointTiming", "RestoreReport"]
