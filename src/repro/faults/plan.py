"""Fault plans: declarative, seeded schedules of infrastructure faults.

A :class:`FaultPlan` is data, not code — a list of timestamped
:class:`FaultEvent` entries plus a seed — so an experiment's failure
scenario round-trips through JSON (``python -m repro faults --plan
plan.json``) and replays bit-identically: the injector applies events in
timestamp order and seeds every stochastic knob (link loss) from the
plan's seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdnError


class FaultPlanError(AdnError):
    """A malformed fault plan."""


#: fault kinds the injector understands
MACHINE_CRASH = "machine_crash"
PROCESSOR_HANG = "processor_hang"
PROCESSOR_SLOWDOWN = "processor_slowdown"
LINK_PARTITION = "link_partition"
LINK_LOSS = "link_loss"
LINK_LATENCY = "link_latency"
#: control-plane faults (repro.control.resilience): the machine keeps
#: serving dataplane traffic but its heartbeat/command channel to the
#: controller is severed …
CONTROL_PARTITION = "control_partition"
#: … or the machine is alive and reachable but 10-50x slow — the gray
#: failure a crash-only detector never sees
GRAY_DEGRADE = "gray_degrade"

FAULT_KINDS = (
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    LINK_PARTITION,
    LINK_LOSS,
    LINK_LATENCY,
    CONTROL_PARTITION,
    GRAY_DEGRADE,
)

#: the original substrate faults (no control-plane kinds) — the default
#: universe for the single-fault chaos soak, so historical seeds keep
#: replaying bit-identically
DATAPLANE_FAULT_KINDS = (
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    LINK_PARTITION,
    LINK_LOSS,
    LINK_LATENCY,
)

#: kinds whose target is a machine name ("" targets the fabric)
_MACHINE_KINDS = (
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    CONTROL_PARTITION,
    GRAY_DEGRADE,
)


def _event_problems(
    at_s: float,
    kind: str,
    target: str,
    duration_s: Optional[float],
    magnitude: float,
) -> List[str]:
    """Every validation problem with one event's field values, in a
    stable order. :class:`FaultEvent` raises on the first; the plan
    loader reports them all."""
    problems: List[str] = []
    if kind not in FAULT_KINDS:
        problems.append(
            f"unknown fault kind {kind!r} (choose from "
            f"{', '.join(FAULT_KINDS)})"
        )
    if at_s < 0:
        problems.append(f"fault at_s must be >= 0, got {at_s}")
    if duration_s is not None and duration_s <= 0:
        problems.append(f"fault duration_s must be positive, got {duration_s}")
    if kind in _MACHINE_KINDS and not target:
        problems.append(f"{kind} needs a target machine")
    if kind == LINK_LOSS and not (0.0 < magnitude <= 1.0):
        problems.append(
            f"link_loss magnitude is a probability in (0, 1], "
            f"got {magnitude}"
        )
    if kind == LINK_LATENCY and magnitude <= 0:
        problems.append("link_latency magnitude (extra us) must be > 0")
    if kind == PROCESSOR_SLOWDOWN and magnitude <= 1.0:
        problems.append(
            "processor_slowdown magnitude is a cost multiplier > 1"
        )
    if kind == GRAY_DEGRADE and magnitude <= 1.0:
        problems.append(
            "gray_degrade magnitude is a slowdown multiplier > 1 "
            "(typically 10-50)"
        )
    return problems


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``duration_s`` bounds transient faults (the injector reverts them);
    ``None`` means permanent for the run. ``magnitude`` is the
    kind-specific knob: loss probability for ``link_loss``, extra
    microseconds for ``link_latency``, cost multiplier for
    ``processor_slowdown``; ignored otherwise.
    """

    at_s: float
    kind: str
    target: str = ""
    duration_s: Optional[float] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        problems = _event_problems(
            self.at_s, self.kind, self.target, self.duration_s, self.magnitude
        )
        if problems:
            raise FaultPlanError(problems[0])

    def to_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "kind": self.kind,
            "target": self.target,
            "duration_s": self.duration_s,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            return cls(
                at_s=float(data["at_s"]),  # type: ignore[arg-type]
                kind=str(data["kind"]),
                target=str(data.get("target", "")),
                duration_s=(
                    float(data["duration_s"])  # type: ignore[arg-type]
                    if data.get("duration_s") is not None
                    else None
                ),
                magnitude=float(data.get("magnitude", 0.0)),  # type: ignore[arg-type]
            )
        except KeyError as missing:
            raise FaultPlanError(f"fault event missing field {missing}") from None


@dataclass
class FaultPlan:
    """A full failure scenario: events in time order plus the seed for
    every stochastic decision the faults introduce."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.at_s)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "events": [event.to_dict() for event in self.events],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        if not isinstance(data, dict) or "events" not in data:
            raise FaultPlanError('fault plan JSON needs an "events" list')
        events = [FaultEvent.from_dict(entry) for entry in data["events"]]
        return cls(events=events, seed=int(data.get("seed", 0)))

    def validate(self) -> List[str]:
        """Plan-level problems the per-event constructor cannot see:
        two *transient* events of the same (kind, target) whose active
        windows overlap. The injector's reverts are single-valued
        resets (slowdown factor back to 1.0, link conditions back to
        clean), so the first window's revert would silently cancel the
        second fault mid-flight — such plans are rejected rather than
        replayed wrong."""
        problems: List[str] = []
        windows: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for event in self.events:  # already sorted by at_s
            if event.duration_s is None:
                continue
            key = (event.kind, event.target)
            previous = windows.get(key)
            if previous is not None and event.at_s < previous[1]:
                problems.append(
                    f"overlapping transient {event.kind} on "
                    f"{event.target or 'fabric'}: window starting at "
                    f"{event.at_s}s begins before the window "
                    f"[{previous[0]}s, {previous[1]}s) reverts"
                )
            end = event.at_s + event.duration_s
            if previous is None or end > previous[1]:
                windows[key] = (event.at_s, end)
        return problems


def load_fault_plan(path: str):
    """Load a fault-plan JSON file, turning every failure mode —
    unreadable file, invalid JSON, bad kinds, negative times,
    overlapping transient reverts — into span-free ``ADN610``
    diagnostics instead of raised exceptions, mirroring
    :func:`repro.graph.lint.load_graph_spec`. Returns
    ``(plan, diagnostics)``; ``plan`` is ``None`` exactly when loading
    failed."""
    from ..lint.diagnostics import Diagnostic, Severity

    def problem(message: str) -> Diagnostic:
        return Diagnostic(
            code="ADN610",
            severity=Severity.ERROR,
            message=message,
            path=path,
            fix="fix the fault plan; see docs/faults.md for the JSON "
            "shape and the fault-kind catalog",
        )

    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return None, [problem(f"cannot read fault plan: {exc}")]
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, [problem(f"invalid JSON: {exc}")]
    if not isinstance(data, dict) or "events" not in data:
        return None, [problem('fault plan JSON needs an "events" list')]
    if not isinstance(data["events"], list):
        return None, [problem('"events" must be a list of event objects')]
    diagnostics = []
    events: List[FaultEvent] = []
    for index, raw in enumerate(data["events"]):
        if not isinstance(raw, dict):
            diagnostics.append(
                problem(f"events[{index}]: each event must be a JSON object")
            )
            continue
        missing = [key for key in ("at_s", "kind") if key not in raw]
        if missing:
            diagnostics.append(
                problem(
                    f"events[{index}]: missing required field(s) "
                    f"{', '.join(missing)}"
                )
            )
            continue
        try:
            at_s = float(raw.get("at_s", 0.0))
            kind = str(raw.get("kind", ""))
            target = str(raw.get("target", ""))
            duration_s = (
                float(raw["duration_s"])
                if raw.get("duration_s") is not None
                else None
            )
            magnitude = float(raw.get("magnitude", 0.0))
        except (TypeError, ValueError) as exc:
            diagnostics.append(problem(f"events[{index}]: {exc}"))
            continue
        field_problems = _event_problems(
            at_s, kind, target, duration_s, magnitude
        )
        if field_problems:
            diagnostics.extend(
                problem(f"events[{index}]: {entry}")
                for entry in field_problems
            )
            continue
        events.append(
            FaultEvent(
                at_s=at_s,
                kind=kind,
                target=target,
                duration_s=duration_s,
                magnitude=magnitude,
            )
        )
    if diagnostics:
        return None, diagnostics
    plan = FaultPlan(events=events, seed=int(data.get("seed", 0)))
    overlap_problems = plan.validate()
    if overlap_problems:
        return None, [problem(text) for text in overlap_problems]
    return plan, []


def random_single_fault_plan(
    seed: int,
    horizon_s: float,
    machines: List[str],
    kinds: tuple = DATAPLANE_FAULT_KINDS,
) -> FaultPlan:
    """One random transient fault inside ``horizon_s`` — the chaos
    soak's unit of trouble. Deterministic in ``seed``. Times scale with
    the horizon: the fault lands in the first half of the run and heals
    within a quarter of it."""
    rng = random.Random(seed)
    kind = rng.choice(list(kinds))
    at_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.5)
    duration_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.25)
    target = rng.choice(machines) if kind in _MACHINE_KINDS else ""
    magnitude = 0.0
    if kind == LINK_LOSS:
        magnitude = rng.uniform(0.05, 0.4)
    elif kind == LINK_LATENCY:
        magnitude = rng.uniform(20.0, 200.0)
    elif kind == PROCESSOR_SLOWDOWN:
        magnitude = rng.uniform(2.0, 8.0)
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=at_s,
                kind=kind,
                target=target,
                duration_s=duration_s,
                magnitude=magnitude,
            )
        ],
        seed=seed,
    )


def _random_magnitude(rng: random.Random, kind: str) -> float:
    if kind == LINK_LOSS:
        return rng.uniform(0.05, 0.4)
    if kind == LINK_LATENCY:
        return rng.uniform(20.0, 200.0)
    if kind == PROCESSOR_SLOWDOWN:
        return rng.uniform(2.0, 8.0)
    if kind == GRAY_DEGRADE:
        return rng.uniform(10.0, 50.0)
    return 0.0


def random_multi_fault_plan(
    seed: int,
    horizon_s: float,
    machines: List[str],
    kinds: tuple = FAULT_KINDS,
    events: int = 3,
) -> FaultPlan:
    """``events`` overlapping transient faults inside ``horizon_s`` —
    the concurrent-fault chaos schedule. Deterministic in ``seed``.
    Faults of *different* (kind, target) may overlap freely; repeated
    transients of the same (kind, target) are serialized so the plan
    passes :meth:`FaultPlan.validate` (the injector's reverts are
    single-valued)."""
    rng = random.Random(seed)
    out: List[FaultEvent] = []
    windows: Dict[Tuple[str, str], float] = {}
    for _ in range(max(1, events)):
        kind = rng.choice(list(kinds))
        at_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.6)
        duration_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.25)
        target = rng.choice(machines) if kind in _MACHINE_KINDS else ""
        key = (kind, target)
        busy_until = windows.get(key)
        if busy_until is not None and at_s < busy_until:
            at_s = busy_until + horizon_s * 0.01
        windows[key] = at_s + duration_s
        out.append(
            FaultEvent(
                at_s=at_s,
                kind=kind,
                target=target,
                duration_s=duration_s,
                magnitude=_random_magnitude(rng, kind),
            )
        )
    return FaultPlan(events=out, seed=seed)


def double_crash_plan(
    machines: List[str],
    at_s: float,
    stagger_s: float,
    outage_s: float,
    seed: int = 0,
) -> FaultPlan:
    """Two machine crashes in one blackout window: the second lands
    while the first is still down, so detection and recovery for both
    overlap (the correlated-failure case a single-fault soak never
    exercises)."""
    if len(machines) < 2:
        raise FaultPlanError("double_crash_plan needs two machines")
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=at_s,
                kind=MACHINE_CRASH,
                target=machines[0],
                duration_s=outage_s,
            ),
            FaultEvent(
                at_s=at_s + stagger_s,
                kind=MACHINE_CRASH,
                target=machines[1],
                duration_s=outage_s,
            ),
        ],
        seed=seed,
    )


def partition_during_recovery_plan(
    data_machine: str,
    controller_machine: str,
    crash_at_s: float,
    partition_at_s: float,
    partition_for_s: float,
    seed: int = 0,
) -> FaultPlan:
    """Crash a data machine, then sever the *leader controller's*
    control channel while its recovery is in flight: the leader cannot
    renew its lease or land the re-solved plan, and the standby must
    finish the job — with the epoch fence rejecting the old leader's
    late push when the partition heals."""
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=crash_at_s, kind=MACHINE_CRASH, target=data_machine
            ),
            FaultEvent(
                at_s=partition_at_s,
                kind=CONTROL_PARTITION,
                target=controller_machine,
                duration_s=partition_for_s,
            ),
        ],
        seed=seed,
    )


def controller_crash_during_failover_plan(
    data_machine: str,
    leader_machine: str,
    crash_at_s: float,
    leader_crash_at_s: float,
    leader_outage_s: Optional[float] = None,
    seed: int = 0,
) -> FaultPlan:
    """Crash a data machine and then the leader controller itself while
    it is mid-recovery: the classic orphaned-recovery scenario. With a
    warm standby the journaled recovery resumes after lease expiry;
    without one the mesh stays broken."""
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=crash_at_s, kind=MACHINE_CRASH, target=data_machine
            ),
            FaultEvent(
                at_s=leader_crash_at_s,
                kind=MACHINE_CRASH,
                target=leader_machine,
                duration_s=leader_outage_s,
            ),
        ],
        seed=seed,
    )
