"""Fault plans: declarative, seeded schedules of infrastructure faults.

A :class:`FaultPlan` is data, not code — a list of timestamped
:class:`FaultEvent` entries plus a seed — so an experiment's failure
scenario round-trips through JSON (``python -m repro faults --plan
plan.json``) and replays bit-identically: the injector applies events in
timestamp order and seeds every stochastic knob (link loss) from the
plan's seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AdnError


class FaultPlanError(AdnError):
    """A malformed fault plan."""


#: fault kinds the injector understands
MACHINE_CRASH = "machine_crash"
PROCESSOR_HANG = "processor_hang"
PROCESSOR_SLOWDOWN = "processor_slowdown"
LINK_PARTITION = "link_partition"
LINK_LOSS = "link_loss"
LINK_LATENCY = "link_latency"

FAULT_KINDS = (
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    LINK_PARTITION,
    LINK_LOSS,
    LINK_LATENCY,
)

#: kinds whose target is a machine name ("" targets the fabric)
_MACHINE_KINDS = (MACHINE_CRASH, PROCESSOR_HANG, PROCESSOR_SLOWDOWN)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``duration_s`` bounds transient faults (the injector reverts them);
    ``None`` means permanent for the run. ``magnitude`` is the
    kind-specific knob: loss probability for ``link_loss``, extra
    microseconds for ``link_latency``, cost multiplier for
    ``processor_slowdown``; ignored otherwise.
    """

    at_s: float
    kind: str
    target: str = ""
    duration_s: Optional[float] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (choose from "
                f"{', '.join(FAULT_KINDS)})"
            )
        if self.at_s < 0:
            raise FaultPlanError(f"fault at_s must be >= 0, got {self.at_s}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise FaultPlanError(
                f"fault duration_s must be positive, got {self.duration_s}"
            )
        if self.kind in _MACHINE_KINDS and not self.target:
            raise FaultPlanError(f"{self.kind} needs a target machine")
        if self.kind == LINK_LOSS and not (0.0 < self.magnitude <= 1.0):
            raise FaultPlanError(
                f"link_loss magnitude is a probability in (0, 1], "
                f"got {self.magnitude}"
            )
        if self.kind == LINK_LATENCY and self.magnitude <= 0:
            raise FaultPlanError("link_latency magnitude (extra us) must be > 0")
        if self.kind == PROCESSOR_SLOWDOWN and self.magnitude <= 1.0:
            raise FaultPlanError(
                "processor_slowdown magnitude is a cost multiplier > 1"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "kind": self.kind,
            "target": self.target,
            "duration_s": self.duration_s,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            return cls(
                at_s=float(data["at_s"]),  # type: ignore[arg-type]
                kind=str(data["kind"]),
                target=str(data.get("target", "")),
                duration_s=(
                    float(data["duration_s"])  # type: ignore[arg-type]
                    if data.get("duration_s") is not None
                    else None
                ),
                magnitude=float(data.get("magnitude", 0.0)),  # type: ignore[arg-type]
            )
        except KeyError as missing:
            raise FaultPlanError(f"fault event missing field {missing}") from None


@dataclass
class FaultPlan:
    """A full failure scenario: events in time order plus the seed for
    every stochastic decision the faults introduce."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.at_s)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "events": [event.to_dict() for event in self.events],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        if not isinstance(data, dict) or "events" not in data:
            raise FaultPlanError('fault plan JSON needs an "events" list')
        events = [FaultEvent.from_dict(entry) for entry in data["events"]]
        return cls(events=events, seed=int(data.get("seed", 0)))


def random_single_fault_plan(
    seed: int,
    horizon_s: float,
    machines: List[str],
    kinds: tuple = FAULT_KINDS,
) -> FaultPlan:
    """One random transient fault inside ``horizon_s`` — the chaos
    soak's unit of trouble. Deterministic in ``seed``. Times scale with
    the horizon: the fault lands in the first half of the run and heals
    within a quarter of it."""
    rng = random.Random(seed)
    kind = rng.choice(list(kinds))
    at_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.5)
    duration_s = rng.uniform(horizon_s * 0.05, horizon_s * 0.25)
    target = rng.choice(machines) if kind in _MACHINE_KINDS else ""
    magnitude = 0.0
    if kind == LINK_LOSS:
        magnitude = rng.uniform(0.05, 0.4)
    elif kind == LINK_LATENCY:
        magnitude = rng.uniform(20.0, 200.0)
    elif kind == PROCESSOR_SLOWDOWN:
        magnitude = rng.uniform(2.0, 8.0)
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=at_s,
                kind=kind,
                target=target,
                duration_s=duration_s,
                magnitude=magnitude,
            )
        ],
        seed=seed,
    )
