"""The canonical recovery scenario (CLI demo, E2E test, benchmark).

One stateful element — ``SessionTally``, a per-user read-modify-write
hit counter, the least replication-friendly state class
(:mod:`repro.ir.replication` calls it blocking) — is deliberately placed
on a third machine, ``stats-host``, away from both application hosts.
A fault plan crashes that machine mid-workload. What should happen,
end to end:

1. the data plane blackholes RPCs routed at the dead processor; the
   stack's :class:`~repro.runtime.filters.RetryPolicy` converts each
   silent loss into a timed-out attempt and retries;
2. telemetry falls silent for ``stats-host``; the phi-accrual detector
   marks it suspect;
3. the recovery orchestrator re-solves placement on the surviving
   cluster (the solver only knows the ClusterSpec hosts, so the dead
   machine drops out naturally), swaps the plan into the live stack,
   and restores the tally from the checkpointer's warm standby —
   paying only the delta backlog, never the table size;
4. the workload finishes with every issued RPC completed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..compiler.compiler import AdnCompiler
from ..control.controller import RecoveryOrchestrator, RecoveryReport
from ..control.placement import ClusterSpec
from ..dsl.ast_nodes import ChainDecl
from ..dsl.functions import FunctionRegistry
from ..dsl.parser import parse
from ..dsl.schema import FieldType, RpcSchema
from ..dsl.stdlib import load_stdlib
from ..dsl.validator import validate_program
from ..platforms import Platform
from ..runtime.filters import RetryPolicy
from ..runtime.mrpc import AdnMrpcStack
from ..runtime.message import reset_rpc_ids
from ..runtime.processor import PlacementPlan, PlacementSegment
from ..runtime.telemetry import TelemetryCollector
from ..sim.cluster import Cluster, Simulator, two_machine_cluster
from ..sim.workload import ClosedLoopClient
from ..state.checkpoint import Checkpointer, CheckpointTiming
from .detector import HeartbeatFailureDetector
from .injector import FaultInjector, TimelineEntry
from .plan import MACHINE_CRASH, FaultEvent, FaultPlan

#: the machine the stateful element lives on pre-fault
STATS_MACHINE = "stats-host"

SCENARIO_SCHEMA = RpcSchema.of(
    "t",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)

#: per-user RMW counter: non-replicable state (UPDATE x = x + 1 cannot
#: run on two replicas), so recovery-by-restore is its only safety net —
#: which is exactly what ``meta { checkpoint: true; }`` requests
SESSION_TALLY_SOURCE = """
element SessionTally {
    meta { checkpoint: true; }
    state tally (username: str KEY, hits: int);
    on request {
        INSERT INTO tally SELECT input.username, 0 FROM input
            WHERE NOT contains(tally, input.username);
        UPDATE tally SET hits = hits + 1 WHERE username == input.username;
        SELECT * FROM input;
    }
    on response {
        SELECT * FROM input;
    }
}
"""


def default_crash_plan(
    seed: int = 1,
    crash_at_s: float = 0.01,
    restart_after_s: Optional[float] = None,
) -> FaultPlan:
    """Crash ``stats-host``; optionally restart it later (recovery has
    long re-homed the element by then)."""
    return FaultPlan(
        events=[
            FaultEvent(
                at_s=crash_at_s,
                kind=MACHINE_CRASH,
                target=STATS_MACHINE,
                duration_s=restart_after_s,
            )
        ],
        seed=seed,
    )


def default_retry_policy(seed: int = 1) -> RetryPolicy:
    """Tuned to outlive the scenario's detection + recovery window."""
    return RetryPolicy(
        max_attempts=12,
        per_attempt_timeout_ms=5.0,
        base_backoff_ms=1.0,
        backoff_multiplier=2.0,
        max_backoff_ms=10.0,
        jitter=0.5,
        deadline_budget_ms=None,
        seed=seed,
    )


@dataclass
class ScenarioResult:
    """Everything the callers assert on or print."""

    sim: Simulator
    cluster: Cluster
    stack: AdnMrpcStack
    metrics: object  # RunMetrics
    fault_plan: FaultPlan
    timeline: List[TimelineEntry]
    detector: HeartbeatFailureDetector
    orchestrator: RecoveryOrchestrator
    checkpointer: Checkpointer
    telemetry: TelemetryCollector
    total_rpcs: int = 0
    table_rows: int = 0

    @property
    def report(self) -> Optional[RecoveryReport]:
        reports = self.orchestrator.reports
        return reports[0] if reports else None

    def tally_hits(self) -> int:
        """Total hits currently recorded by the (possibly re-homed)
        SessionTally instance, workload keys only."""
        store = self._tally_store()
        if store is None:
            return 0
        return sum(
            int(row["hits"])
            for row in store.table("tally").rows()
            if str(row["username"]).startswith("user")
        )

    def tally_size(self) -> int:
        store = self._tally_store()
        return len(store.table("tally")) if store is not None else 0

    def _tally_store(self):
        for processor in self.stack.processors:
            if "SessionTally" in processor.segment.elements:
                return processor.element_state("SessionTally")
        return None


def run_recovery_scenario(
    seed: int = 1,
    total_rpcs: int = 3000,
    concurrency: int = 4,
    table_rows: int = 500,
    key_space: int = 16,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    telemetry_interval_s: float = 0.005,
    stream_interval_s: float = 0.002,
    fold_every: int = 4,
    checkpoint_timing: Optional[CheckpointTiming] = None,
    horizon_s: float = 2.0,
    strategy: str = "software",
    circuit_breaker=None,
    retry_budget=None,
    queue_limit: Optional[int] = None,
    client_think_s: float = 0.0,
) -> ScenarioResult:
    """Build the scenario, run it to completion, return the evidence.

    Fully deterministic in ``seed`` (plus the fault plan's own seed):
    identical inputs reproduce identical timelines, metrics, and
    recovery reports.
    """
    reset_rpc_ids()
    plan = fault_plan or default_crash_plan(seed=seed)
    policy = retry_policy or default_retry_policy(seed=seed)

    sim = Simulator()
    cluster = two_machine_cluster(sim)
    cluster.add_machine(STATS_MACHINE)

    registry = FunctionRegistry(rng=random.Random(seed))
    program = load_stdlib().merged(parse(SESSION_TALLY_SOURCE))
    program = validate_program(
        program, schema=SCENARIO_SCHEMA, registry=registry
    )
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=("SessionTally",)),
        program,
        SCENARIO_SCHEMA,
    )
    placement = PlacementPlan(
        segments=[
            PlacementSegment(
                platform=Platform.MRPC,
                machine=STATS_MACHINE,
                elements=("SessionTally",),
            )
        ],
        description=f"SessionTally on {STATS_MACHINE} (pre-fault)",
    )
    stack = AdnMrpcStack(
        sim,
        cluster,
        chain,
        SCENARIO_SCHEMA,
        registry,
        plan=placement,
        retry_policy=policy,
        circuit_breaker=circuit_breaker,
        retry_budget=retry_budget,
        queue_limit=queue_limit,
    )

    # resident state: rows that predate the workload. They ride the
    # checkpointer's initial shadow, so a crash later must NOT pay for
    # them again — that is the property the benchmark pins.
    store = stack.processors[0].element_state("SessionTally")
    for index in range(table_rows):
        store.table("tally").insert_values([f"resident{index}", 1])

    checkpointer = Checkpointer(
        sim,
        stream_interval_s=stream_interval_s,
        fold_every=fold_every,
        timing=checkpoint_timing,
    )
    checkpointer.watch(
        "SessionTally",
        store,
        live_of=lambda: cluster.machine_up(STATS_MACHINE),
    )

    telemetry = TelemetryCollector(sim, interval_s=telemetry_interval_s)
    telemetry.register_stack(stack)
    detector = HeartbeatFailureDetector(
        sim, heartbeat_interval_s=telemetry_interval_s
    )
    telemetry.add_sink(detector.sink)
    for _, machine in stack.plan.element_locations().values():
        detector.expect(machine)

    injector = FaultInjector(sim, cluster)
    injector.register_stack(stack)

    orchestrator = RecoveryOrchestrator(
        sim,
        stack,
        SCENARIO_SCHEMA,
        cluster_spec=ClusterSpec(),
        strategy=strategy,
        checkpointer=checkpointer,
        telemetry=telemetry,
        detector=detector,
        crash_times=injector.crash_times,
    )
    detector.on_suspect(orchestrator.suspect_sink)

    sim.process(telemetry.run(horizon_s))
    sim.process(detector.run(horizon_s))
    sim.process(checkpointer.run(horizon_s))
    sim.process(injector.run(plan))

    workload_rng_tag = key_space  # closed over below

    def fields(rng: random.Random, index: int):
        return {
            "payload": b"x" * 64,
            "username": f"user{rng.randrange(workload_rng_tag)}",
            "obj_id": rng.randrange(1 << 12),
        }

    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=concurrency,
        total_rpcs=total_rpcs,
        seed=seed,
        fields_fn=fields,
        think_s=client_think_s,
    )
    metrics = client.run(limit_s=max(horizon_s * 4, 30.0))

    return ScenarioResult(
        sim=sim,
        cluster=cluster,
        stack=stack,
        metrics=metrics,
        fault_plan=plan,
        timeline=list(injector.timeline),
        detector=detector,
        orchestrator=orchestrator,
        checkpointer=checkpointer,
        telemetry=telemetry,
        total_rpcs=total_rpcs,
        table_rows=table_rows,
    )
