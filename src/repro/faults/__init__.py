"""Fault injection, failure detection, and self-healing recovery.

The subsystem that turns the repo from "simulates ADN" into "simulates
ADN under failure": seeded :class:`FaultPlan` schedules drive a
:class:`FaultInjector` against the simulated substrate; a phi-accrual
:class:`HeartbeatFailureDetector` watches telemetry fall silent (and,
when armed, scores *gray* failures that never stop heartbeating); and
the :class:`~repro.control.controller.RecoveryOrchestrator` re-solves
placement and restores state from the
:class:`~repro.state.checkpoint.Checkpointer`'s warm standby. Control-
plane failures — controller crashes, control partitions, split brains —
are the province of :mod:`repro.control.resilience`.
"""

from .detector import HeartbeatFailureDetector, Suspicion
from .injector import FaultInjector, TimelineEntry
from .plan import (
    CONTROL_PARTITION,
    DATAPLANE_FAULT_KINDS,
    FAULT_KINDS,
    GRAY_DEGRADE,
    LINK_LATENCY,
    LINK_LOSS,
    LINK_PARTITION,
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    controller_crash_during_failover_plan,
    double_crash_plan,
    load_fault_plan,
    partition_during_recovery_plan,
    random_multi_fault_plan,
    random_single_fault_plan,
)
from .scenario import (
    STATS_MACHINE,
    ScenarioResult,
    default_crash_plan,
    default_retry_policy,
    run_recovery_scenario,
)

__all__ = [
    "CONTROL_PARTITION",
    "DATAPLANE_FAULT_KINDS",
    "FAULT_KINDS",
    "GRAY_DEGRADE",
    "LINK_LATENCY",
    "LINK_LOSS",
    "LINK_PARTITION",
    "MACHINE_CRASH",
    "PROCESSOR_HANG",
    "PROCESSOR_SLOWDOWN",
    "STATS_MACHINE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "HeartbeatFailureDetector",
    "ScenarioResult",
    "Suspicion",
    "TimelineEntry",
    "controller_crash_during_failover_plan",
    "default_crash_plan",
    "default_retry_policy",
    "double_crash_plan",
    "load_fault_plan",
    "partition_during_recovery_plan",
    "random_multi_fault_plan",
    "random_single_fault_plan",
    "run_recovery_scenario",
]
