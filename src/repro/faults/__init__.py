"""Fault injection, failure detection, and self-healing recovery.

The subsystem that turns the repo from "simulates ADN" into "simulates
ADN under failure": seeded :class:`FaultPlan` schedules drive a
:class:`FaultInjector` against the simulated substrate; a phi-accrual
:class:`HeartbeatFailureDetector` watches telemetry fall silent; and the
:class:`~repro.control.controller.RecoveryOrchestrator` re-solves
placement and restores state from the
:class:`~repro.state.checkpoint.Checkpointer`'s warm standby.
"""

from .detector import HeartbeatFailureDetector, Suspicion
from .injector import FaultInjector, TimelineEntry
from .plan import (
    FAULT_KINDS,
    LINK_LATENCY,
    LINK_LOSS,
    LINK_PARTITION,
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    random_single_fault_plan,
)
from .scenario import (
    STATS_MACHINE,
    ScenarioResult,
    default_crash_plan,
    default_retry_policy,
    run_recovery_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "LINK_LATENCY",
    "LINK_LOSS",
    "LINK_PARTITION",
    "MACHINE_CRASH",
    "PROCESSOR_HANG",
    "PROCESSOR_SLOWDOWN",
    "STATS_MACHINE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "HeartbeatFailureDetector",
    "ScenarioResult",
    "Suspicion",
    "TimelineEntry",
    "default_crash_plan",
    "default_retry_policy",
    "random_single_fault_plan",
    "run_recovery_scenario",
]
