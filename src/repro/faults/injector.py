"""The fault injector: a simulation process that applies a FaultPlan.

Faults land on the *substrate* — machines, processors, the virtual L2 —
never on the data-plane code paths directly, so every observable effect
(blackholed RPCs, timeout storms, detector suspicion) emerges from the
same mechanisms a real deployment would exercise.

Determinism: events fire at their scheduled virtual times, transient
reverts at ``at_s + duration_s``, and the only stochastic fault effect
(link loss sampling) runs off the L2's RNG, reseeded from the plan seed
when the injector starts. Same plan + same workload ⇒ same timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from ..sim.cluster import Cluster
from ..sim.engine import Event, Simulator
from .plan import (
    CONTROL_PARTITION,
    GRAY_DEGRADE,
    LINK_LATENCY,
    LINK_LOSS,
    LINK_PARTITION,
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
)


@dataclass(frozen=True)
class TimelineEntry:
    """One thing the injector did, for reports and determinism checks."""

    at_s: float
    action: str  # "inject" | "revert"
    kind: str
    target: str
    detail: str = ""


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a cluster and its stacks."""

    sim: Simulator
    cluster: Cluster
    stacks: List[object] = field(default_factory=list)  # AdnMrpcStack
    timeline: List[TimelineEntry] = field(default_factory=list)
    #: ground-truth crash instants, keyed by machine — what detector
    #: latency is measured against
    crash_times: Dict[str, float] = field(default_factory=dict)
    #: processors currently hung, with the gate each is parked on
    _hung: Dict[str, List[Tuple[object, Event]]] = field(default_factory=dict)
    #: failure detectors to re-prime when a healed CONTROL_PARTITION
    #: brings a silenced machine back onto the heartbeat channel
    detectors: List[object] = field(default_factory=list)
    #: ground-truth gray-degrade onsets, keyed by machine (mirrors
    #: ``crash_times`` for detection-latency measurement)
    gray_times: Dict[str, float] = field(default_factory=dict)

    def register_stack(self, stack) -> None:
        """Stacks registered here get processor-level faults (hang,
        slowdown) and instance resets on machine restart."""
        self.stacks.append(stack)

    def register_detector(self, detector) -> None:
        """Detectors registered here get ``expect()`` re-primed for a
        machine whose control partition heals: its first post-heal
        heartbeat is *late* by the whole partition, and without a
        re-prime the stale arrival stats would instantly re-declare the
        healthy machine dead."""
        self.detectors.append(detector)

    def _processors_on(self, machine: str) -> List[object]:
        return [
            processor
            for stack in self.stacks
            for processor in stack.processors
            if processor.segment.machine == machine
        ]

    def _log(self, action: str, event: FaultEvent, detail: str = "") -> None:
        self.timeline.append(
            TimelineEntry(
                at_s=self.sim.now,
                action=action,
                kind=event.kind,
                target=event.target,
                detail=detail,
            )
        )

    # -- the process ---------------------------------------------------------

    def run(self, plan: FaultPlan) -> Generator:
        """Simulation process: apply every event at its time; schedule
        reverts for duration-bounded faults."""
        self.cluster.l2.reseed(plan.seed)
        for event in plan.events:
            if event.at_s > self.sim.now:
                yield self.sim.timeout(event.at_s - self.sim.now)
            self._apply(event)
            if event.duration_s is not None:
                self.sim.process(self._revert_after(event))

    def _revert_after(self, event: FaultEvent) -> Generator:
        yield self.sim.timeout(event.duration_s)
        self._revert(event)

    # -- apply / revert ------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        conditions = self.cluster.l2.conditions
        if kind == MACHINE_CRASH:
            self.cluster.machine(event.target).crash()
            self.crash_times[event.target] = self.sim.now
            self._log("inject", event)
        elif kind == PROCESSOR_HANG:
            hung = self._hung.setdefault(event.target, [])
            for processor in self._processors_on(event.target):
                gate = self.sim.event()
                processor.hang_event = gate
                hung.append((processor, gate))
            self._log("inject", event, detail=f"{len(hung)} processors")
        elif kind == PROCESSOR_SLOWDOWN:
            processors = self._processors_on(event.target)
            for processor in processors:
                processor.slowdown_factor = event.magnitude
            self._log(
                "inject", event, detail=f"x{event.magnitude:.2f} on "
                f"{len(processors)} processors"
            )
        elif kind == LINK_PARTITION:
            conditions.partitioned = True
            self._log("inject", event)
        elif kind == LINK_LOSS:
            conditions.loss_probability = event.magnitude
            self._log("inject", event, detail=f"p={event.magnitude:.3f}")
        elif kind == LINK_LATENCY:
            conditions.extra_latency_us = event.magnitude
            self._log("inject", event, detail=f"+{event.magnitude:.0f}us/hop")
        elif kind == CONTROL_PARTITION:
            # dataplane traffic keeps flowing; only the controller's
            # heartbeat/command channel to this machine is severed
            self.cluster.machine(event.target).control_reachable = False
            self._log("inject", event)
        elif kind == GRAY_DEGRADE:
            processors = self._processors_on(event.target)
            for processor in processors:
                processor.slowdown_factor = event.magnitude
            self.gray_times.setdefault(event.target, self.sim.now)
            self._log(
                "inject", event, detail=f"x{event.magnitude:.1f} on "
                f"{len(processors)} processors (heartbeats keep flowing)"
            )
        else:  # pragma: no cover - FaultEvent validates kinds
            raise FaultPlanError(f"unhandled fault kind {kind!r}")

    def _revert(self, event: FaultEvent) -> None:
        kind = event.kind
        conditions = self.cluster.l2.conditions
        if kind == MACHINE_CRASH:
            machine = self.cluster.machine(event.target)
            machine.restart()
            # the host is back with empty memory: every processor it
            # hosted re-creates its element instances (init re-runs;
            # runtime-accumulated state is gone unless restored)
            reset = 0
            for processor in self._processors_on(event.target):
                processor.reset_instances()
                reset += 1
            self._log("revert", event, detail=f"reset {reset} processors")
        elif kind == PROCESSOR_HANG:
            hung = self._hung.pop(event.target, [])
            for processor, gate in hung:
                if processor.hang_event is gate:
                    processor.hang_event = None
                gate.succeed()
            self._log("revert", event, detail=f"{len(hung)} resumed")
        elif kind == PROCESSOR_SLOWDOWN:
            for processor in self._processors_on(event.target):
                processor.slowdown_factor = 1.0
            self._log("revert", event)
        elif kind == LINK_PARTITION:
            conditions.partitioned = False
            self._log("revert", event)
        elif kind == LINK_LOSS:
            conditions.loss_probability = 0.0
            self._log("revert", event)
        elif kind == LINK_LATENCY:
            conditions.extra_latency_us = 0.0
            self._log("revert", event)
        elif kind == CONTROL_PARTITION:
            self.cluster.machine(event.target).control_reachable = True
            # rehabilitation: the machine was healthy all along, only
            # silenced — re-prime every registered detector so its
            # first (late) post-heal heartbeat is a fresh baseline, not
            # instant grounds for a second death sentence
            for detector in self.detectors:
                detector.expect(event.target)
            self._log(
                "revert", event,
                detail=f"re-primed {len(self.detectors)} detector(s)",
            )
        elif kind == GRAY_DEGRADE:
            for processor in self._processors_on(event.target):
                processor.slowdown_factor = 1.0
            # gray_times keeps the onset: it is ground truth for
            # detection latency, exactly like crash_times
            self._log("revert", event)
