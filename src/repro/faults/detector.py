"""Heartbeat failure detection over telemetry reports (paper §5.3).

Processors already "periodically send reports … back to the controller";
those reports double as heartbeats. :class:`HeartbeatFailureDetector` is
a telemetry sink plus a polling process: it tracks per-machine report
inter-arrival statistics and computes a **phi-accrual** suspicion level
(Hayashibara et al.) under an exponential inter-arrival model::

    phi(machine) = (time_since_last_report / mean_interval) * log10(e)

Phi crossing ``phi_threshold`` — or silence beyond the hard timeout
floor, which bounds detection time while statistics are still thin —
marks the machine *suspect* and fires the registered callbacks (the
recovery orchestrator's trigger).

A crashed machine stops heartbeating because :meth:`TelemetryCollector.
sample` skips non-live processors; the detector only ever sees silence,
never the fault itself.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, List

from ..runtime.telemetry import ProcessorReport
from ..sim.engine import Simulator

_LOG10_E = math.log10(math.e)


@dataclass(frozen=True)
class Suspicion:
    """One machine going suspect.

    ``kind`` separates the two detection modes: ``"crash"`` is the
    classic phi-accrual silence verdict; ``"gray"`` means the machine
    is heartbeating on schedule but its per-window service latency
    blew past the healthy baseline — alive, just uselessly slow.
    """

    machine: str
    at_s: float
    phi: float
    silent_for_s: float
    kind: str = "crash"


@dataclass
class _Arrivals:
    last_at: float
    intervals: Deque[float] = field(default_factory=lambda: deque(maxlen=32))

    def mean_interval(self, fallback: float) -> float:
        if not self.intervals:
            return fallback
        return sum(self.intervals) / len(self.intervals)


@dataclass
class _GrayStats:
    """Per-machine latency telemetry for the gray-failure score."""

    baseline_ms: float = 0.0  # EWMA of healthy service_ms_per_rpc
    samples: int = 0
    bad_streak: int = 0
    last_ratio: float = 0.0


SuspectCallback = Callable[[Suspicion], None]


class HeartbeatFailureDetector:
    """Phi-accrual failure detector fed by telemetry reports."""

    def __init__(
        self,
        sim: Simulator,
        heartbeat_interval_s: float = 0.05,
        phi_threshold: float = 8.0,
        hard_timeout_s: float = 0.0,
        poll_interval_s: float = 0.0,
        gray_factor: float = 0.0,
        gray_consecutive: int = 3,
        gray_min_samples: int = 5,
    ):
        self.sim = sim
        self.heartbeat_interval_s = heartbeat_interval_s
        self.phi_threshold = phi_threshold
        #: silence floor that suspects regardless of phi (covers the
        #: cold start, when one missing report barely moves phi)
        self.hard_timeout_s = hard_timeout_s or 4.0 * heartbeat_interval_s
        self.poll_interval_s = poll_interval_s or heartbeat_interval_s / 2.0
        #: gray-failure score (0 = crash-only detection, the legacy
        #: behavior): suspect a machine whose per-window service latency
        #: runs ``gray_factor``x over its healthy EWMA baseline for
        #: ``gray_consecutive`` windows — the degradation mode that
        #: never stops heartbeating, so phi alone never fires
        self.gray_factor = gray_factor
        self.gray_consecutive = max(1, gray_consecutive)
        self.gray_min_samples = max(1, gray_min_samples)
        self._arrivals: Dict[str, _Arrivals] = {}
        self._gray: Dict[str, _GrayStats] = {}
        self.suspects: Dict[str, Suspicion] = {}
        self._callbacks: List[SuspectCallback] = []

    # -- telemetry side ------------------------------------------------------

    def expect(self, machine: str) -> None:
        """Start — or *re-prime* — watching a machine. Without priming,
        a machine that dies before it ever heartbeats is invisible to
        the detector — the classic cold-start hole; the hard timeout
        then runs from now.

        Re-priming matters after a healed control partition: the
        machine was healthy all along, but its last recorded arrival is
        partition-old, so without a reset its first late heartbeat
        would land on poisoned statistics and the very next poll would
        re-declare it dead. ``expect()`` therefore always restarts the
        arrival clock, clears the interval history, and withdraws any
        standing suspicion."""
        self._arrivals[machine] = _Arrivals(last_at=self.sim.now)
        self.suspects.pop(machine, None)
        gray = self._gray.get(machine)
        if gray is not None:
            gray.bad_streak = 0

    def sink(self, report: ProcessorReport) -> None:
        """Feed one telemetry report in (register with
        ``collector.add_sink(detector.sink)``)."""
        arrivals = self._arrivals.get(report.machine)
        if arrivals is None:
            self._arrivals[report.machine] = _Arrivals(last_at=report.at_s)
            self._score_gray(report)
            return
        if report.at_s > arrivals.last_at:
            interval = report.at_s - arrivals.last_at
            # two reports at (numerically) the same instant carry no
            # cadence information — e.g. the first heartbeat after a
            # partition-heal re-prime arriving a float-epsilon after
            # expect() restarted the clock. Folding such a degenerate
            # interval into the mean would drive phi to infinity and
            # re-declare the healthy machine dead on the next poll.
            if interval > 1e-9:
                arrivals.intervals.append(interval)
            arrivals.last_at = report.at_s
        self._score_gray(report)
        # a heartbeat from a suspect rehabilitates it (restart, or a
        # false positive under load) — but only crash suspicions:
        # a gray machine keeps heartbeating, that is the whole point
        standing = self.suspects.get(report.machine)
        if standing is not None and standing.kind != "gray":
            self.suspects.pop(report.machine, None)

    def _score_gray(self, report: ProcessorReport) -> None:
        """Update the latency baseline and fire a gray suspicion when
        the window's service time runs hot for long enough."""
        if self.gray_factor <= 0.0:
            return
        value = report.service_ms_per_rpc
        if report.rpcs_in_window <= 0 or value <= 0.0:
            return  # an idle window carries no latency evidence
        stats = self._gray.setdefault(report.machine, _GrayStats())
        primed = stats.samples >= self.gray_min_samples
        if primed and value >= self.gray_factor * stats.baseline_ms:
            stats.bad_streak += 1
            stats.last_ratio = value / stats.baseline_ms
            if (
                stats.bad_streak >= self.gray_consecutive
                and report.machine not in self.suspects
            ):
                suspicion = Suspicion(
                    machine=report.machine,
                    at_s=self.sim.now,
                    phi=stats.last_ratio,
                    silent_for_s=0.0,
                    kind="gray",
                )
                self.suspects[report.machine] = suspicion
                for callback in self._callbacks:
                    callback(suspicion)
            return
        # a healthy window: absorb it into the baseline, reset the
        # streak, and rehabilitate a standing gray suspicion (the
        # degradation passed — e.g. the transient fault reverted)
        stats.bad_streak = 0
        alpha = 0.2
        stats.baseline_ms = (
            value
            if stats.samples == 0
            else (1 - alpha) * stats.baseline_ms + alpha * value
        )
        stats.samples += 1
        standing = self.suspects.get(report.machine)
        if standing is not None and standing.kind == "gray":
            self.suspects.pop(report.machine, None)

    # -- suspicion -----------------------------------------------------------

    def phi(self, machine: str) -> float:
        """Current suspicion level for a machine (0 = just heard from)."""
        arrivals = self._arrivals.get(machine)
        if arrivals is None:
            return 0.0
        elapsed = self.sim.now - arrivals.last_at
        mean = arrivals.mean_interval(self.heartbeat_interval_s)
        if mean <= 0:
            mean = self.heartbeat_interval_s
        return (elapsed / mean) * _LOG10_E

    def check(self) -> List[Suspicion]:
        """Evaluate every tracked machine once; returns new suspicions."""
        fresh: List[Suspicion] = []
        for machine, arrivals in self._arrivals.items():
            if machine in self.suspects:
                continue
            elapsed = self.sim.now - arrivals.last_at
            phi = self.phi(machine)
            if phi >= self.phi_threshold or elapsed >= self.hard_timeout_s:
                suspicion = Suspicion(
                    machine=machine,
                    at_s=self.sim.now,
                    phi=phi,
                    silent_for_s=elapsed,
                )
                self.suspects[machine] = suspicion
                fresh.append(suspicion)
        for suspicion in fresh:
            for callback in self._callbacks:
                callback(suspicion)
        return fresh

    def on_suspect(self, callback: SuspectCallback) -> None:
        self._callbacks.append(callback)

    def clear(self, machine: str) -> None:
        """Forget a suspicion (the orchestrator finished recovering)."""
        self.suspects.pop(machine, None)
        arrivals = self._arrivals.get(machine)
        if arrivals is not None:
            arrivals.last_at = self.sim.now
        gray = self._gray.get(machine)
        if gray is not None:
            gray.bad_streak = 0

    def run(self, duration_s: float) -> Generator:
        """Simulation process: poll suspicion on an interval."""
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.poll_interval_s)
            self.check()
