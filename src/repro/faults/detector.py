"""Heartbeat failure detection over telemetry reports (paper §5.3).

Processors already "periodically send reports … back to the controller";
those reports double as heartbeats. :class:`HeartbeatFailureDetector` is
a telemetry sink plus a polling process: it tracks per-machine report
inter-arrival statistics and computes a **phi-accrual** suspicion level
(Hayashibara et al.) under an exponential inter-arrival model::

    phi(machine) = (time_since_last_report / mean_interval) * log10(e)

Phi crossing ``phi_threshold`` — or silence beyond the hard timeout
floor, which bounds detection time while statistics are still thin —
marks the machine *suspect* and fires the registered callbacks (the
recovery orchestrator's trigger).

A crashed machine stops heartbeating because :meth:`TelemetryCollector.
sample` skips non-live processors; the detector only ever sees silence,
never the fault itself.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Generator, List

from ..runtime.telemetry import ProcessorReport
from ..sim.engine import Simulator

_LOG10_E = math.log10(math.e)


@dataclass(frozen=True)
class Suspicion:
    """One machine going suspect."""

    machine: str
    at_s: float
    phi: float
    silent_for_s: float


@dataclass
class _Arrivals:
    last_at: float
    intervals: Deque[float] = field(default_factory=lambda: deque(maxlen=32))

    def mean_interval(self, fallback: float) -> float:
        if not self.intervals:
            return fallback
        return sum(self.intervals) / len(self.intervals)


SuspectCallback = Callable[[Suspicion], None]


class HeartbeatFailureDetector:
    """Phi-accrual failure detector fed by telemetry reports."""

    def __init__(
        self,
        sim: Simulator,
        heartbeat_interval_s: float = 0.05,
        phi_threshold: float = 8.0,
        hard_timeout_s: float = 0.0,
        poll_interval_s: float = 0.0,
    ):
        self.sim = sim
        self.heartbeat_interval_s = heartbeat_interval_s
        self.phi_threshold = phi_threshold
        #: silence floor that suspects regardless of phi (covers the
        #: cold start, when one missing report barely moves phi)
        self.hard_timeout_s = hard_timeout_s or 4.0 * heartbeat_interval_s
        self.poll_interval_s = poll_interval_s or heartbeat_interval_s / 2.0
        self._arrivals: Dict[str, _Arrivals] = {}
        self.suspects: Dict[str, Suspicion] = {}
        self._callbacks: List[SuspectCallback] = []

    # -- telemetry side ------------------------------------------------------

    def expect(self, machine: str) -> None:
        """Start watching a machine before its first report. Without
        priming, a machine that dies before it ever heartbeats is
        invisible to the detector — the classic cold-start hole; the
        hard timeout then runs from now."""
        if machine not in self._arrivals:
            self._arrivals[machine] = _Arrivals(last_at=self.sim.now)

    def sink(self, report: ProcessorReport) -> None:
        """Feed one telemetry report in (register with
        ``collector.add_sink(detector.sink)``)."""
        arrivals = self._arrivals.get(report.machine)
        if arrivals is None:
            self._arrivals[report.machine] = _Arrivals(last_at=report.at_s)
            return
        if report.at_s > arrivals.last_at:
            arrivals.intervals.append(report.at_s - arrivals.last_at)
            arrivals.last_at = report.at_s
        # a heartbeat from a suspect rehabilitates it (restart, or a
        # false positive under load)
        self.suspects.pop(report.machine, None)

    # -- suspicion -----------------------------------------------------------

    def phi(self, machine: str) -> float:
        """Current suspicion level for a machine (0 = just heard from)."""
        arrivals = self._arrivals.get(machine)
        if arrivals is None:
            return 0.0
        elapsed = self.sim.now - arrivals.last_at
        mean = arrivals.mean_interval(self.heartbeat_interval_s)
        if mean <= 0:
            mean = self.heartbeat_interval_s
        return (elapsed / mean) * _LOG10_E

    def check(self) -> List[Suspicion]:
        """Evaluate every tracked machine once; returns new suspicions."""
        fresh: List[Suspicion] = []
        for machine, arrivals in self._arrivals.items():
            if machine in self.suspects:
                continue
            elapsed = self.sim.now - arrivals.last_at
            phi = self.phi(machine)
            if phi >= self.phi_threshold or elapsed >= self.hard_timeout_s:
                suspicion = Suspicion(
                    machine=machine,
                    at_s=self.sim.now,
                    phi=phi,
                    silent_for_s=elapsed,
                )
                self.suspects[machine] = suspicion
                fresh.append(suspicion)
        for suspicion in fresh:
            for callback in self._callbacks:
                callback(suspicion)
        return fresh

    def on_suspect(self, callback: SuspectCallback) -> None:
        self._callbacks.append(callback)

    def clear(self, machine: str) -> None:
        """Forget a suspicion (the orchestrator finished recovering)."""
        self.suspects.pop(machine, None)
        arrivals = self._arrivals.get(machine)
        if arrivals is not None:
            arrivals.last_at = self.sim.now

    def run(self, duration_s: float) -> Generator:
        """Simulation process: poll suspicion on an interval."""
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.poll_interval_s)
            self.check()
