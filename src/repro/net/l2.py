"""Virtual link layer: flat-identifier delivery.

The only service ADN assumes from the network (paper §3): frames carry a
destination :class:`~repro.net.addresses.FlatId` and the fabric delivers
them. This models a cloud VPC / VXLAN overlay — FIFO per source-
destination pair, one switch hop between machines.

By default the fabric is lossless; the fault injector
(:mod:`repro.faults`) degrades it through :class:`LinkConditions` —
partition (nothing crosses), probabilistic loss, and latency spikes.
Loss sampling uses the fabric's own seeded RNG so an identical fault
plan over identical traffic reproduces identical drop decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import RuntimeFault
from .addresses import FlatId


@dataclass
class LinkConditions:
    """Degradations currently applied to the fabric (all faults are
    transient; the injector reverts them when their window closes)."""

    partitioned: bool = False
    loss_probability: float = 0.0
    extra_latency_us: float = 0.0

    @property
    def degraded(self) -> bool:
        return (
            self.partitioned
            or self.loss_probability > 0.0
            or self.extra_latency_us > 0.0
        )


@dataclass(frozen=True)
class L2Frame:
    """A frame on the virtual link layer."""

    src: FlatId
    dst: FlatId
    payload: bytes

    @property
    def wire_bytes(self) -> int:
        return 14 + len(self.payload)  # flat header ≈ an Ethernet header


class VirtualL2:
    """The fabric: endpoints attach with a flat id and a delivery
    callback; ``transmit`` forwards frames to the attached endpoint.

    Delivery is synchronous — the simulator's processor models wrap
    ``transmit`` with wire-latency timeouts; this class is only the
    addressing/delivery substrate and byte accounting.
    """

    def __init__(self) -> None:
        self._endpoints: Dict[FlatId, Callable[[L2Frame], None]] = {}
        self._names: Dict[FlatId, str] = {}
        self.frames_delivered = 0
        self.bytes_delivered = 0
        self.frames_dropped = 0
        self.conditions = LinkConditions()
        self._rng = random.Random(0)

    def reseed(self, seed: int) -> None:
        """Re-seed the loss RNG (the fault injector does this from the
        plan seed so drop decisions replay exactly)."""
        self._rng = random.Random(seed)

    def attach(
        self, name: str, handler: Callable[[L2Frame], None]
    ) -> FlatId:
        """Attach an endpoint; returns its flat id."""
        flat_id = FlatId.for_name(name)
        if flat_id in self._endpoints:
            raise RuntimeFault(f"endpoint {name!r} already attached")
        self._endpoints[flat_id] = handler
        self._names[flat_id] = name
        return flat_id

    def detach(self, flat_id: FlatId) -> None:
        self._endpoints.pop(flat_id, None)
        self._names.pop(flat_id, None)

    def resolve(self, name: str) -> Optional[FlatId]:
        flat_id = FlatId.for_name(name)
        return flat_id if flat_id in self._endpoints else None

    def transmit(self, frame: L2Frame) -> bool:
        """Deliver a frame; returns False when the fabric dropped it.

        An unknown destination is still a hard fault (a wiring bug, not
        a network condition); loss and partition silently eat the frame
        like a real fabric would.
        """
        handler = self._endpoints.get(frame.dst)
        if handler is None:
            raise RuntimeFault(
                f"no endpoint {frame.dst} on the virtual L2 "
                f"(attached: {sorted(self._names.values())})"
            )
        if self.conditions.partitioned or (
            self.conditions.loss_probability > 0.0
            and self._rng.random() < self.conditions.loss_probability
        ):
            self.frames_dropped += 1
            return False
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_bytes
        handler(frame)
        return True

    def send(
        self, src_name: str, dst_name: str, payload: bytes
    ) -> Optional[L2Frame]:
        """Convenience: build and transmit a frame by endpoint names.
        Returns the frame, or None when the fabric dropped it."""
        dst = self.resolve(dst_name)
        if dst is None:
            raise RuntimeFault(f"unknown endpoint {dst_name!r}")
        frame = L2Frame(
            src=FlatId.for_name(src_name), dst=dst, payload=payload
        )
        if not self.transmit(frame):
            return None
        return frame
