"""Virtual link layer: flat-identifier delivery.

The only service ADN assumes from the network (paper §3): frames carry a
destination :class:`~repro.net.addresses.FlatId` and the fabric delivers
them. This models a cloud VPC / VXLAN overlay — FIFO per source-
destination pair, no loss, one switch hop between machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import RuntimeFault
from .addresses import FlatId


@dataclass(frozen=True)
class L2Frame:
    """A frame on the virtual link layer."""

    src: FlatId
    dst: FlatId
    payload: bytes

    @property
    def wire_bytes(self) -> int:
        return 14 + len(self.payload)  # flat header ≈ an Ethernet header


class VirtualL2:
    """The fabric: endpoints attach with a flat id and a delivery
    callback; ``transmit`` forwards frames to the attached endpoint.

    Delivery is synchronous — the simulator's processor models wrap
    ``transmit`` with wire-latency timeouts; this class is only the
    addressing/delivery substrate and byte accounting.
    """

    def __init__(self) -> None:
        self._endpoints: Dict[FlatId, Callable[[L2Frame], None]] = {}
        self._names: Dict[FlatId, str] = {}
        self.frames_delivered = 0
        self.bytes_delivered = 0

    def attach(
        self, name: str, handler: Callable[[L2Frame], None]
    ) -> FlatId:
        """Attach an endpoint; returns its flat id."""
        flat_id = FlatId.for_name(name)
        if flat_id in self._endpoints:
            raise RuntimeFault(f"endpoint {name!r} already attached")
        self._endpoints[flat_id] = handler
        self._names[flat_id] = name
        return flat_id

    def detach(self, flat_id: FlatId) -> None:
        self._endpoints.pop(flat_id, None)
        self._names.pop(flat_id, None)

    def resolve(self, name: str) -> Optional[FlatId]:
        flat_id = FlatId.for_name(name)
        return flat_id if flat_id in self._endpoints else None

    def transmit(self, frame: L2Frame) -> None:
        handler = self._endpoints.get(frame.dst)
        if handler is None:
            raise RuntimeFault(
                f"no endpoint {frame.dst} on the virtual L2 "
                f"(attached: {sorted(self._names.values())})"
            )
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_bytes
        handler(frame)

    def send(self, src_name: str, dst_name: str, payload: bytes) -> L2Frame:
        """Convenience: build and transmit a frame by endpoint names."""
        dst = self.resolve(dst_name)
        if dst is None:
            raise RuntimeFault(f"unknown endpoint {dst_name!r}")
        frame = L2Frame(
            src=FlatId.for_name(src_name), dst=dst, payload=payload
        )
        self.transmit(frame)
        return frame
