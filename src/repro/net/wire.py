"""The ADN compact wire format.

Encodes exactly the fields a :class:`~repro.compiler.headers.HeaderLayout`
says must cross a hop — nothing else — in the layout's order: fixed-width
fields first at stable offsets (so a switch can match them inside its
parse window), then variable-width fields with varint lengths. Each field
is prefixed by its 1-byte field id for schema evolution: a decoder built
from an older layout skips ids it does not know.

This is the concrete answer to the paper's Q2: "How the RPC message is
packaged on the wire and what headers are needed are ... automatically
determined" (§3).
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from ..compiler.headers import HeaderLayout
from ..dsl.schema import FieldType
from ..errors import RuntimeFault
from .serialization import decode_varint, encode_varint


def _encode_fixed(field_type: FieldType, value: object) -> bytes:
    if field_type is FieldType.INT:
        return struct.pack(">q", int(value))  # type: ignore[arg-type]
    if field_type is FieldType.FLOAT:
        return struct.pack(">d", float(value))  # type: ignore[arg-type]
    if field_type is FieldType.BOOL:
        return b"\x01" if value else b"\x00"
    raise RuntimeFault(f"{field_type} is not fixed-width")


def _decode_fixed(
    field_type: FieldType, data: bytes, offset: int
) -> Tuple[object, int]:
    if field_type is FieldType.INT:
        return struct.unpack_from(">q", data, offset)[0], offset + 8
    if field_type is FieldType.FLOAT:
        return struct.unpack_from(">d", data, offset)[0], offset + 8
    if field_type is FieldType.BOOL:
        return data[offset] != 0, offset + 1
    raise RuntimeFault(f"{field_type} is not fixed-width")


class AdnWireCodec:
    """Encoder/decoder bound to one hop's :class:`HeaderLayout`."""

    def __init__(self, layout: HeaderLayout):
        self.layout = layout
        self._by_id = {entry.field_id: entry for entry in layout.fields}

    def encode(self, fields: Dict[str, object]) -> bytes:
        """Encode a tuple. Missing fixed fields default to zero values;
        missing variable fields encode empty. None encodes as the
        type's zero (the compact format has no presence bits — absence
        is resolved by the layout itself)."""
        out = bytearray()
        for entry in self.layout.fields:
            value = fields.get(entry.name)
            out.append(entry.field_id)
            if entry.fixed:
                if value is None:
                    value = 0 if entry.type is not FieldType.BOOL else False
                out.extend(_encode_fixed(entry.type, value))
            else:
                if value is None:
                    raw = b""
                elif isinstance(value, bytes):
                    raw = value
                elif isinstance(value, str):
                    raw = value.encode("utf-8")
                else:
                    raw = str(value).encode("utf-8")
                out.extend(encode_varint(len(raw)))
                out.extend(raw)
        return bytes(out)

    def decode(self, data: bytes) -> Dict[str, object]:
        fields: Dict[str, object] = {}
        offset = 0
        while offset < len(data):
            field_id = data[offset]
            offset += 1
            entry = self._by_id.get(field_id)
            if entry is None:
                raise RuntimeFault(
                    f"unknown field id {field_id} (layout mismatch)"
                )
            if entry.fixed:
                value, offset = _decode_fixed(entry.type, data, offset)
            else:
                length, offset = decode_varint(data, offset)
                if offset + length > len(data):
                    raise RuntimeFault("truncated variable field")
                raw = data[offset : offset + length]
                offset += length
                value = (
                    raw if entry.type is FieldType.BYTES else raw.decode("utf-8")
                )
            fields[entry.name] = value
        return fields

    def encoded_size(self, fields: Dict[str, object]) -> int:
        return len(self.encode(fields))
