"""Network substrate: flat-id virtual L2, TCP model, HTTP/2+gRPC framing,
protobuf-style serialization, and the ADN compact wire format."""

from .addresses import FlatId, InstanceName, split_destination
from .http2 import (
    Frame,
    decode_grpc_message,
    default_grpc_headers,
    encode_grpc_message,
    framing_overhead_bytes,
    split_frames,
)
from .l2 import L2Frame, VirtualL2
from .serialization import (
    ProtoCodec,
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)
from .tcp import (
    DEFAULT_MSS,
    SEGMENT_OVERHEAD,
    MessageFramer,
    Segment,
    TcpConnection,
    TcpReceiver,
    TcpSender,
    wire_bytes_for_message,
)
from .wire import AdnWireCodec

__all__ = [
    "AdnWireCodec",
    "DEFAULT_MSS",
    "FlatId",
    "Frame",
    "InstanceName",
    "L2Frame",
    "MessageFramer",
    "ProtoCodec",
    "SEGMENT_OVERHEAD",
    "Segment",
    "TcpConnection",
    "TcpReceiver",
    "TcpSender",
    "VirtualL2",
    "decode_grpc_message",
    "decode_varint",
    "default_grpc_headers",
    "encode_grpc_message",
    "encode_varint",
    "framing_overhead_bytes",
    "split_destination",
    "split_frames",
    "wire_bytes_for_message",
    "zigzag_decode",
    "zigzag_encode",
]
