"""HTTP/2 + gRPC framing model for the baseline stack.

Builds real frame bytes (9-byte frame headers, a simplified static-table
HPACK for the pseudo-headers gRPC uses, and the 5-byte gRPC message
prefix). The purpose is byte-accurate overhead accounting for the
conventional wrapped stack that the paper's §2 criticizes — every layer
that wraps the RPC shows up as measurable bytes here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import RuntimeFault

FRAME_HEADER_SIZE = 9
GRPC_MESSAGE_PREFIX = 5  # 1-byte compressed flag + 4-byte length

TYPE_DATA = 0x0
TYPE_HEADERS = 0x1

FLAG_END_STREAM = 0x1
FLAG_END_HEADERS = 0x4


@dataclass(frozen=True)
class Frame:
    """One HTTP/2 frame."""

    type: int
    flags: int
    stream_id: int
    payload: bytes

    def encode(self) -> bytes:
        length = len(self.payload)
        if length > 0xFFFFFF:
            raise RuntimeFault("frame too large")
        header = struct.pack(
            ">BHBBI",
            (length >> 16) & 0xFF,
            length & 0xFFFF,
            self.type,
            self.flags,
            self.stream_id & 0x7FFFFFFF,
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> Tuple["Frame", int]:
        if offset + FRAME_HEADER_SIZE > len(data):
            raise RuntimeFault("truncated frame header")
        hi, lo, type_, flags, stream_id = struct.unpack_from(
            ">BHBBI", data, offset
        )
        length = (hi << 16) | lo
        offset += FRAME_HEADER_SIZE
        if offset + length > len(data):
            raise RuntimeFault("truncated frame payload")
        payload = data[offset : offset + length]
        return cls(type_, flags, stream_id & 0x7FFFFFFF, payload), offset + length


def _encode_header_block(headers: Dict[str, str]) -> bytes:
    """Simplified HPACK: each header is a length-prefixed literal pair.

    Real HPACK would compress repeated headers via dynamic tables; we use
    literals, which matches the first-request cost and keeps decode
    trivial. The paper's point — ~60 bytes of header machinery per
    message before any application data — holds either way.
    """
    out = bytearray()
    for name, value in headers.items():
        name_bytes = name.encode("utf-8")
        value_bytes = value.encode("utf-8")
        if len(name_bytes) > 255 or len(value_bytes) > 255:
            raise RuntimeFault("header too long for simplified HPACK")
        out.append(len(name_bytes))
        out.extend(name_bytes)
        out.append(len(value_bytes))
        out.extend(value_bytes)
    return bytes(out)


def _decode_header_block(payload: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    offset = 0
    while offset < len(payload):
        name_length = payload[offset]
        offset += 1
        name = payload[offset : offset + name_length].decode("utf-8")
        offset += name_length
        value_length = payload[offset]
        offset += 1
        value = payload[offset : offset + value_length].decode("utf-8")
        offset += value_length
        headers[name] = value
    return headers


def default_grpc_headers(method: str, authority: str) -> Dict[str, str]:
    """The pseudo/required headers a gRPC request carries."""
    return {
        ":method": "POST",
        ":scheme": "http",
        ":path": f"/adn.App/{method}",
        ":authority": authority,
        "content-type": "application/grpc",
        "te": "trailers",
    }


def encode_grpc_message(
    headers: Dict[str, str], payload: bytes, stream_id: int = 1
) -> bytes:
    """A gRPC message as HTTP/2 frames: HEADERS then DATA."""
    header_frame = Frame(
        TYPE_HEADERS,
        FLAG_END_HEADERS,
        stream_id,
        _encode_header_block(headers),
    )
    grpc_payload = struct.pack(">BI", 0, len(payload)) + payload
    data_frame = Frame(TYPE_DATA, FLAG_END_STREAM, stream_id, grpc_payload)
    return header_frame.encode() + data_frame.encode()


def decode_grpc_message(data: bytes) -> Tuple[Dict[str, str], bytes]:
    """Parse frames back into (headers, payload)."""
    headers_frame, offset = Frame.decode(data, 0)
    if headers_frame.type != TYPE_HEADERS:
        raise RuntimeFault("expected HEADERS frame first")
    data_frame, _offset = Frame.decode(data, offset)
    if data_frame.type != TYPE_DATA:
        raise RuntimeFault("expected DATA frame")
    if len(data_frame.payload) < GRPC_MESSAGE_PREFIX:
        raise RuntimeFault("missing gRPC message prefix")
    compressed, length = struct.unpack_from(">BI", data_frame.payload, 0)
    if compressed not in (0, 1):
        raise RuntimeFault("bad gRPC compressed flag")
    payload = data_frame.payload[GRPC_MESSAGE_PREFIX:]
    if len(payload) != length:
        raise RuntimeFault("gRPC length mismatch")
    return _decode_header_block(headers_frame.payload), payload


def framing_overhead_bytes(headers: Dict[str, str]) -> int:
    """Bytes the HTTP/2+gRPC layers add around a payload."""
    return (
        FRAME_HEADER_SIZE  # HEADERS frame header
        + len(_encode_header_block(headers))
        + FRAME_HEADER_SIZE  # DATA frame header
        + GRPC_MESSAGE_PREFIX
    )


def split_frames(data: bytes) -> List[Frame]:
    """All frames in a byte string (for tests)."""
    frames: List[Frame] = []
    offset = 0
    while offset < len(data):
        frame, offset = Frame.decode(data, offset)
        frames.append(frame)
    return frames
