"""Protobuf-style serialization used by the baseline gRPC stack.

A real varint/tag-length-value codec (wire-compatible in spirit with
protobuf, not with any specific .proto): the baseline path actually
serializes and deserializes application messages through it, so its byte
counts — which feed the cost model's per-byte terms and the header-size
benchmark — are real.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..dsl.schema import FieldType, RpcSchema
from ..errors import RuntimeFault

_WIRE_VARINT = 0
_WIRE_I64 = 1
_WIRE_LEN = 2


def encode_varint(value: int) -> bytes:
    if value < 0:
        raise RuntimeFault("varint cannot encode negatives; zigzag first")
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise RuntimeFault("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise RuntimeFault("varint too long")


def zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class ProtoCodec:
    """Encodes/decodes an RPC's application fields per an
    :class:`~repro.dsl.schema.RpcSchema` (field numbers are assigned by
    schema order, starting at 1)."""

    def __init__(self, schema: RpcSchema):
        self.schema = schema
        self._numbers: Dict[str, int] = {
            name: index + 1
            for index, name in enumerate(schema.application_field_names())
        }
        self._names: Dict[int, str] = {v: k for k, v in self._numbers.items()}

    def encode(self, fields: Dict[str, object]) -> bytes:
        out = bytearray()
        for name in self.schema.application_field_names():
            if name not in fields or fields[name] is None:
                continue
            number = self._numbers[name]
            value = fields[name]
            field_type = self.schema.fields[name].type
            out.extend(self._encode_field(number, field_type, value))
        return bytes(out)

    def _encode_field(
        self, number: int, field_type: FieldType, value: object
    ) -> bytes:
        if field_type is FieldType.INT:
            tag = encode_varint((number << 3) | _WIRE_VARINT)
            return tag + encode_varint(zigzag_encode(int(value)))  # type: ignore[arg-type]
        if field_type is FieldType.BOOL:
            tag = encode_varint((number << 3) | _WIRE_VARINT)
            return tag + encode_varint(1 if value else 0)
        if field_type is FieldType.FLOAT:
            tag = encode_varint((number << 3) | _WIRE_I64)
            return tag + struct.pack("<d", float(value))  # type: ignore[arg-type]
        if field_type in (FieldType.STR, FieldType.BYTES):
            raw = (
                value.encode("utf-8") if isinstance(value, str) else bytes(value)  # type: ignore[arg-type]
            )
            tag = encode_varint((number << 3) | _WIRE_LEN)
            return tag + encode_varint(len(raw)) + raw
        raise RuntimeFault(f"cannot encode type {field_type}")

    def decode(self, data: bytes) -> Dict[str, object]:
        fields: Dict[str, object] = {}
        offset = 0
        while offset < len(data):
            key, offset = decode_varint(data, offset)
            number = key >> 3
            wire_type = key & 0x07
            name = self._names.get(number)
            if wire_type == _WIRE_VARINT:
                raw, offset = decode_varint(data, offset)
                if name is None:
                    continue
                field_type = self.schema.fields[name].type
                if field_type is FieldType.BOOL:
                    fields[name] = bool(raw)
                else:
                    fields[name] = zigzag_decode(raw)
            elif wire_type == _WIRE_I64:
                if offset + 8 > len(data):
                    raise RuntimeFault("truncated i64 field")
                if name is not None:
                    fields[name] = struct.unpack_from("<d", data, offset)[0]
                offset += 8
            elif wire_type == _WIRE_LEN:
                length, offset = decode_varint(data, offset)
                if offset + length > len(data):
                    raise RuntimeFault("truncated length-delimited field")
                raw_bytes = data[offset : offset + length]
                offset += length
                if name is None:
                    continue
                field_type = self.schema.fields[name].type
                if field_type is FieldType.STR:
                    fields[name] = raw_bytes.decode("utf-8")
                else:
                    fields[name] = raw_bytes
            else:
                raise RuntimeFault(f"unknown wire type {wire_type}")
        return fields

    def encoded_size(self, fields: Dict[str, object]) -> int:
        return len(self.encode(fields))


def loc_varint_roundtrip_check(values: List[int]) -> bool:
    """Helper for property tests: all values round-trip."""
    for value in values:
        encoded = encode_varint(zigzag_encode(value))
        decoded, _ = decode_varint(encoded, 0)
        if zigzag_decode(decoded) != value:
            return False
    return True
