"""Simplified TCP model: segmentation, reliable in-order byte streams,
and wire-byte accounting.

The underlay (a cloud virtual network, paper §3) is lossless and
in-order, so we do not simulate retransmission; what matters for the
reproduction is (a) correct byte-stream semantics for stacked codecs
and (b) exact per-segment overhead bytes (Ethernet + IP + TCP headers)
for wire accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import RuntimeFault

ETHERNET_HEADER = 14
IP_HEADER = 20
TCP_HEADER = 20
SEGMENT_OVERHEAD = ETHERNET_HEADER + IP_HEADER + TCP_HEADER
DEFAULT_MSS = 1460


@dataclass(frozen=True)
class Segment:
    """One TCP segment on the wire."""

    src_port: int
    dst_port: int
    seq: int
    payload: bytes

    @property
    def wire_bytes(self) -> int:
        return SEGMENT_OVERHEAD + len(self.payload)


@dataclass
class TcpSender:
    """Segments an outgoing byte stream."""

    src_port: int
    dst_port: int
    mss: int = DEFAULT_MSS
    next_seq: int = 0
    bytes_sent: int = 0
    wire_bytes_sent: int = 0

    def send(self, data: bytes) -> List[Segment]:
        if self.mss <= 0:
            raise RuntimeFault("MSS must be positive")
        segments: List[Segment] = []
        for start in range(0, len(data), self.mss):
            chunk = data[start : start + self.mss]
            segments.append(
                Segment(
                    src_port=self.src_port,
                    dst_port=self.dst_port,
                    seq=self.next_seq,
                    payload=chunk,
                )
            )
            self.next_seq += len(chunk)
        if not segments:  # zero-length write still costs a segment
            segments.append(
                Segment(
                    src_port=self.src_port,
                    dst_port=self.dst_port,
                    seq=self.next_seq,
                    payload=b"",
                )
            )
        self.bytes_sent += len(data)
        self.wire_bytes_sent += sum(s.wire_bytes for s in segments)
        return segments


@dataclass
class TcpReceiver:
    """Reassembles an in-order byte stream from segments.

    Out-of-order arrival is buffered (the virtual L2 is FIFO per path, but
    multiple paths could interleave); duplicate and overlapping segments
    are rejected as model violations rather than silently handled.
    """

    next_seq: int = 0
    _buffer: dict = field(default_factory=dict)
    _stream: bytearray = field(default_factory=bytearray)

    def receive(self, segment: Segment) -> bytes:
        """Feed one segment; returns newly in-order bytes (may be b"")."""
        if segment.seq < self.next_seq:
            raise RuntimeFault(
                f"duplicate/overlapping segment at seq {segment.seq}"
            )
        self._buffer[segment.seq] = segment.payload
        delivered = bytearray()
        while self.next_seq in self._buffer:
            chunk = self._buffer.pop(self.next_seq)
            delivered.extend(chunk)
            self.next_seq += len(chunk)
            if not chunk:
                break  # zero-length keepalive
        self._stream.extend(delivered)
        return bytes(delivered)

    @property
    def stream(self) -> bytes:
        return bytes(self._stream)


class MessageFramer:
    """Length-prefixed message framing over a byte stream (how mRPC and
    the ADN transport delimit RPCs on TCP)."""

    PREFIX = 4

    def __init__(self) -> None:
        self._pending = bytearray()

    @staticmethod
    def frame(message: bytes) -> bytes:
        if len(message) > 0xFFFFFFFF:
            raise RuntimeFault("message too large to frame")
        return len(message).to_bytes(4, "big") + message

    def feed(self, data: bytes) -> List[bytes]:
        """Feed stream bytes; return completed messages."""
        self._pending.extend(data)
        messages: List[bytes] = []
        while True:
            if len(self._pending) < self.PREFIX:
                return messages
            length = int.from_bytes(self._pending[: self.PREFIX], "big")
            if len(self._pending) < self.PREFIX + length:
                return messages
            start = self.PREFIX
            messages.append(bytes(self._pending[start : start + length]))
            del self._pending[: start + length]


def wire_bytes_for_message(message_bytes: int, mss: int = DEFAULT_MSS) -> int:
    """Total on-the-wire bytes for one framed message over TCP."""
    framed = MessageFramer.PREFIX + message_bytes
    segments = max(1, -(-framed // mss))
    return framed + segments * SEGMENT_OVERHEAD


@dataclass
class TcpConnection:
    """A bidirectional connection glueing sender/receiver pairs; used by
    processor models that exchange framed messages."""

    a_port: int
    b_port: int
    mss: int = DEFAULT_MSS

    def __post_init__(self) -> None:
        self.a_sender = TcpSender(self.a_port, self.b_port, self.mss)
        self.b_sender = TcpSender(self.b_port, self.a_port, self.mss)
        self.a_receiver = TcpReceiver()
        self.b_receiver = TcpReceiver()
        self.a_framer = MessageFramer()
        self.b_framer = MessageFramer()

    def send_message(self, from_a: bool, message: bytes) -> List[Segment]:
        sender = self.a_sender if from_a else self.b_sender
        return sender.send(MessageFramer.frame(message))

    def deliver(self, to_a: bool, segments: List[Segment]) -> List[bytes]:
        receiver = self.a_receiver if to_a else self.b_receiver
        framer = self.a_framer if to_a else self.b_framer
        messages: List[bytes] = []
        for segment in segments:
            data = receiver.receive(segment)
            if data:
                messages.extend(framer.feed(data))
        return messages
