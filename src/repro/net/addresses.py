"""Addressing for the ADN substrate.

ADN assumes only "a (virtual) link layer that can deliver packets to
endpoints based on a flat identifier such as a MAC address" (paper §3).
We model that identifier as a 6-byte :class:`FlatId` derived
deterministically from the endpoint name, and service/instance names as
structured strings (``"B"``, ``"B.1"``) the control plane resolves to
flat ids.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True, order=True)
class FlatId:
    """A 6-byte flat endpoint identifier (MAC-address-like)."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 6:
            raise ValueError(f"FlatId must be 6 bytes, got {len(self.value)}")

    @classmethod
    def for_name(cls, name: str) -> "FlatId":
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=6).digest()
        return cls(digest)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.value)


@dataclass(frozen=True)
class InstanceName:
    """``service.index`` — one replica of a service."""

    service: str
    index: int

    def __str__(self) -> str:
        return f"{self.service}.{self.index}"

    @classmethod
    def parse(cls, text: str) -> "InstanceName":
        service, _, index = text.rpartition(".")
        if not service or not index.isdigit():
            raise ValueError(f"not an instance name: {text!r}")
        return cls(service=service, index=int(index))

    @property
    def flat_id(self) -> FlatId:
        return FlatId.for_name(str(self))


def split_destination(dst: str) -> Tuple[str, Optional[int]]:
    """Split ``"B.1"`` into ``("B", 1)`` and ``"B"`` into ``("B", None)``.

    A destination naming only a service means "any replica" — some element
    (a load balancer) or the controller's default policy must pick one.
    """
    service, _, index = dst.rpartition(".")
    if service and index.isdigit():
        return service, int(index)
    return dst, None
