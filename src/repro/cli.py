"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check``   — parse + validate a DSL file, report element analyses;
* ``fmt``     — pretty-print a DSL file in canonical form;
* ``compile`` — compile and show the legality matrix or emitted code;
* ``plan``    — solve placement for an app's chain and show the layout;
* ``bench``   — quick simulated run of a chain on a chosen stack;
* ``faults``  — fault-injection demo: crash a machine mid-workload and
  print the fault timeline plus the recovery report;
* ``overload`` — goodput sweep past saturation: the unprotected
  baseline's metastable collapse vs the protected stack's graceful
  degradation (repro.overload);
* ``offload`` — shed-point comparison: the same protected mesh with
  host-only shedding vs a SmartNIC running the chain's offloadable
  prefix and shedding in front of the host (repro.offload);
* ``graph``   — load/validate a service-graph topology spec
  (repro.graph), print every edge with its attached chain, the
  topology lint findings (ADN405), and the solved cross-service
  placement.

The RPC schema is given as repeated ``--field name:type`` options
(types: str, int, float, bool, bytes). A reasonable default schema
(payload/username/obj_id) applies when none is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .compiler.compiler import AdnCompiler
from .control.placement import ClusterSpec, PlacementRequest, solve_placement
from .dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib, parse
from .dsl.ast_nodes import ChainDecl
from .dsl.printer import print_program
from .dsl.validator import validate_program
from .errors import AdnError


def _default_schema() -> RpcSchema:
    return RpcSchema.of(
        "cli",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )


def _schema_from_args(fields: Optional[List[str]]) -> RpcSchema:
    if not fields:
        return _default_schema()
    schema = RpcSchema("cli")
    for spec in fields:
        name, _, type_name = spec.partition(":")
        if not type_name:
            raise AdnError(f"--field wants name:type, got {spec!r}")
        schema.add(name, FieldType.from_keyword(type_name))
    return schema


def _load(path: str, schema: RpcSchema, include_stdlib: bool = True):
    with open(path) as handle:
        source = handle.read()
    program = parse(source)
    if include_stdlib:
        program = load_stdlib().merged(program)
    return validate_program(program, schema=schema)


def _write_bench_json(path, benchmark, seed, config, results) -> None:
    """One stable on-disk shape for every benchmark command's ``--json``:
    consumers key on ``benchmark`` and ``schema_version`` and treat
    ``config``/``results`` as the command's own (versioned) payload."""
    payload = {
        "benchmark": benchmark,
        "schema_version": 1,
        "seed": seed,
        "config": config,
        "results": results,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def _fails(diagnostics, threshold) -> bool:
    """The one exit-code rule every subcommand shares: nonzero exactly
    when some diagnostic is at least ``--fail-on`` severe. ``lint``,
    ``check`` and ``graph --check`` must agree for both ``--format``
    modes, so they all route through this predicate."""
    return any(
        diagnostic.severity.rank >= threshold.rank
        for diagnostic in diagnostics
    )


def _graph_spec_diagnostics(args, program, schema, spec: str):
    """Diagnostics for a topology spec checked against ``program``:
    ADN600 loading/resolution failures, ADN405 deadline custody, and —
    when the spec loads and resolves — the full interprocedural ADN60x
    analysis. Returns (diagnostics, failed)."""
    from .analysis.graph import analyze_graph
    from .graph.lint import (
        check_chain_resolution,
        check_control_plane_single_point,
        check_deadline_propagation,
        check_offload_capacity,
        load_graph_spec,
        spec_cluster_block,
    )
    from .lint import Severity
    from .lint.diagnostics import dedupe_diagnostics

    graph, diagnostics = load_graph_spec(spec)
    if graph is not None:
        resolution = check_chain_resolution(
            graph, program, schema, path=spec
        )
        diagnostics = diagnostics + resolution
        diagnostics += check_deadline_propagation(graph, path=spec)
        diagnostics += check_control_plane_single_point(
            graph, spec_cluster_block(spec), program, path=spec
        )
        if not resolution:
            diagnostics += check_offload_capacity(
                graph, program, schema, path=spec
            )
            diagnostics += analyze_graph(
                graph, program, schema, path=spec
            ).diagnostics
    # both the DSL-side and spec-side emitters of a shared rule may have
    # fired for one root cause: collapse to the winner and present in
    # stable (file, span, rule id) order
    diagnostics = dedupe_diagnostics(diagnostics)
    threshold = Severity.from_name(args.fail_on)
    return diagnostics, _fails(diagnostics, threshold)


def _typecheck_diagnostics(args, schema):
    """Run the ADN5xx abstract-interpretation rules for ``check --types``
    over the file (and optionally the stdlib); returns (diagnostics,
    failed) where ``failed`` honours ``--fail-on`` identically for the
    text and json output paths."""
    from .lint import LintOptions, Severity, lint_file, lint_source

    options = LintOptions(
        schema=schema, include_stdlib=not args.no_stdlib
    )
    results = [lint_file(args.file, options)]
    if args.stdlib:
        from .dsl.stdlib import STDLIB_SOURCES

        for name in sorted(STDLIB_SOURCES):
            results.append(
                lint_source(
                    STDLIB_SOURCES[name],
                    path=f"<stdlib:{name}>",
                    options=options,
                )
            )
    diagnostics = [
        diagnostic
        for result in results
        for diagnostic in result.diagnostics
        if diagnostic.code.startswith("ADN5")
    ]
    threshold = Severity.from_name(args.fail_on)
    return diagnostics, _fails(diagnostics, threshold)


def cmd_check(args) -> int:
    schema = _schema_from_args(args.field)
    try:
        program = _load(args.file, schema, include_stdlib=not args.no_stdlib)
        own = parse(open(args.file).read())
    except AdnError as error:
        if args.format == "json":
            print(json.dumps({
                "file": args.file,
                "ok": False,
                "error": {
                    "message": str(error),
                    "line": getattr(error, "line", 0),
                    "column": getattr(error, "column", 0),
                },
            }, indent=2))
        else:
            print(f"{args.file}: error: {error}", file=sys.stderr)
        return 1
    diagnostics, types_failed = (
        _typecheck_diagnostics(args, schema) if args.types else ([], False)
    )
    graph_diags, graph_failed = (
        _graph_spec_diagnostics(args, program, schema, args.graph)
        if args.graph
        else ([], False)
    )
    failed = types_failed or graph_failed
    if args.format == "json":
        payload = {
            "file": args.file,
            "ok": not failed,
            "elements": sorted(own.elements),
            "filters": sorted(own.filters),
            "apps": sorted(own.apps),
        }
        if args.types:
            payload["typecheck"] = [d.to_dict() for d in diagnostics]
        if args.graph:
            payload["graph"] = [d.to_dict() for d in graph_diags]
        print(json.dumps(payload, indent=2))
        # json and text must agree: nonzero whenever findings reach
        # --fail-on, zero otherwise
        return 1 if failed else 0
    print(f"{args.file}: OK" if not failed else f"{args.file}: FAIL")
    print(
        f"  elements: {len(own.elements)}  filters: {len(own.filters)}  "
        f"apps: {len(own.apps)}"
    )
    if args.types:
        for diagnostic in diagnostics:
            print(diagnostic.format_text())
        print(
            f"  typecheck: {len(diagnostics)} finding(s) "
            f"(fail threshold: {args.fail_on})"
        )
    if args.graph:
        for diagnostic in graph_diags:
            print(diagnostic.format_text())
        print(
            f"  graph: {len(graph_diags)} finding(s) against {args.graph} "
            f"(fail threshold: {args.fail_on})"
        )
    if args.analyze:
        from .ir import analyze_element, build_element_ir

        for name in own.elements:
            analysis = analyze_element(
                build_element_ir(program.elements[name])
            )
            flags = []
            if analysis.can_drop:
                flags.append("drops")
            if analysis.can_multiply:
                flags.append("fans-out")
            if analysis.observable_effects:
                flags.append("effects")
            if not analysis.deterministic:
                flags.append("nondeterministic")
            print(
                f"  {name}: reads={sorted(analysis.fields_read)} "
                f"writes={sorted(analysis.fields_written)} "
                f"[{', '.join(flags) or 'pure'}]"
            )
    return 1 if failed else 0


def cmd_lint(args) -> int:
    from .lint import LintOptions, Severity, lint_file, lint_source

    if args.explain:
        from .lint.explain import explain_rule
        from .lint.registry import all_rules

        text = explain_rule(args.explain)
        if text is None:
            known = ", ".join(r.code for r in all_rules())
            print(
                f"unknown rule {args.explain!r}; registered rules: {known}",
                file=sys.stderr,
            )
            return 1
        print(text)
        return 0

    schema = _schema_from_args(args.field) if args.field else None
    cluster = ClusterSpec(
        smartnics=args.smartnics,
        programmable_switch=args.switch,
        kernel_offload=not args.no_kernel,
        sidecars_available=not args.no_sidecars,
        engine_available=not args.no_engine,
        standby_controller=args.standby_controller,
    )
    options = LintOptions(
        schema=schema,
        include_stdlib=not args.no_stdlib,
        cluster=cluster,
    )
    threshold = Severity.from_name(args.fail_on)
    results = []
    for path in args.files:
        results.append(lint_file(path, options))
    if args.stdlib:
        from .dsl.stdlib import STDLIB_SOURCES

        for name in sorted(STDLIB_SOURCES):
            results.append(
                lint_source(
                    STDLIB_SOURCES[name],
                    path=f"<stdlib:{name}>",
                    options=options,
                )
            )
    failed = False
    total = 0
    if args.format == "json":
        payload = []
        for result in results:
            payload.append({
                "path": result.path,
                "diagnostics": [d.to_dict() for d in result.diagnostics],
                "fails": result.fails(threshold),
            })
            failed = failed or result.fails(threshold)
            total += len(result.diagnostics)
        print(json.dumps(payload, indent=2))
    else:
        for result in results:
            for diagnostic in result.diagnostics:
                print(diagnostic.format_text())
            failed = failed or result.fails(threshold)
            total += len(result.diagnostics)
        files = len(results)
        print(
            f"{total} finding(s) in {files} file(s) "
            f"(fail threshold: {threshold.value})"
        )
    return 1 if failed else 0


def cmd_fmt(args) -> int:
    program = parse(open(args.file).read())
    text = print_program(program)
    if args.in_place:
        with open(args.file, "w") as handle:
            handle.write(text)
        print(f"formatted {args.file}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_compile(args) -> int:
    schema = _schema_from_args(args.field)
    program = _load(args.file, schema)
    own = parse(open(args.file).read())
    if args.explain or args.verify:
        return _explain(program, own, schema, verify=args.verify)
    compiler = AdnCompiler(registry=FunctionRegistry())
    targets = list(own.elements) or list(program.elements)
    if args.element:
        targets = [args.element]
    for name in targets:
        if name not in program.elements:
            print(f"unknown element {name!r}", file=sys.stderr)
            return 1
        compiled = compiler.compile_element(program.elements[name])
        if args.emit:
            artifact = compiled.artifact(args.emit)
            print(f"// ==== {name} [{args.emit}] ====")
            print(artifact.source)
        else:
            print(f"{name}:")
            for backend, report in compiled.legality.items():
                if report.legal:
                    loc = compiled.artifacts[backend].loc
                    print(f"  {backend:7s} OK   ({loc} generated lines)")
                else:
                    print(f"  {backend:7s} NO   {report.violations[0]}")
    return 0


def _explain(program, own, schema, verify: bool = False) -> int:
    """``compile --explain``/``--verify``: run the full optimization
    pipeline (all passes on, including opt-in fusion) and print each
    chain's per-pass report plus the compiler's artifact-cache
    statistics. With ``verify``, every pass is translation-validated
    against the pre-pass chain; a failed pipeline emits no artifacts
    and the command exits nonzero with the counterexample."""
    from .errors import TranslationValidationError
    from .ir.optimizer import OptimizerOptions
    from .ir.passmgr import format_report_table

    compiler = AdnCompiler(
        registry=FunctionRegistry(),
        options=OptimizerOptions(fusion=True, verify=verify),
    )
    chains = []
    apps = list(own.apps)
    try:
        if apps:
            for app_name in apps:
                chains.extend(
                    compiler.compile_app(program, app_name, schema).chains
                )
        else:
            # no app in the file: explain each element as a one-element
            # chain
            targets = list(own.elements) or list(program.elements)
            for name in targets:
                chains.append(
                    compiler.compile_chain(
                        ChainDecl(src="A", dst="B", elements=(name,)),
                        program,
                        schema,
                    )
                )
    except TranslationValidationError as error:
        where = ""
        if error.span is not None and error.span.line > 0:
            where = f" (line {error.span.line}, column {error.span.column})"
        print(f"translation validation FAILED{where}: {error}",
              file=sys.stderr)
        print("no artifacts emitted", file=sys.stderr)
        return 1
    for chain in chains:
        print(f"chain {chain.decl.src} -> {chain.decl.dst}:")
        print(f"  input : {' -> '.join(chain.decl.elements)}")
        print(f"  output: {' -> '.join(chain.element_order)}")
        print(format_report_table(chain.ir.pass_reports))
        print()
    stats = compiler.cache_stats
    print(
        f"artifact cache: {stats.hits} hits, {stats.misses} misses "
        f"({stats.lookups} lookups)"
    )
    return 0


def cmd_plan(args) -> int:
    schema = _schema_from_args(args.field)
    program = _load(args.file, schema)
    own = parse(open(args.file).read())
    apps = list(own.apps)
    if not apps:
        print("no app definition in the file", file=sys.stderr)
        return 1
    app_name = args.app or apps[0]
    compiler = AdnCompiler(registry=FunctionRegistry())
    compiled_app = compiler.compile_app(program, app_name, schema)
    cluster = ClusterSpec(
        smartnics=args.smartnics,
        programmable_switch=args.switch,
    )
    for chain in compiled_app.chains:
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=schema,
                cluster=cluster,
                strategy=args.strategy,
                replicas=args.replicas,
            )
        )
        print(f"chain {chain.decl.src} -> {chain.decl.dst} "
              f"(strategy {args.strategy}):")
        for segment in plan.segments:
            replicas = (
                f" x{segment.replicas}" if segment.replicas > 1 else ""
            )
            print(
                f"  [{segment.platform.value}@{segment.machine}{replicas}] "
                + ", ".join(segment.elements)
            )
    return 0


def cmd_bench(args) -> int:
    from .baselines import EnvoyMeshStack, GrpcStack
    from .ir import analyze_element, build_element_ir
    from .runtime import AdnMrpcStack
    from .runtime.message import reset_rpc_ids
    from .sim import ClosedLoopClient, Simulator, two_machine_cluster

    schema = _schema_from_args(args.field)
    names = [name.strip() for name in args.chain.split(",") if name.strip()]
    program = load_stdlib(schema=schema)
    registry = FunctionRegistry()
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    if args.system == "adn":
        compiler = AdnCompiler(registry=registry)
        chain = compiler.compile_chain(
            ChainDecl(src="A", dst="B", elements=tuple(names)), program, schema
        )
        stack = AdnMrpcStack(sim, cluster, chain, schema, registry)
    elif args.system == "envoy":
        irs = []
        for name in names:
            ir = build_element_ir(program.elements[name])
            analyze_element(ir, registry)
            irs.append(ir)
        stack = EnvoyMeshStack(
            sim, cluster, schema, client_filters=irs, server_filters=[],
            registry=registry,
        )
    else:  # plain grpc
        stack = GrpcStack(sim, cluster, schema)
    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=args.concurrency,
        total_rpcs=args.rpcs,
        warmup_rpcs=args.rpcs // 10,
    )
    metrics = client.run()
    print(f"system      : {args.system}")
    print(f"chain       : {' -> '.join(names) or '(none)'}")
    print(f"concurrency : {args.concurrency}")
    print(f"completed   : {metrics.completed} (aborted {metrics.aborted})")
    print(f"rate        : {metrics.throughput_krps:.1f} krps")
    print(f"median      : {metrics.latency.median_us():.1f} us")
    print(f"p99         : {metrics.latency.percentile(99) * 1e6:.1f} us")
    return 0


def cmd_faults(args) -> int:
    from .faults import (
        default_crash_plan,
        default_retry_policy,
        load_fault_plan,
        run_recovery_scenario,
    )

    if args.plan:
        # every malformed-plan failure mode (unreadable file, bad JSON,
        # unknown kinds, negative times, overlapping transient reverts)
        # surfaces as ADN610 diagnostics, never a traceback
        plan, diagnostics = load_fault_plan(args.plan)
        if plan is None:
            for diagnostic in diagnostics:
                print(diagnostic.format_text())
            print(f"{len(diagnostics)} error(s)")
            return 1
    else:
        plan = default_crash_plan(seed=args.seed, crash_at_s=args.crash_at)
    result = run_recovery_scenario(
        seed=args.seed,
        total_rpcs=args.rpcs,
        concurrency=args.concurrency,
        table_rows=args.table_rows,
        fault_plan=plan,
        retry_policy=default_retry_policy(seed=args.seed),
    )
    metrics = result.metrics
    stats = result.stack.retry_stats
    print("fault plan:")
    for event in result.fault_plan.events:
        duration = (
            f" for {event.duration_s * 1e3:.1f} ms"
            if event.duration_s is not None
            else ""
        )
        print(f"  t={event.at_s * 1e3:8.2f} ms  {event.kind} "
              f"{event.target}{duration}")
    print("timeline:")
    for entry in result.timeline:
        detail = f"  ({entry.detail})" if entry.detail else ""
        print(f"  t={entry.at_s * 1e3:8.2f} ms  {entry.action:7s} "
              f"{entry.kind} {entry.target}{detail}")
    print()
    print(f"workload    : {metrics.completed}/{metrics.issued} completed "
          f"(aborted {metrics.aborted})")
    print(f"data plane  : {result.stack.rpcs_lost} attempts lost, "
          f"{stats.retries} retries, {stats.timeouts} timeouts, "
          f"{result.stack.duplicate_server_executions} duplicate "
          f"server executions")
    print(f"amplification: {stats.amplification():.2f}x "
          f"({stats.attempts} attempts / {stats.logical_calls} calls)")
    print(f"tail writes : {result.checkpointer.tail_writes_lost} "
          f"delta(s) lost with the crashed memory")
    print()
    report = result.report
    if args.json:
        _write_bench_json(
            args.json,
            "faults",
            args.seed,
            {
                "rpcs": args.rpcs,
                "concurrency": args.concurrency,
                "table_rows": args.table_rows,
                "events": [
                    {
                        "at_s": event.at_s,
                        "kind": event.kind,
                        "target": event.target,
                        "duration_s": event.duration_s,
                    }
                    for event in result.fault_plan.events
                ],
            },
            {
                "issued": metrics.issued,
                "completed": metrics.completed,
                "aborted": metrics.aborted,
                "rpcs_lost": result.stack.rpcs_lost,
                "retries": stats.retries,
                "timeouts": stats.timeouts,
                "attempts": stats.attempts,
                "logical_calls": stats.logical_calls,
                "amplification": round(stats.amplification(), 4),
                "duplicate_server_executions": (
                    result.stack.duplicate_server_executions
                ),
                "tail_writes_lost": result.checkpointer.tail_writes_lost,
                "recovery": None if report is None else {
                    "machine": report.machine,
                    "unavailability_ms": report.unavailability_s * 1e3,
                    "detection_latency_ms": (
                        None if report.detection_latency_s is None
                        else report.detection_latency_s * 1e3
                    ),
                    "rows_restored": report.rows_restored,
                    "deltas_replayed": report.deltas_replayed,
                    "elements_moved": list(report.elements_moved),
                },
            },
        )
    if report is None:
        print("no recovery was triggered")
        return 1
    print(report.summary())
    return 0


def cmd_chaos(args) -> int:
    """Seeded multi-fault chaos soak over the control-resilience
    scenario: overlapping faults on the data host and the leader
    controller, with failover, journaled recovery resumption, and the
    epoch fence all armed. The soak-level invariant — zero stale plans
    *applied* — is the split-brain counter the run exits nonzero on."""
    from .control.resilience import run_chaos_soak

    soak = run_chaos_soak(
        trials=args.trials,
        base_seed=args.seed,
        horizon_s=args.horizon,
        events=args.events,
        total_rpcs=args.rpcs,
        standby=not args.no_standby,
        fence_epochs=not args.no_fence,
    )
    print(f"chaos soak: {args.trials} trial(s), base seed {args.seed}, "
          f"{args.events} fault(s)/trial")
    for trial in soak["trials"]:
        kinds = ", ".join(
            f"{event['kind']}({event['target'] or 'fabric'})"
            for event in trial["events"]
        )
        print(f"  seed {trial['seed']:>4}: {kinds}")
        print(f"    goodput {trial['goodput_fraction']:.3f}  "
              f"recoveries {trial['recoveries']}  "
              f"failovers {trial['failovers']}  "
              f"stale rejected/applied "
              f"{trial['stale_plans_rejected']}/"
              f"{trial['stale_plans_applied']}  "
              f"sig {trial['signature'][:12]}")
    print()
    print(f"total recoveries     : {soak['total_recoveries']}")
    print(f"total failovers      : {soak['total_failovers']}")
    print(f"stale plans rejected : {soak['total_stale_rejected']}")
    print(f"stale plans applied  : {soak['total_stale_applied']} "
          f"(split-brain counter; must be 0)")
    print(f"min goodput fraction : {soak['min_goodput_fraction']:.3f}")
    if args.json:
        _write_bench_json(
            args.json,
            "chaos",
            args.seed,
            {
                "trials": args.trials,
                "events_per_trial": args.events,
                "horizon_s": args.horizon,
                "rpcs": args.rpcs,
                "standby": not args.no_standby,
                "fence_epochs": not args.no_fence,
            },
            soak,
        )
    return 1 if soak["total_stale_applied"] else 0


def cmd_overload(args) -> int:
    from .overload.sweep import (
        SweepConfig,
        format_sweep,
        run_overload_sweep,
    )

    multipliers = tuple(
        float(part) for part in args.multipliers.split(",") if part.strip()
    )
    config = SweepConfig(
        multipliers=multipliers,
        duration_s=args.duration,
        seed=args.seed,
    )
    baseline = run_overload_sweep(protected=False, config=config)
    protected = run_overload_sweep(protected=True, config=config)
    print(format_sweep(baseline))
    print()
    print(format_sweep(protected))
    print()
    baseline_peak = max(p.goodput_rps for p in baseline)
    protected_peak = max(p.goodput_rps for p in protected)
    at_max = multipliers[-1]
    base_end = baseline[-1].goodput_rps
    prot_end = protected[-1].goodput_rps
    print(
        f"at {at_max:.1f}x offered load: baseline keeps "
        f"{base_end / baseline_peak:7.1%} of its peak goodput, "
        f"protected keeps {prot_end / protected_peak:7.1%}"
    )
    if args.json:
        from dataclasses import asdict

        _write_bench_json(
            args.json,
            "overload",
            args.seed,
            asdict(config),
            {
                "baseline": [asdict(point) for point in baseline],
                "protected": [asdict(point) for point in protected],
            },
        )
    return 0


def cmd_offload(args) -> int:
    from dataclasses import asdict

    from .offload.sweep import (
        SHED_POINTS,
        OffloadSweepConfig,
        format_comparison,
        run_offload_comparison,
    )

    multipliers = tuple(
        float(part) for part in args.multipliers.split(",") if part.strip()
    )
    config = OffloadSweepConfig(
        multipliers=multipliers,
        duration_s=args.duration,
        seed=args.seed,
    )
    results = run_offload_comparison(config)
    print(format_comparison(results))
    print()
    at_max = multipliers[-1]
    server_end = results["server"][-1]
    nic_end = results["nic"][-1]
    print(
        f"at {at_max:.1f}x offered load: moving the shed point into the "
        f"NIC lifts goodput {server_end.goodput_rps:.0f} -> "
        f"{nic_end.goodput_rps:.0f} rps and cuts host CPU per admitted "
        f"RPC {server_end.host_cpu_ms_per_ok:.3f} -> "
        f"{nic_end.host_cpu_ms_per_ok:.3f} ms"
    )
    if args.json:
        _write_bench_json(
            args.json,
            "offload",
            args.seed,
            asdict(config),
            {
                shed_at: [point.to_dict() for point in results[shed_at]]
                for shed_at in SHED_POINTS
            },
        )
    return 0


def cmd_graph(args) -> int:
    from .graph import solve_graph_placement
    from .graph.lint import (
        check_chain_resolution,
        check_control_plane_single_point,
        check_deadline_propagation,
        check_offload_capacity,
        load_graph_spec,
        spec_cluster_block,
    )
    from .graph.placement import default_machine_pool
    from .graph.scenario import MESH_SCHEMA, bookinfo_graph, hotel_mesh_graph
    from .lint import Severity

    schema = _schema_from_args(args.field) if args.field else MESH_SCHEMA
    threshold = Severity.from_name(args.fail_on)
    if args.spec:
        where = args.spec
        graph, spec_diags = load_graph_spec(args.spec)
    else:
        where = f"<demo:{args.demo}>"
        graph = (
            bookinfo_graph() if args.demo == "bookinfo"
            else hotel_mesh_graph()
        )
        spec_diags = []
    program = load_stdlib(schema=schema)
    if graph is None:
        # the spec never became a graph; report ADN600 and stop — same
        # exit-code rule as every other path
        failed = _fails(spec_diags, threshold)
        if args.format == "json":
            print(json.dumps({
                "graph": None,
                "ok": not failed,
                "errors": [d.to_dict() for d in spec_diags],
                "lint": [],
            }, indent=2))
        else:
            for diagnostic in spec_diags:
                print(diagnostic.format_text(), file=sys.stderr)
        return 1 if failed else 0
    errors = check_chain_resolution(graph, program, schema, path=where)
    diagnostics = check_deadline_propagation(graph, path=where)
    diagnostics = diagnostics + check_control_plane_single_point(
        graph,
        spec_cluster_block(args.spec) if args.spec else None,
        program,
        path=where,
    )
    if not errors:
        diagnostics = diagnostics + check_offload_capacity(
            graph, program, schema, path=where
        )
    analysis = None
    if args.check and not errors:
        from .analysis.graph import analyze_graph

        analysis = analyze_graph(graph, program, schema, path=where)
        diagnostics = diagnostics + analysis.diagnostics
    from .lint.diagnostics import dedupe_diagnostics

    diagnostics = dedupe_diagnostics(diagnostics)
    placement = None
    if not errors and not args.no_place:
        placement = solve_graph_placement(
            graph,
            program,
            schema,
            strategy=args.strategy,
            machines=default_machine_pool(args.machines),
        )
    failed = _fails(errors + diagnostics, threshold)

    if args.format == "json":
        payload = {
            "graph": graph.to_dict(),
            "ok": not failed,
            "errors": [d.to_dict() for d in errors],
            "lint": [d.to_dict() for d in diagnostics],
            "entry": graph.entry_services(),
            "depth": graph.depth(),
        }
        if analysis is not None:
            payload["analysis"] = {
                "worst_amplification": analysis.worst_amplification,
                "worst_path": list(analysis.worst_path),
                "amplification": {
                    f"{src}->{dst}": bound
                    for (src, dst), bound in sorted(
                        (key, edge.amplification_bound)
                        for key, edge in analysis.edges.items()
                    )
                },
                "live_fields": {
                    service: sorted(fields)
                    for service, fields in sorted(analysis.live.items())
                },
                "analysis_ms": analysis.analysis_ms,
            }
        if placement is not None:
            payload["placement"] = placement.to_dict()
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    order = graph.topological_order()
    print(f"graph {graph.name}: {len(graph.services)} services, "
          f"{len(graph.edges)} edges, depth {graph.depth()} "
          f"(entry: {', '.join(graph.entry_services())})")
    for service in order:
        spec = graph.services[service]
        extras = []
        if spec.replicas != 1:
            extras.append(f"x{spec.replicas}")
        if placement is not None:
            extras.append(f"@{placement.machine_of(service)}")
        elif spec.machine is not None:
            extras.append(f"@{spec.machine}")
        print(f"  service {service:16s} {' '.join(extras)}")
    for edge in graph.edges:
        knobs = []
        if edge.deadline_budget_ms is not None:
            knobs.append(f"deadline={edge.deadline_budget_ms:g}ms")
        if edge.retries:
            knobs.append(f"attempts={edge.max_attempts}")
        if edge.per_attempt_timeout_ms is not None:
            knobs.append(f"timeout={edge.per_attempt_timeout_ms:g}ms")
        if edge.admission:
            knobs.append("admission")
        if edge.breaker:
            knobs.append("breaker")
        if edge.offload is not None:
            knobs.append(f"offload={edge.offload}")
        if not edge.required:
            knobs.append("optional")
        chain = " -> ".join(edge.elements) or "(no elements)"
        print(f"  edge {edge.name}: {chain}"
              + (f"  [{', '.join(knobs)}]" if knobs else ""))
        if placement is not None:
            for segment in placement.edge_plans[edge.key].segments:
                print(f"    [{segment.platform.value}@{segment.machine}] "
                      + ", ".join(segment.elements))
    if analysis is not None:
        path_text = " -> ".join(analysis.worst_path) or "(none)"
        print(
            f"  analysis: worst retry amplification "
            f"{analysis.worst_amplification:g}x via {path_text} "
            f"({analysis.analysis_ms:.1f} ms)"
        )
        for service in order:
            live = analysis.live.get(service)
            if live is not None:
                print(f"    live@{service}: {', '.join(sorted(live))}")
    for diagnostic in errors:
        print(diagnostic.format_text(), file=sys.stderr)
    for diagnostic in diagnostics:
        print(diagnostic.format_text())
    if diagnostics or errors:
        print(f"{len(errors)} error(s), {len(diagnostics)} lint "
              f"finding(s) (fail threshold: {threshold.value})")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application Defined Networks — compiler and tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_fields(p):
        p.add_argument(
            "--field",
            action="append",
            metavar="NAME:TYPE",
            help="RPC schema field (repeatable); default: "
            "payload:bytes username:str obj_id:int",
        )

    check = sub.add_parser("check", help="parse and validate a DSL file")
    check.add_argument("file")
    check.add_argument("--analyze", action="store_true",
                       help="print per-element analyses")
    check.add_argument("--types", action="store_true",
                       help="run the abstract-interpretation type checker "
                       "(ADN501-ADN505) over elements and chains")
    check.add_argument(
        "--fail-on", choices=["error", "warning", "hint"], default="error",
        help="with --types: exit nonzero when any finding is at least "
        "this severe",
    )
    check.add_argument("--stdlib", action="store_true",
                       help="with --types: also check every "
                       "standard-library element")
    check.add_argument(
        "--graph", metavar="SPEC",
        help="also check a service-graph topology spec against this "
        "file's elements (interprocedural ADN600-ADN606 analysis)",
    )
    check.add_argument("--no-stdlib", action="store_true",
                       help="do not merge the standard element library")
    check.add_argument("--format", choices=["text", "json"], default="text")
    add_fields(check)
    check.set_defaults(func=cmd_check)

    lint = sub.add_parser(
        "lint", help="static analysis: state races, dead state, placement"
    )
    lint.add_argument("files", nargs="*", metavar="FILE")
    lint.add_argument(
        "--explain", metavar="ADNxxx",
        help="print a rule's description, default severity, and a "
        "minimal triggering example, then exit",
    )
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument(
        "--fail-on", choices=["error", "warning", "hint"], default="error",
        help="exit nonzero when any finding is at least this severe",
    )
    lint.add_argument("--no-stdlib", action="store_true",
                      help="do not resolve chain references via the stdlib")
    lint.add_argument("--stdlib", action="store_true",
                      help="also lint every standard-library element")
    lint.add_argument("--smartnics", action="store_true")
    lint.add_argument("--switch", action="store_true")
    lint.add_argument("--no-kernel", action="store_true",
                      help="cluster has no kernel offload")
    lint.add_argument("--no-sidecars", action="store_true",
                      help="cluster has no sidecar proxies")
    lint.add_argument("--no-engine", action="store_true",
                      help="cluster has no userspace engine (proxyless)")
    lint.add_argument("--standby-controller", action="store_true",
                      help="cluster runs a warm-standby controller pair "
                      "(silences ADN407)")
    add_fields(lint)
    lint.set_defaults(func=cmd_lint)

    fmt = sub.add_parser("fmt", help="pretty-print a DSL file")
    fmt.add_argument("file")
    fmt.add_argument("--in-place", action="store_true")
    fmt.set_defaults(func=cmd_fmt)

    compile_ = sub.add_parser("compile", help="compile elements")
    compile_.add_argument("file")
    compile_.add_argument("--element", help="compile only this element")
    compile_.add_argument(
        "--emit", choices=["python", "ebpf", "nic", "p4", "wasm"],
        help="print generated source for this backend",
    )
    compile_.add_argument(
        "--explain", action="store_true",
        help="run the full pass pipeline (incl. fusion) and print the "
        "per-pass report for each chain",
    )
    compile_.add_argument(
        "--verify", action="store_true",
        help="translation-validate every pass (abstract environments + "
        "concolic replay); refuse to emit artifacts and exit nonzero "
        "if any pass miscompiles",
    )
    add_fields(compile_)
    compile_.set_defaults(func=cmd_compile)

    plan = sub.add_parser("plan", help="solve placement for an app")
    plan.add_argument("file")
    plan.add_argument("--app")
    plan.add_argument(
        "--strategy",
        choices=["software", "inapp", "offload", "scaleout"],
        default="software",
    )
    plan.add_argument("--smartnics", action="store_true")
    plan.add_argument("--switch", action="store_true")
    plan.add_argument("--replicas", type=int, default=1)
    add_fields(plan)
    plan.set_defaults(func=cmd_plan)

    bench = sub.add_parser("bench", help="quick simulated run")
    bench.add_argument(
        "--chain", default="Logging,Acl,Fault",
        help="comma-separated stdlib elements",
    )
    bench.add_argument(
        "--system", choices=["adn", "envoy", "grpc"], default="adn"
    )
    bench.add_argument("--concurrency", type=int, default=128)
    bench.add_argument("--rpcs", type=int, default=4000)
    add_fields(bench)
    bench.set_defaults(func=cmd_bench)

    faults = sub.add_parser(
        "faults",
        help="crash a machine mid-workload; show detection and recovery",
    )
    faults.add_argument(
        "--plan", metavar="PLAN.json",
        help="fault plan JSON (default: crash stats-host at --crash-at)",
    )
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--rpcs", type=int, default=3000)
    faults.add_argument("--concurrency", type=int, default=4)
    faults.add_argument(
        "--table-rows", type=int, default=500,
        help="resident state rows that predate the workload",
    )
    faults.add_argument(
        "--crash-at", type=float, default=0.01, metavar="SECONDS",
        help="when the default plan crashes stats-host",
    )
    faults.add_argument(
        "--json", metavar="OUT",
        help="also write the run's metrics as stable JSON",
    )
    faults.set_defaults(func=cmd_faults)

    chaos = sub.add_parser(
        "chaos",
        help="seeded multi-fault soak with controller failover and "
        "epoch fencing; exits nonzero on any split-brain application",
    )
    chaos.add_argument("--trials", type=int, default=5)
    chaos.add_argument("--seed", type=int, default=0, help="base seed")
    chaos.add_argument(
        "--events", type=int, default=3,
        help="overlapping faults per trial",
    )
    chaos.add_argument("--rpcs", type=int, default=800)
    chaos.add_argument(
        "--horizon", type=float, default=2.0, metavar="SECONDS",
        help="per-trial simulated horizon",
    )
    chaos.add_argument(
        "--no-standby", action="store_true",
        help="disable the warm-standby controller (failover off)",
    )
    chaos.add_argument(
        "--no-fence", action="store_true",
        help="disable epoch fencing (stale plans apply; the hazard demo)",
    )
    chaos.add_argument(
        "--json", metavar="OUT",
        help="also write the soak results as stable JSON",
    )
    chaos.set_defaults(func=cmd_chaos)

    overload = sub.add_parser(
        "overload",
        help="goodput sweep: baseline collapse vs protected degradation",
    )
    overload.add_argument(
        "--multipliers", default="0.5,1.0,1.5,3.0",
        help="offered-load multiples of nominal capacity",
    )
    overload.add_argument("--duration", type=float, default=0.1)
    overload.add_argument("--seed", type=int, default=1)
    overload.add_argument(
        "--json", metavar="OUT",
        help="also write the sweep points as stable JSON",
    )
    overload.set_defaults(func=cmd_overload)

    offload = sub.add_parser(
        "offload",
        help="shed-point comparison: host-only shedding vs a SmartNIC "
        "running the chain's offloadable prefix",
    )
    offload.add_argument(
        "--multipliers", default="0.5,1.0,2.0,3.0",
        help="offered-load multiples of nominal capacity",
    )
    offload.add_argument("--duration", type=float, default=0.1)
    offload.add_argument("--seed", type=int, default=1)
    offload.add_argument(
        "--json", metavar="OUT",
        help="also write the comparison points as stable JSON",
    )
    offload.set_defaults(func=cmd_offload)

    graph = sub.add_parser(
        "graph",
        help="load/validate a service-graph topology; show edges, "
        "chains, and the solved cross-service placement",
    )
    graph.add_argument(
        "spec", nargs="?",
        help="topology spec JSON (see docs/graphs.md); omit to use "
        "a built-in demo graph",
    )
    graph.add_argument(
        "--demo", choices=["bookinfo", "hotel-mesh"],
        default="bookinfo",
        help="built-in graph to use when no spec is given",
    )
    graph.add_argument(
        "--strategy",
        choices=["software", "inapp", "offload", "scaleout"],
        default="software",
    )
    graph.add_argument(
        "--machines", type=int, default=4,
        help="size of the machine pool for the placement solve",
    )
    graph.add_argument(
        "--no-place", action="store_true",
        help="validate and lint only; skip the placement solve",
    )
    graph.add_argument(
        "--check", action="store_true",
        help="run the interprocedural analyzer (ADN600-ADN606): "
        "propagate abstract field environments across edges, bound "
        "retry amplification per path, check deadline budgets, "
        "breaker coverage, fate coherence, and cross-service state",
    )
    graph.add_argument(
        "--fail-on", choices=["error", "warning", "hint"],
        default="error",
        help="exit nonzero when any lint finding is at least this severe "
        "(chain errors always fail)",
    )
    graph.add_argument("--format", choices=["text", "json"], default="text")
    add_fields(graph)
    graph.set_defaults(func=cmd_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AdnError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
