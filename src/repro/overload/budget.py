"""Client-side overload protection: retry budgets and circuit breaking.

Retries convert transient slowness into load amplification: a server at
1.1x capacity times out a fraction of calls, each timeout re-issues, the
effective offered load rises, more calls time out — the metastable
retry storm. Two mechanisms bound the blast radius:

* :class:`RetryBudget` — a token bucket in the gRPC/Envoy style: each
  *logical* call deposits ``ratio`` tokens, each retry spends one whole
  token. Long-run retries are thereby capped at ``ratio`` of calls
  (e.g. 10%), while ``min_tokens`` lets a cold client ride out an
  isolated blip.
* :class:`CircuitBreaker` — closed → open → half-open. Consecutive
  failures trip it open; while open every call is answered locally
  (``CircuitOpen``) at zero network/server cost; after ``open_ms`` it
  goes half-open and admits exactly ``half_open_probes`` probe calls —
  all must succeed to re-close, any failure re-opens. Which calls
  become probes is deterministic (the first N to arrive), so seeded
  runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # annotation-only, see admission.py on the cycle
    from ..sim.engine import Simulator

#: ``aborted_by`` token for a breaker short-circuit
CIRCUIT_OPEN = "CircuitOpen"


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Token-bucket retry budget (retries <= ~ratio of logical calls)."""

    #: tokens deposited per logical call; one retry costs one token
    ratio: float = 0.1
    #: initial balance (and floor of the cap): lets a fresh client retry
    #: through an isolated failure before any deposits accrue
    min_tokens: float = 10.0
    #: balance cap, so a long quiet period cannot bank an unbounded
    #: burst of retries
    max_tokens: float = 100.0


class RetryBudget:
    """Deterministic token bucket gating retries."""

    def __init__(self, config: Optional[RetryBudgetConfig] = None):
        self.config = config or RetryBudgetConfig()
        self.tokens = min(self.config.min_tokens, self.config.max_tokens)
        self.deposits = 0
        self.spent = 0
        self.exhausted = 0

    def on_call(self) -> None:
        """A logical call was issued: deposit ``ratio`` tokens."""
        self.deposits += 1
        self.tokens = min(
            self.config.max_tokens, self.tokens + self.config.ratio
        )

    def try_spend(self) -> bool:
        """Spend one token for a retry; False = budget exhausted (the
        caller must give up instead of amplifying)."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Knobs for the 3-state breaker."""

    #: consecutive failures that trip closed -> open
    failure_threshold: int = 5
    #: how long the breaker stays open before probing
    open_ms: float = 20.0
    #: probes admitted in half-open; all must succeed to close
    half_open_probes: int = 1
    seed: int = 0


class CircuitBreaker:
    """closed → open → half-open with deterministic probes."""

    def __init__(self, sim: Simulator, policy: Optional[CircuitBreakerPolicy] = None):
        self.sim = sim
        self.policy = policy or CircuitBreakerPolicy()
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.short_circuited = 0
        self.opens = 0
        self.closes = 0
        self.transitions = []  # (at_s, state) history

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self.sim.now - self._opened_at >= self.policy.open_ms * 1e-3:
            return "half-open"
        return "open"

    def _transition(self, state: str) -> None:
        self.transitions.append((self.sim.now, state))

    def allow(self) -> bool:
        """May this logical call go out? ``False`` means answer it
        locally with :data:`CIRCUIT_OPEN` — record nothing afterwards."""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open":
            # admit up to half_open_probes concurrent probes; everything
            # else keeps short-circuiting until the probes decide
            if self._probes_in_flight < self.policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.short_circuited += 1
            return False
        self.short_circuited += 1
        return False

    def record(self, ok: bool) -> None:
        """Outcome of a call previously admitted by :meth:`allow`."""
        if self._opened_at is not None:
            # a probe (or a straggler from before the trip) came back
            if self._probes_in_flight > 0:
                self._probes_in_flight -= 1
            if not ok:
                # failed probe: re-open, restart the cool-down clock
                self._opened_at = self.sim.now
                self._probe_successes = 0
                self.opens += 1
                self._transition("open")
                return
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_probes:
                self._opened_at = None
                self._probe_successes = 0
                self._consecutive_failures = 0
                self.closes += 1
                self._transition("closed")
            return
        if ok:
            self._consecutive_failures = 0
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.policy.failure_threshold:
            self._opened_at = self.sim.now
            self._probe_successes = 0
            self._probes_in_flight = 0
            self.opens += 1
            self._transition("open")
