"""Overload control & graceful degradation (the PR-5 subsystem).

ADN's premise is that the application-defined chain should degrade
gracefully under load — shed early, shed cheap, keep goodput flat —
instead of collapsing the way measured proxy chains do. This package
closes that control loop end to end:

1. **bounded queues** (:mod:`repro.sim.resources`) — explicit rejects
   (:data:`QUEUE_FULL`) instead of silent infinite waiting;
2. **server-side admission control** (:mod:`.admission`) — CoDel-style
   delay shedding plus utilization-triggered probabilistic shedding
   (:data:`SHED`), priority-aware, installable per-processor and via
   the stdlib ``AdmissionControl`` element;
3. **client-side protection** (:mod:`.budget`) — a token-bucket retry
   budget and a 3-state circuit breaker (:data:`CIRCUIT_OPEN`) layered
   onto :class:`~repro.runtime.filters.RetryPolicy`;
4. **deadline propagation** — the remaining deadline budget rides the
   minimal ADN header (:data:`DEADLINE_FIELD`) so downstream processors
   drop already-expired RPCs (:data:`DEADLINE_EXPIRED`) *before*
   spending service time.

The escalation order is: autoscale before shedding, shed before
collapse (wired into :mod:`repro.control.scaling`).
"""

from __future__ import annotations

from .admission import (
    SHED,
    PRIORITY_FIELD,
    AdmissionConfig,
    AdmissionController,
    ShedDecision,
    admission_from_meta,
)
from .budget import (
    CIRCUIT_OPEN,
    CircuitBreaker,
    CircuitBreakerPolicy,
    RetryBudget,
    RetryBudgetConfig,
)

#: ``aborted_by`` token for a bounded-queue reject
QUEUE_FULL = "QueueFull"

#: ``aborted_by`` token for a processor dropping an already-expired RPC
DEADLINE_EXPIRED = "DeadlineExpired"

#: wire-header field name carrying the remaining deadline budget (ms)
DEADLINE_FIELD = "deadline_ms"

#: every overload-control abort reason — explicit, cheap rejects that
#: are NOT retryable by default (retrying a shed amplifies the storm)
OVERLOAD_ABORTS = frozenset(
    {SHED, QUEUE_FULL, CIRCUIT_OPEN, DEADLINE_EXPIRED}
)

__all__ = [
    "SHED",
    "QUEUE_FULL",
    "CIRCUIT_OPEN",
    "DEADLINE_EXPIRED",
    "DEADLINE_FIELD",
    "OVERLOAD_ABORTS",
    "PRIORITY_FIELD",
    "AdmissionConfig",
    "AdmissionController",
    "ShedDecision",
    "admission_from_meta",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "RetryBudget",
    "RetryBudgetConfig",
]
