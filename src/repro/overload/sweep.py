"""The overload goodput sweep (benchmark, CLI demo, smoke test).

The experiment the related work motivates (*Metastable Failures in
Distributed Systems*, gRPC/Envoy retry-budget lore): drive an RPC path
at 0.5x..3x its capacity and watch what the stack does past saturation.

* the **baseline** stack retries timeouts with no budget, queues without
  bound, and propagates no deadlines. Past ~1x, queueing delay exceeds
  the per-attempt timeout, every timeout re-offers the work, the server
  burns service time on requests whose callers are long gone — goodput
  collapses toward zero while CPU stays pegged (the metastable retry
  storm);
* the **protected** stack bounds the queue, sheds by CoDel + utilization
  (:class:`~repro.overload.AdmissionController`), spends retries from a
  token-bucket budget, and propagates deadlines so expired work is
  dropped before service. Its goodput flattens at capacity instead of
  collapsing, and admitted RPCs keep bounded latency.

Everything is seeded: same config, same curve, every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.compiler import AdnCompiler
from ..dsl.ast_nodes import ChainDecl
from ..dsl.functions import FunctionRegistry
from ..dsl.schema import FieldType, RpcSchema
from ..dsl.stdlib import load_stdlib
from ..platforms import Platform
from ..runtime.filters import RetryPolicy
from ..runtime.message import reset_rpc_ids
from ..runtime.mrpc import AdnMrpcStack
from ..runtime.processor import PlacementPlan, PlacementSegment
from ..sim.cluster import two_machine_cluster
from ..sim.costmodel import CostModel
from ..sim.engine import Simulator
from .admission import AdmissionConfig
from .budget import CircuitBreakerPolicy, RetryBudgetConfig

SWEEP_SCHEMA = RpcSchema.of(
    "overload",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)


@dataclass(frozen=True)
class SweepConfig:
    """One sweep's shape. ``service_cost_us`` inflates the per-element
    dispatch cost so the path saturates around ``capacity_rps`` and the
    whole sweep stays cheap to simulate."""

    elements: Tuple[str, ...] = ("Logging",)
    #: per-element dispatch cost (us) — the knob that sets capacity.
    #: Elements run on the request AND the response path, so one RPC
    #: costs ~2x this plus a few us of transport on the engine thread.
    service_cost_us: float = 36.0
    #: nominal capacity the multipliers are relative to (~80% of the
    #: true saturation point with the default service cost)
    capacity_rps: float = 10_000.0
    multipliers: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
    duration_s: float = 0.25
    drain_s: float = 0.05
    seed: int = 1
    # protection knobs
    queue_limit: int = 48
    target_delay_ms: float = 2.0
    codel_interval_ms: float = 10.0
    deadline_budget_ms: float = 20.0
    retry_ratio: float = 0.1
    #: the breaker exists to answer a *dead* downstream locally; under
    #: mere overload the admission controller is the right shedder, so
    #: the trip threshold sits far above any partial-shed burst
    breaker_failure_threshold: int = 100
    breaker_open_ms: float = 2.0
    # shared retry shape
    max_attempts: int = 4
    per_attempt_timeout_ms: float = 5.0


@dataclass
class SweepPoint:
    """One (stack, offered-load) cell of the goodput curve."""

    protected: bool
    multiplier: float
    offered_rps: float
    issued: int
    ok: int
    aborted: int
    goodput_rps: float
    #: median latency of *successful* RPCs (the admitted ones), ms
    p50_ok_ms: float
    amplification: float
    aborted_by: Dict[str, int] = field(default_factory=dict)
    sheds: int = 0
    queue_rejects: int = 0
    deadline_drops: int = 0


def _retry_policy(config: SweepConfig, protected: bool) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=config.max_attempts,
        per_attempt_timeout_ms=config.per_attempt_timeout_ms,
        base_backoff_ms=0.5,
        backoff_multiplier=2.0,
        max_backoff_ms=2.0,
        jitter=0.5,
        deadline_budget_ms=(
            config.deadline_budget_ms if protected else None
        ),
        seed=config.seed,
    )


def build_sweep_stack(
    sim: Simulator,
    protected: bool,
    config: Optional[SweepConfig] = None,
) -> AdnMrpcStack:
    """The path under test: the chain's elements on the *server* host
    (requests cross the wire before service, so deadline propagation has
    a hop to ride), service cost inflated per the config."""
    config = config or SweepConfig()
    registry = FunctionRegistry(rng=random.Random(config.seed))
    program = load_stdlib(schema=SWEEP_SCHEMA)
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=config.elements),
        program,
        SWEEP_SCHEMA,
    )
    costs = CostModel(element_dispatch_us=config.service_cost_us)
    cluster = two_machine_cluster(sim, costs=costs)
    placement = PlacementPlan(
        segments=[
            PlacementSegment(
                platform=Platform.MRPC,
                machine="server-host",
                elements=chain.element_order,
            )
        ],
        description="overload sweep: all elements server-side",
    )
    if protected:
        return AdnMrpcStack(
            sim,
            cluster,
            chain,
            SWEEP_SCHEMA,
            registry,
            plan=placement,
            retry_policy=_retry_policy(config, protected=True),
            queue_limit=config.queue_limit,
            admission=AdmissionConfig(
                target_delay_ms=config.target_delay_ms,
                interval_ms=config.codel_interval_ms,
                seed=config.seed,
            ),
            retry_budget=RetryBudgetConfig(ratio=config.retry_ratio),
            circuit_breaker=CircuitBreakerPolicy(
                failure_threshold=config.breaker_failure_threshold,
                open_ms=config.breaker_open_ms,
                seed=config.seed,
            ),
        )
    return AdnMrpcStack(
        sim,
        cluster,
        chain,
        SWEEP_SCHEMA,
        registry,
        plan=placement,
        retry_policy=_retry_policy(config, protected=False),
    )


def run_overload_point(
    multiplier: float,
    protected: bool,
    config: Optional[SweepConfig] = None,
) -> SweepPoint:
    """One fresh simulation at ``multiplier`` x nominal capacity."""
    config = config or SweepConfig()
    reset_rpc_ids()
    sim = Simulator()
    stack = build_sweep_stack(sim, protected, config)
    offered_rps = multiplier * config.capacity_rps
    rng = random.Random(config.seed)

    point = SweepPoint(
        protected=protected,
        multiplier=multiplier,
        offered_rps=offered_rps,
        issued=0,
        ok=0,
        aborted=0,
        goodput_rps=0.0,
        p50_ok_ms=0.0,
        amplification=0.0,
    )
    ok_latencies: List[float] = []

    def one(fields: Dict[str, object]):
        outcome = yield sim.process(stack.call(**fields))
        if outcome.ok:
            point.ok += 1
            ok_latencies.append(outcome.latency_s)
        else:
            point.aborted += 1
            reason = outcome.aborted_by or "unknown"
            point.aborted_by[reason] = point.aborted_by.get(reason, 0) + 1

    def arrivals():
        started = sim.now
        while sim.now - started < config.duration_s:
            yield sim.timeout(rng.expovariate(offered_rps))
            point.issued += 1
            sim.process(
                one(
                    {
                        "payload": b"x" * 64,
                        "username": f"user{rng.randrange(8)}",
                        "obj_id": rng.randrange(1 << 12),
                    }
                )
            )

    sim.process(arrivals())
    sim.run(until=sim.now + config.duration_s + config.drain_s)

    point.goodput_rps = point.ok / config.duration_s
    if ok_latencies:
        ok_latencies.sort()
        point.p50_ok_ms = ok_latencies[len(ok_latencies) // 2] * 1e3
    if stack.retry_stats is not None:
        point.amplification = stack.retry_stats.amplification()
    point.sheds = sum(p.rpcs_shed for p in stack.processors)
    point.queue_rejects = sum(
        p.rpcs_queue_rejected for p in stack.processors
    )
    point.deadline_drops = (
        sum(p.rpcs_deadline_expired for p in stack.processors)
        + stack.deadline_expired_at_server
    )
    return point


def run_overload_sweep(
    protected: bool, config: Optional[SweepConfig] = None
) -> List[SweepPoint]:
    config = config or SweepConfig()
    return [
        run_overload_point(multiplier, protected, config)
        for multiplier in config.multipliers
    ]


def format_sweep(points: List[SweepPoint]) -> str:
    """A paper-style text table of one stack's curve."""
    label = "protected" if points and points[0].protected else "baseline"
    lines = [
        f"goodput curve ({label})",
        f"{'offered x':>10s} {'offered rps':>12s} {'goodput rps':>12s} "
        f"{'p50 ok ms':>10s} {'amplif':>7s} {'sheds':>7s} {'qfull':>6s} "
        f"{'expired':>8s}",
    ]
    for point in points:
        lines.append(
            f"{point.multiplier:>10.1f} {point.offered_rps:>12.0f} "
            f"{point.goodput_rps:>12.0f} {point.p50_ok_ms:>10.2f} "
            f"{point.amplification:>7.2f} {point.sheds:>7d} "
            f"{point.queue_rejects:>6d} {point.deadline_drops:>8d}"
        )
    return "\n".join(lines)
