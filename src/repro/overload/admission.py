"""Server-side admission control: shed early, shed cheap.

A saturated processor has two honest options: queue (latency grows
without bound, every queued RPC still consumes full service time when
its turn comes) or shed (a fixed, tiny reject cost now). The related
work — *Dissecting Service Mesh Overheads*, *Sidecars on the Central
Lane* — measures proxy chains choosing the first option and collapsing;
this module implements the second.

Two shedding mechanisms compose in :class:`AdmissionController`:

* **CoDel-style delay shedding** — shed when the processor's estimated
  queueing delay (sojourn time) has stayed above ``target_delay_ms``
  for a full ``interval_ms``, then keep shedding at increasing
  frequency (``interval / sqrt(drop_count)``) until the delay dips back
  under the target. Acting on *delay* rather than queue length makes
  the threshold service-time independent.
* **utilization-triggered probabilistic shedding** — above
  ``util_threshold`` utilization, shed a fraction of traffic that ramps
  linearly toward ``max_shed_probability`` at 100% utilization, drawn
  from a seeded RNG (runs replay exactly).

Both mechanisms respect **priority**: requests whose ``priority`` field
is at or above ``priority_threshold`` bypass probabilistic shedding and
only fall to CoDel when the delay exceeds twice the target — sheds
prefer low-priority traffic.

For multi-service graphs (repro.graph) the probabilistic component can
be made **fate-coherent**: with ``hash_fields`` set, the shed draw is a
deterministic hash of those request fields instead of an RNG sample, so
every controller in the mesh makes the *same* admit/shed decision for
all sub-RPCs of one end-to-end request (they share the hashed fields
through fan-out). Without this, independent per-edge draws compound —
a request admitted at two of three parallel edges and shed at the third
wastes the first two — which is why production meshes key shedding on
request identity (WeChat's DAGOR admits by user-id bucket for exactly
this reason).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # annotation-only: keeps repro.overload import-light
    # (runtime.mrpc imports this package, and repro.sim's package init
    # reaches runtime — a runtime import here would close that cycle)
    from ..sim.engine import Simulator
    from ..sim.resources import Resource

#: ``aborted_by`` / drop-reason token for an admission-control shed
SHED = "Shed"

#: the RPC field carrying the request's priority class (higher = more
#: important; absent = 0, the first to shed)
PRIORITY_FIELD = "priority"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one processor's admission controller."""

    #: CoDel target sojourn: shed once estimated queueing delay has
    #: exceeded this for a full interval
    target_delay_ms: float = 2.0
    #: how long the delay must stay above target before the first shed
    interval_ms: float = 20.0
    #: utilization above which probabilistic shedding engages
    util_threshold: float = 0.95
    #: shed probability reached as utilization hits 1.0
    max_shed_probability: float = 0.5
    #: requests with priority >= this dodge probabilistic shedding and
    #: get a 2x delay allowance before CoDel sheds them
    priority_threshold: int = 1
    #: minimum window for a utilization refresh: shorter spans saturate
    #: to ~1.0 whenever anything is in service (one busy microsecond is
    #: "100% utilized"), which would shed spuriously at low load
    util_window_ms: float = 5.0
    #: fate-coherent shedding: when set, the probabilistic draw is a
    #: deterministic hash of these request fields (salted by ``seed``),
    #: so every controller sharing the config sheds the *same* requests
    #: — sub-RPCs of one logical request live or die together instead of
    #: compounding independent per-edge shed probabilities
    hash_fields: Tuple[str, ...] = ()
    seed: int = 0


@dataclass
class ShedDecision:
    """One admission verdict, for observability."""

    at_s: float
    admitted: bool
    reason: str  # "" | "codel" | "utilization"
    sojourn_ms: float
    priority: int


class AdmissionController:
    """Per-processor admission control over one :class:`Resource`.

    ``admit(rpc)`` returns ``None`` to admit or :data:`SHED` when the
    request should be rejected *before* queueing or spending service
    time. Deterministic: the probabilistic component uses a seeded RNG
    and the CoDel component is pure state-machine over simulated time.
    """

    def __init__(
        self,
        sim: Simulator,
        resource: Optional[Resource],
        config: Optional[AdmissionConfig] = None,
    ):
        self.sim = sim
        self.resource = resource
        self.config = config or AdmissionConfig()
        self._rng = random.Random(self.config.seed)
        # CoDel state
        self._first_above_at: Optional[float] = None
        self._dropping = False
        self._drop_next_at = 0.0
        self._drop_count = 0
        # utilization tracking (windowed, fed by engage()/observe)
        self._last_busy = 0.0
        self._last_util_at = sim.now
        self.utilization = 0.0
        #: autoscaler hook: while True, probabilistic shedding stays on
        #: regardless of the measured utilization (the scaler saw
        #: saturation it cannot scale away)
        self.engaged = False
        # observability
        self.sheds = 0
        self.sheds_by_reason = {"codel": 0, "utilization": 0}
        self.admitted = 0
        self.decisions: List[ShedDecision] = []
        self.record_decisions = False

    # -- signals -----------------------------------------------------------

    def sojourn_s(self) -> float:
        """The controller's delay signal: the resource's instantaneous
        estimated queueing delay."""
        if self.resource is None:
            return 0.0
        return self.resource.estimated_sojourn_s()

    def observe_utilization(self) -> float:
        """Refresh the windowed utilization estimate (call on any cadence
        — telemetry interval, admission attempts; windows self-define)."""
        if self.resource is None:
            return 0.0
        elapsed = self.sim.now - self._last_util_at
        if elapsed < self.config.util_window_ms * 1e-3:
            return self.utilization
        busy = self.resource.busy_time
        window_capacity = elapsed * self.resource.capacity
        self.utilization = (busy - self._last_busy) / window_capacity
        self._last_busy = busy
        self._last_util_at = self.sim.now
        return self.utilization

    def engage(self, on: bool = True) -> None:
        """Force probabilistic shedding on (autoscaler at max capacity
        with the overload signal still high) or release it."""
        self.engaged = on

    # -- the verdict -------------------------------------------------------

    def admit(self, rpc: dict) -> Optional[str]:
        """None = admitted; :data:`SHED` = reject before service time."""
        priority = int(rpc.get(PRIORITY_FIELD) or 0)
        high_priority = priority >= self.config.priority_threshold
        sojourn = self.sojourn_s()
        reason = ""
        if self._codel_wants_shed(sojourn, high_priority):
            reason = "codel"
        elif not high_priority and self._utilization_wants_shed(rpc):
            reason = "utilization"
        if reason:
            self.sheds += 1
            self.sheds_by_reason[reason] += 1
        else:
            self.admitted += 1
        if self.record_decisions:
            self.decisions.append(
                ShedDecision(
                    at_s=self.sim.now,
                    admitted=not reason,
                    reason=reason,
                    sojourn_ms=sojourn * 1e3,
                    priority=priority,
                )
            )
        return SHED if reason else None

    # -- CoDel -------------------------------------------------------------

    def _codel_wants_shed(self, sojourn_s: float, high_priority: bool) -> bool:
        target_s = self.config.target_delay_ms * 1e-3
        if high_priority:
            target_s *= 2.0  # sheds prefer low-priority traffic
        interval_s = self.config.interval_ms * 1e-3
        now = self.sim.now
        if sojourn_s < target_s:
            # back under target: leave dropping state, reset the clock
            self._first_above_at = None
            self._dropping = False
            self._drop_count = 0
            return False
        if self._first_above_at is None:
            self._first_above_at = now
            return False
        if not self._dropping:
            if now - self._first_above_at < interval_s:
                return False  # above target, but not for long enough yet
            self._dropping = True
            self._drop_count = 1
            self._drop_next_at = now + interval_s / math.sqrt(
                self._drop_count + 1
            )
            return True
        if now >= self._drop_next_at:
            self._drop_count += 1
            self._drop_next_at = now + interval_s / math.sqrt(
                self._drop_count + 1
            )
            return True
        return False

    # -- utilization shedding ----------------------------------------------

    def _utilization_wants_shed(self, rpc: dict) -> bool:
        threshold = self.config.util_threshold
        if self.engaged:
            utilization = max(self.utilization, 1.0)
        else:
            utilization = self.observe_utilization()
            if utilization <= threshold:
                return False
        span = max(1e-9, 1.0 - threshold)
        fraction = min(1.0, (utilization - threshold) / span)
        probability = fraction * self.config.max_shed_probability
        return self._shed_draw(rpc) < probability

    def _shed_draw(self, rpc: dict) -> float:
        """The uniform sample compared against the shed probability.
        Fate-coherent when ``hash_fields`` is set and the request
        carries any of them (crc32 — stable across processes, unlike
        builtin ``hash``); the seeded RNG otherwise."""
        fields = self.config.hash_fields
        if fields:
            values = tuple(rpc.get(name) for name in fields)
            if any(value is not None for value in values):
                key = repr((self.config.seed,) + values).encode()
                return zlib.crc32(key) / 0x100000000
        return self._rng.random()


def admission_from_meta(
    sim: Simulator, resource: Optional[Resource], meta: dict
) -> Optional[AdmissionController]:
    """Build a controller from an element's ``meta`` block when it asks
    for one (``meta { admission_control: true; ... }``) — how the stdlib
    ``AdmissionControl`` element installs server-side shedding on
    whatever processor hosts it."""
    if not meta.get("admission_control"):
        return None
    defaults = AdmissionConfig()
    config = AdmissionConfig(
        target_delay_ms=float(
            meta.get("target_delay_ms", defaults.target_delay_ms)
        ),
        interval_ms=float(meta.get("interval_ms", defaults.interval_ms)),
        util_threshold=float(
            meta.get("util_threshold", defaults.util_threshold)
        ),
        max_shed_probability=float(
            meta.get("max_shed_probability", defaults.max_shed_probability)
        ),
        priority_threshold=int(
            meta.get("priority", defaults.priority_threshold)
        ),
        seed=int(meta.get("seed", defaults.seed)),
    )
    return AdmissionController(sim, resource, config)
