"""Execution platforms for ADN processors.

The paper (§3, Figure 2) considers element placement in the application's
RPC library, in the OS kernel (eBPF), in a separate user-space process
(sidecar / mRPC service), on a SmartNIC, or on a programmable switch (P4).
Each placement implies a code-generation backend and a set of legality
constraints enforced by :mod:`repro.compiler.backends`.
"""

from __future__ import annotations

import enum


class Platform(enum.Enum):
    """Where an element's compiled code executes."""

    RPC_LIB = "rpc_lib"  # inside the application's (modified) RPC library
    MRPC = "mrpc"  # the mRPC managed-service process (paper's prototype)
    KERNEL_EBPF = "kernel_ebpf"  # in-kernel eBPF program
    SIDECAR = "sidecar"  # separate user-space proxy process
    SMARTNIC = "smartnic"  # on-path SmartNIC cores
    SWITCH_P4 = "switch_p4"  # programmable switch pipeline

    @property
    def is_hardware(self) -> bool:
        return self in (Platform.SMARTNIC, Platform.SWITCH_P4)

    @property
    def in_app_binary(self) -> bool:
        """True when code shares a trust domain with the application
        (relevant for ``mandatory``/``outside_app`` policies, §3)."""
        return self is Platform.RPC_LIB

    @property
    def backend_name(self) -> str:
        """The code-generation backend used for this platform."""
        return {
            Platform.RPC_LIB: "python",
            Platform.MRPC: "python",
            Platform.SIDECAR: "wasm",
            Platform.KERNEL_EBPF: "ebpf",
            # the NIC runs the eBPF instruction subset but under its own
            # capacity descriptor (on-card SRAM, registers) — a distinct
            # backend, not an alias of the kernel's
            Platform.SMARTNIC: "nic",
            Platform.SWITCH_P4: "p4",
        }[self]

    @property
    def capabilities(self):
        """Capability descriptor (stages, table bytes, registers) for
        hardware-ish platforms; None for software platforms."""
        from .offload.device import device_profile_for

        return device_profile_for(self)


#: Platforms able to run arbitrary (software) element logic.
SOFTWARE_PLATFORMS = frozenset(
    {Platform.RPC_LIB, Platform.MRPC, Platform.SIDECAR}
)

#: Platforms with restricted programming models.
RESTRICTED_PLATFORMS = frozenset(
    {Platform.KERNEL_EBPF, Platform.SMARTNIC, Platform.SWITCH_P4}
)
