"""Comparison baselines: gRPC+Envoy service mesh, plain gRPC, and
hand-written mRPC engine modules."""

from .envoy import EnvoyMeshStack, EnvoySidecar
from .grpc_stack import GrpcStack, tcp_wire_bytes
from .hand_mrpc import (
    HAND_MODULES,
    RUST_LOC,
    AclConfig,
    AclRule,
    FaultConfig,
    HandAclModule,
    HandFaultModule,
    HandLoggingModule,
    LoggingConfig,
    hand_module_loc,
)

__all__ = [
    "AclConfig",
    "AclRule",
    "EnvoyMeshStack",
    "EnvoySidecar",
    "FaultConfig",
    "GrpcStack",
    "HAND_MODULES",
    "HandAclModule",
    "HandFaultModule",
    "HandLoggingModule",
    "LoggingConfig",
    "RUST_LOC",
    "hand_module_loc",
    "tcp_wire_bytes",
]
