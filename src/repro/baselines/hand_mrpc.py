"""Hand-written mRPC engine modules — the paper's third comparison
point (§6): "The mRPC modules were written by mRPC developers for high
performance."

These are written the way such engine modules are written in practice:
explicit configuration objects, buffering, input validation, error
handling, counters — no generated genericity. They behave identically
to the ADN-generated modules (tests assert this) but skip generic tuple
materialization, which is why the generated code trails them by 3–12%.

``RUST_LOC`` records the line counts of the original Rust mRPC engine
modules the paper compares against (engine + module + config + proto
descriptor boilerplate per mRPC's repository layout); the DSL sources
are tens of lines — the two-orders-of-magnitude gap in the abstract.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

Row = Dict[str, object]

#: Approximate Rust LoC for the paper's hand-written mRPC engine modules
#: (engine scaffold + module logic + config + build plumbing).
RUST_LOC: Dict[str, int] = {
    "Logging": 510,
    "Acl": 620,
    "Fault": 390,
}


@dataclass
class LoggingConfig:
    """Configuration for the hand-written logging engine."""

    max_buffered_entries: int = 4096
    flush_every: int = 256
    record_payload: bool = True


class HandLoggingModule:
    """Hand-optimized logging: append-only ring buffer, batched flush.

    Matches the stdlib ``Logging`` element: records every request and
    response, forwards everything unchanged.
    """

    NAME = "Logging"

    def __init__(
        self,
        config: Optional[LoggingConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or LoggingConfig()
        self.clock = clock or time.monotonic
        self.buffer: List[Tuple[float, str, int, object]] = []
        self.flushed: List[Tuple[float, str, int, object]] = []
        self.dropped_entries = 0
        self.records_written = 0

    def _append(self, direction: str, rpc_id: int, payload: object) -> None:
        if len(self.buffer) >= self.config.max_buffered_entries:
            # never block the data path on the log sink
            self.dropped_entries += 1
            return
        entry = (
            self.clock(),
            direction,
            rpc_id,
            payload if self.config.record_payload else None,
        )
        self.buffer.append(entry)
        self.records_written += 1
        if len(self.buffer) >= self.config.flush_every:
            self.flush()

    def flush(self) -> int:
        """Drain the buffer to the sink; returns entries flushed."""
        count = len(self.buffer)
        self.flushed.extend(self.buffer)
        self.buffer.clear()
        return count

    def process(self, row: Row, kind: str) -> List[Row]:
        rpc_id = row.get("rpc_id")
        if not isinstance(rpc_id, int):
            rpc_id = -1
        self._append(kind, rpc_id, row.get("payload"))
        return [row]

    def log_entries(self) -> List[Tuple[float, str, int, object]]:
        return self.flushed + self.buffer


@dataclass
class AclRule:
    """One access-control rule."""

    username: str
    permission: str


@dataclass
class AclConfig:
    """Configuration for the hand-written ACL engine."""

    rules: List[AclRule] = field(
        default_factory=lambda: [
            AclRule("usr1", "R"),
            AclRule("usr2", "W"),
        ]
    )
    required_permission: str = "W"
    default_deny: bool = True


class HandAclModule:
    """Hand-optimized ACL: direct hash-map permission lookup.

    Matches the stdlib ``Acl`` element: requests from users without the
    required permission are dropped; responses pass through.
    """

    NAME = "Acl"

    def __init__(self, config: Optional[AclConfig] = None):
        self.config = config or AclConfig()
        self._permissions: Dict[str, str] = {}
        for rule in self.config.rules:
            self._permissions[rule.username] = rule.permission
        self.allowed = 0
        self.denied = 0

    def add_rule(self, username: str, permission: str) -> None:
        self._permissions[username] = permission

    def remove_rule(self, username: str) -> bool:
        return self._permissions.pop(username, None) is not None

    def _authorize(self, username: object) -> bool:
        if not isinstance(username, str):
            return not self.config.default_deny
        permission = self._permissions.get(username)
        if permission is None:
            return not self.config.default_deny
        return permission == self.config.required_permission

    def process(self, row: Row, kind: str) -> List[Row]:
        if kind != "request":
            return [row]
        if self._authorize(row.get("username")):
            self.allowed += 1
            return [row]
        self.denied += 1
        return []


@dataclass
class FaultConfig:
    """Configuration for the hand-written fault-injection engine."""

    abort_probability: float = 0.02
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.abort_probability <= 1.0:
            raise ValueError(
                f"abort_probability must be in [0, 1], got "
                f"{self.abort_probability}"
            )


class HandFaultModule:
    """Hand-optimized fault injection: one RNG draw per request.

    Matches the stdlib ``Fault`` element: aborts requests with the
    configured probability; responses pass through.
    """

    NAME = "Fault"

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        self.config = config or FaultConfig()
        if rng is not None:
            self.rng = rng
        elif self.config.seed is not None:
            self.rng = random.Random(self.config.seed)
        else:
            self.rng = random.Random()
        self.injected = 0
        self.passed = 0

    def process(self, row: Row, kind: str) -> List[Row]:
        if kind != "request":
            return [row]
        if self.rng.random() < self.config.abort_probability:
            self.injected += 1
            return []
        self.passed += 1
        return [row]


#: Factory table: element name → hand module constructor.
HAND_MODULES = {
    "Logging": HandLoggingModule,
    "Acl": HandAclModule,
    "Fault": HandFaultModule,
}


def hand_module_loc(name: str) -> int:
    """Non-blank source lines of the hand-written Python module above —
    used alongside RUST_LOC in the LoC benchmark."""
    import inspect

    cls = HAND_MODULES[name]
    pieces = [inspect.getsource(cls)]
    config_cls = {
        "Logging": LoggingConfig,
        "Acl": AclConfig,
        "Fault": FaultConfig,
    }[name]
    pieces.append(inspect.getsource(config_cls))
    if name == "Acl":
        pieces.append(inspect.getsource(AclRule))
    return sum(
        1
        for piece in pieces
        for line in piece.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
