"""Plain gRPC-over-HTTP/2-over-TCP stack (no mesh).

The conventional layered path the paper's §2 describes, *without*
sidecars: application ⇄ protobuf ⇄ HTTP/2 framing ⇄ kernel TCP ⇄ wire.
Used as the reference point for the mesh-overhead experiment (the paper
cites meshes adding 2.7–7.1x latency on top of this baseline) and as the
shared machinery for the Envoy mesh stack.

Messages are really serialized (ProtoCodec + HTTP/2 frames): byte counts
on the wire are measured.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from ..dsl.schema import RpcSchema
from ..net.http2 import (
    decode_grpc_message,
    default_grpc_headers,
    encode_grpc_message,
)
from ..net.serialization import ProtoCodec
from ..net.tcp import DEFAULT_MSS, SEGMENT_OVERHEAD
from ..sim.cluster import Cluster
from ..sim.engine import US, Simulator
from ..sim.resources import Resource
from ..runtime.message import Row, RpcOutcome, make_request, make_response


def tcp_wire_bytes(stream_bytes: int) -> int:
    """On-the-wire bytes for a burst of HTTP/2 stream bytes over TCP."""
    segments = max(1, -(-stream_bytes // DEFAULT_MSS))
    return stream_bytes + segments * SEGMENT_OVERHEAD


class GrpcStack:
    """Runnable plain-gRPC path: ``stack.call(**fields)``."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        schema: RpcSchema,
        client_service: str = "A",
        server_service: str = "B",
    ):
        self.sim = sim
        self.cluster = cluster
        self.costs = cluster.costs
        self.schema = schema
        self.codec = ProtoCodec(schema)
        self.client_service = client_service
        self.server_service = server_service
        self.client_app: Resource = cluster.machine("client-host").thread(
            "client-app"
        )
        self.server_app: Resource = cluster.machine("server-host").thread(
            "server-app"
        )
        self.wire_bytes_total = 0

    # -- encoding ------------------------------------------------------------

    def encode(self, message: Row) -> bytes:
        app_fields = {
            name: message.get(name)
            for name in self.schema.application_field_names()
        }
        payload = self.codec.encode(app_fields)
        headers = default_grpc_headers(
            str(message["method"]), str(message["dst"])
        )
        headers["x-rpc-id"] = str(message["rpc_id"])
        headers["x-kind"] = str(message["kind"])
        headers["x-status"] = str(message["status"])
        # the §2 workaround: application identifiers are stuffed into
        # HTTP headers so middleboxes can read them
        if message.get("username") is not None:
            headers["x-username"] = str(message["username"])
        if message.get("obj_id") is not None:
            headers["x-obj-id"] = str(message["obj_id"])
        return encode_grpc_message(headers, payload)

    def decode(self, data: bytes) -> Tuple[Dict[str, str], Dict[str, object]]:
        headers, payload = decode_grpc_message(data)
        return headers, self.codec.decode(payload)

    # -- cost helpers -----------------------------------------------------------

    def _send_cpu_us(self, message: Row) -> float:
        size = len(self.codec.encode(
            {n: message.get(n) for n in self.schema.application_field_names()}
        ))
        return self.costs.grpc_send_cpu_us(size)

    def _recv_cpu_us(self, message: Row) -> float:
        size = len(self.codec.encode(
            {n: message.get(n) for n in self.schema.application_field_names()}
        ))
        return self.costs.grpc_recv_cpu_us(size)

    def _wire(self, encoded: bytes, hops: int = 1) -> Generator:
        wire = tcp_wire_bytes(len(encoded))
        self.wire_bytes_total += wire
        yield self.sim.timeout(self.costs.wire_us(wire, hops) * US)

    # -- the path -------------------------------------------------------------------

    def call(self, **fields: object) -> Generator:
        issued_at = self.sim.now
        request = make_request(
            self.schema,
            src=f"{self.client_service}.0",
            dst=self.server_service,
            **fields,
        )
        # client: serialize + frame + kernel send
        yield from self.client_app.use(
            (self.costs.client_issue_us + self._send_cpu_us(request)) * US
        )
        yield self.sim.timeout(self.costs.kernel_wakeup_extra_us * US)
        encoded = self.encode(request)
        yield from self._wire(encoded)
        # server: kernel recv + deserialize + handle
        _headers, app_fields = self.decode(encoded)
        yield from self.server_app.use(
            (self._recv_cpu_us(request) + self.costs.app_logic_us) * US
        )
        yield self.sim.timeout(self.costs.kernel_wakeup_extra_us * US)
        response = make_response(request, **app_fields)
        # response path
        yield from self.server_app.use(self._send_cpu_us(response) * US)
        yield self.sim.timeout(self.costs.kernel_wakeup_extra_us * US)
        encoded_response = self.encode(response)
        yield from self._wire(encoded_response)
        yield from self.client_app.use(
            (self._recv_cpu_us(response) + self.costs.client_complete_us) * US
        )
        yield self.sim.timeout(self.costs.kernel_wakeup_extra_us * US)
        return RpcOutcome(
            request=request,
            response=response,
            issued_at=issued_at,
            completed_at=self.sim.now,
        )
