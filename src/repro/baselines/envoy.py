"""gRPC + Envoy sidecar mesh — the paper's comparison baseline (§6).

The full service-mesh packet path of Figure 1: the application's gRPC
stack emits HTTP/2-framed protobuf; iptables redirects it to a local
sidecar, which parses the protocol stack, runs its (general, knob-heavy)
filters, re-serializes, and forwards; the receiving host mirrors the
same dance. Four proxy traversals per RPC round trip.

Filters execute *functionally* via the same element semantics as ADN
(so an ACL denial really aborts and fault injection really drops), but
their cost is Envoy's: generic per-filter work plus payload marshalling
plus HTTP/2 parse/re-serialize per traversal — not the element's own
tight cost. That difference in where cost comes from *is* the paper's
argument.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from ..dsl.functions import FunctionRegistry
from ..dsl.schema import RpcSchema
from ..ir.interp import ElementInstance
from ..ir.nodes import ElementIR
from ..sim.cluster import Cluster
from ..sim.engine import US, Simulator
from ..sim.resources import Resource
from ..runtime.message import (
    Row,
    RpcOutcome,
    make_abort,
    make_request,
    make_response,
)
from .grpc_stack import GrpcStack, tcp_wire_bytes


class EnvoySidecar:
    """One sidecar proxy: worker threads + a functional filter chain."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        machine: str,
        filters: Sequence[ElementIR],
        registry: FunctionRegistry,
        wasm_filters: int = 0,
    ):
        self.sim = sim
        self.costs = cluster.costs
        self.machine = machine
        self.workers: Resource = cluster.machine(machine).thread(
            "envoy-worker", capacity=self.costs.envoy_workers
        )
        self.filters: List[Tuple[str, ElementInstance]] = [
            (ir.name, ElementInstance(ir, registry)) for ir in filters
        ]
        self.wasm_filters = wasm_filters
        self.traversals = 0

    def traverse(self, message: Row, kind: str, payload_size: int) -> Generator:
        """One directional pass through the proxy. Returns
        (message_or_None, dropped_by)."""
        self.traversals += 1
        cpu = self.costs.envoy_traversal_cpu_us(
            filters=len(self.filters),
            wasm_filters=self.wasm_filters,
            payload_bytes=payload_size,
        )
        yield from self.workers.use(cpu * US)
        dropped_by: Optional[str] = None
        current = dict(message)
        order = self.filters if kind == "request" else list(reversed(self.filters))
        for name, instance in order:
            outputs = instance.process(dict(current), kind)
            outputs = [
                {k: v for k, v in row.items() if isinstance(k, str)}
                for row in outputs
            ]
            if not outputs:
                if kind == "request":
                    dropped_by = name
                    break
                continue  # response drops degenerate to forwarding
            current = outputs[0]
        yield self.sim.timeout(self.costs.envoy_extra_latency_us * US)
        if dropped_by is not None:
            return None, dropped_by
        return current, None


class EnvoyMeshStack:
    """The full gRPC + dual-sidecar path: ``stack.call(**fields)``.

    ``client_filters`` / ``server_filters`` place each element's Envoy
    filter on the egress (client) or ingress (server) proxy, mirroring
    how meshes deploy outbound vs. inbound policies.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        schema: RpcSchema,
        client_filters: Sequence[ElementIR],
        server_filters: Sequence[ElementIR],
        registry: FunctionRegistry,
        client_service: str = "A",
        server_service: str = "B",
        wasm_filters: int = 0,
    ):
        self.sim = sim
        self.cluster = cluster
        self.costs = cluster.costs
        self.schema = schema
        self.grpc = GrpcStack(sim, cluster, schema, client_service, server_service)
        registry.bind_clock(lambda: sim.now)
        self.client_sidecar = EnvoySidecar(
            sim, cluster, "client-host", client_filters, registry, wasm_filters
        )
        self.server_sidecar = EnvoySidecar(
            sim, cluster, "server-host", server_filters, registry, wasm_filters
        )
        self.client_service = client_service
        self.server_service = server_service
        self.wire_bytes_total = 0

    def _app_to_sidecar(self, app: Resource, message: Row) -> Generator:
        """App emits through its gRPC stack; iptables redirects the
        packets to the local proxy."""
        yield from app.use(
            (
                self.grpc._send_cpu_us(message)
                + self.costs.iptables_redirect_us
            )
            * US
        )
        yield self.sim.timeout(
            (self.costs.kernel_wakeup_extra_us + self.costs.loopback_extra_us)
            * US
        )

    def _sidecar_to_app(self, app: Resource, message: Row) -> Generator:
        yield from app.use(self.grpc._recv_cpu_us(message) * US)
        yield self.sim.timeout(
            (self.costs.kernel_wakeup_extra_us + self.costs.loopback_extra_us)
            * US
        )

    def _wire(self, message: Row) -> Generator:
        encoded = self.grpc.encode(message)
        wire = tcp_wire_bytes(len(encoded))
        self.wire_bytes_total += wire
        yield self.sim.timeout(self.costs.wire_us(wire) * US)

    def call(self, **fields: object) -> Generator:
        issued_at = self.sim.now
        request = make_request(
            self.schema,
            src=f"{self.client_service}.0",
            dst=self.server_service,
            **fields,
        )
        payload_size = len(
            self.grpc.codec.encode(
                {
                    n: request.get(n)
                    for n in self.schema.application_field_names()
                }
            )
        )
        aborted_by = ""
        response: Optional[Row] = None

        # request: client app -> client sidecar
        yield from self.grpc.client_app.use(self.costs.client_issue_us * US)
        yield from self._app_to_sidecar(self.grpc.client_app, request)
        message, dropped = yield self.sim.process(
            self.client_sidecar.traverse(request, "request", payload_size)
        )
        if dropped:
            aborted_by = dropped
            response = make_abort(request, dropped)
            # the client sidecar answers the abort locally
            message, _ = yield self.sim.process(
                self.client_sidecar.traverse(response, "response", payload_size)
            )
            response = message or response
            yield from self._sidecar_to_app(self.grpc.client_app, response)
            yield from self.grpc.client_app.use(
                self.costs.client_complete_us * US
            )
            return RpcOutcome(
                request=request,
                response=response,
                issued_at=issued_at,
                completed_at=self.sim.now,
                aborted_by=aborted_by,
            )

        # client sidecar -> wire -> server sidecar
        yield from self._wire(message)
        message, dropped = yield self.sim.process(
            self.server_sidecar.traverse(message, "request", payload_size)
        )
        if dropped:
            aborted_by = dropped
            response = make_abort(request, dropped)
        else:
            # server sidecar -> server app
            yield from self._sidecar_to_app(self.grpc.server_app, message)
            yield from self.grpc.server_app.use(self.costs.app_logic_us * US)
            response = make_response(message)
            yield from self._app_to_sidecar(self.grpc.server_app, response)

        # response: server sidecar -> wire -> client sidecar -> client app
        message, _ = yield self.sim.process(
            self.server_sidecar.traverse(response, "response", payload_size)
        )
        response = message or response
        yield from self._wire(response)
        message, _ = yield self.sim.process(
            self.client_sidecar.traverse(response, "response", payload_size)
        )
        response = message or response
        yield from self._sidecar_to_app(self.grpc.client_app, response)
        yield from self.grpc.client_app.use(self.costs.client_complete_us * US)
        return RpcOutcome(
            request=request,
            response=response,
            issued_at=issued_at,
            completed_at=self.sim.now,
            aborted_by=aborted_by,
        )
