"""Hand-written lexer for the ADN DSL.

A small scanner is easier to keep exact about source positions (needed for
good error messages) than a regex table, and the token set is tiny.
Comments run from ``--`` or ``#`` to end of line, matching the SQL style
used in the paper's Figure 4.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import DslSyntaxError
from .tokens import KEYWORDS, Token, TokenType

_PUNCT_TWO = {
    "->": TokenType.ARROW,
    "==": TokenType.EQEQ,
    "!=": TokenType.NEQ,
    "<>": TokenType.NEQ,
    "<=": TokenType.LTE,
    ">=": TokenType.GTE,
}

_PUNCT_ONE = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "*": TokenType.STAR,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
    "<": TokenType.LT,
    ">": TokenType.GT,
}


class Lexer:
    """Converts DSL source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (``--`` or ``#`` to end of line)."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#" or (ch == "-" and self._peek(1) == "-"):
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_string(self) -> Token:
        quote = self._peek()
        line, column = self.line, self.column
        self._advance()
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise DslSyntaxError("unterminated string literal", line, column)
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                if escape not in mapping:
                    raise DslSyntaxError(
                        f"unknown escape '\\{escape}'", self.line, self.column
                    )
                chars.append(mapping[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        kind = TokenType.FLOAT if is_float else TokenType.INT
        return Token(kind, text, line, column)

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        if text.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, text.upper(), line, column)
        return Token(TokenType.IDENT, text, line, column)

    def next_token(self) -> Token:
        """Return the next token, or an EOF token at end of input."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", self.line, self.column)
        ch = self._peek()
        if ch in ("'", '"'):
            return self._lex_string()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        two = ch + self._peek(1)
        if two in _PUNCT_TWO:
            token = Token(_PUNCT_TWO[two], two, self.line, self.column)
            self._advance(2)
            return token
        if ch in _PUNCT_ONE:
            token = Token(_PUNCT_ONE[ch], ch, self.line, self.column)
            self._advance()
            return token
        raise DslSyntaxError(f"unexpected character {ch!r}", self.line, self.column)

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens including the trailing EOF."""
        while True:
            token = self.next_token()
            yield token
            if token.type is TokenType.EOF:
                return


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` fully; convenience wrapper used by the parser."""
    return list(Lexer(source).tokens())
