"""Semantic validation for parsed ADN elements and apps.

Validation does three jobs:

1. **Checks** — unknown tables/columns/functions, arity errors, writes to
   undeclared variables, INSERT arity mismatches, duplicate declarations,
   handler sanity.
2. **Name resolution** — a bare identifier in an expression may name an
   element variable, an ``input`` field, or a column of a joined state
   table. The validator rewrites variable references to :class:`VarRef`
   nodes so later stages never re-resolve.
3. **Type inference** — best-effort static typing; mismatches that are
   provable (e.g. ``'a' + 1``) are rejected, unknown types are allowed
   (the schema may be open).

The element's RPC schema is optional: elements are reusable across apps
(paper Q1), so an element may be validated generically and re-validated
against a concrete :class:`~repro.dsl.schema.RpcSchema` when bound to an
app's chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DslValidationError
from .ast_nodes import (
    AppDef,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    DeleteStmt,
    ElementDef,
    Expr,
    FilterDef,
    FuncCall,
    Handler,
    InsertValues,
    Literal,
    Program,
    SelectItem,
    SelectStmt,
    SetStmt,
    Star,
    Statement,
    UnaryOp,
    UpdateStmt,
    VarRef,
)
from .functions import DEFAULT_REGISTRY, FunctionRegistry
from .schema import META_FIELDS, WRITABLE_META_FIELDS, FieldType, RpcSchema

#: Meta keys the validator understands; unknown keys are rejected to catch
#: typos like ``postion``.
KNOWN_META_KEYS = frozenset(
    {
        "position",  # sender | receiver | any
        "mandatory",  # bool: must run outside the app binary
        "description",
        "abort_probability",
        "rate",
        "burst",
        "max_retries",
        "timeout_ms",
        "retry_on",
        "backoff_ms",
        "failure_threshold",
        "reset_ms",
        "window",
        "key_field",
        "sample_rate",
        "capacity",
        "ttl_s",
        "checkpoint",  # bool: stream this element's state to a warm standby
        # overload control (repro.overload)
        "admission_control",  # bool: install a shedder on the host processor
        "target_delay_ms",  # CoDel target sojourn
        "interval_ms",  # CoDel interval
        "util_threshold",  # utilization where probabilistic shedding starts
        "max_shed_probability",
        "priority",  # sheds prefer requests below this priority
        "seed",
        "deadline_budget_ms",  # overall budget for one logical call (retry)
        # hardware offload (repro.offload)
        "table_entries",  # expected rows per keyed table, for the device
        # memory estimate (default 65536); ADN406 checks the result
    }
)

def _verr(message: str, node: object = None) -> DslValidationError:
    """A DslValidationError pointing at ``node``'s source span, when the
    node carries one (parser-produced nodes do; synthesized nodes don't)."""
    span = getattr(node, "span", None)
    if span is not None:
        return DslValidationError(message, span.line, span.column)
    return DslValidationError(message)


_NUMERIC = (FieldType.INT, FieldType.FLOAT)
_KNOWN_OPERATORS = frozenset(
    {
        "retry",
        "timeout",
        "rate_limit_shaper",
        "congestion_control",
        "circuit_breaker",
    }
)


@dataclass
class Scope:
    """Naming environment for expressions inside one statement."""

    input_fields: Optional[Dict[str, FieldType]]  # None = open schema
    tables: Dict[str, Dict[str, FieldType]] = field(default_factory=dict)
    vars: Dict[str, FieldType] = field(default_factory=dict)
    derived_fields: Dict[str, FieldType] = field(default_factory=dict)
    #: UPDATE/DELETE scopes resolve bare names to the target table's
    #: columns before input fields (SQL semantics: the updated relation
    #: is the innermost scope)
    prefer_tables: bool = False

    def input_field_type(self, name: str) -> Optional[FieldType]:
        if name in META_FIELDS:
            return META_FIELDS[name]
        if name in self.derived_fields:
            return self.derived_fields[name]
        if self.input_fields is None:
            return None  # open schema: unknown but allowed
        return self.input_fields.get(name)

    def has_input_field(self, name: str) -> bool:
        if name in META_FIELDS or name in self.derived_fields:
            return True
        if self.input_fields is None:
            return True  # open schema accepts anything
        return name in self.input_fields


class ElementValidator:
    """Validates one :class:`ElementDef`; see module docstring."""

    def __init__(
        self,
        element: ElementDef,
        schema: Optional[RpcSchema] = None,
        registry: Optional[FunctionRegistry] = None,
    ):
        self.element = element
        self.schema = schema
        self.registry = registry or DEFAULT_REGISTRY
        self._table_columns: Dict[str, Dict[str, FieldType]] = {}
        self._append_only: Set[str] = set()
        self._var_types: Dict[str, FieldType] = {}

    # -- public ----------------------------------------------------------

    def validate(self) -> ElementDef:
        """Run all checks; return the element with variables resolved."""
        self._check_meta()
        self._collect_states()
        self._collect_vars()
        for stmt in self.element.init:
            self._check_init_statement(stmt)
        self._check_handlers()
        new_handlers = tuple(
            Handler(
                h.kind,
                tuple(self._validate_statement(s) for s in h.statements),
                span=h.span,
            )
            for h in self.element.handlers
        )
        new_init = tuple(self._resolve_statement(s) for s in self.element.init)
        return replace(self.element, handlers=new_handlers, init=new_init)

    # -- declaration checks --------------------------------------------------

    def _check_meta(self) -> None:
        for key in self.element.meta:
            if key not in KNOWN_META_KEYS:
                raise _verr(
                    f"element {self.element.name!r}: unknown meta key {key!r}",
                    self.element,
                )
        position = self.element.meta.get("position", "any")
        if position not in ("sender", "receiver", "any"):
            raise _verr(
                f"element {self.element.name!r}: position must be "
                f"sender/receiver/any, got {position!r}",
                self.element,
            )

    def _collect_states(self) -> None:
        for decl in self.element.states:
            if decl.name in ("input", "output"):
                raise _verr(
                    f"state table may not be named {decl.name!r}", decl
                )
            if decl.name in self._table_columns:
                raise _verr(f"duplicate state table {decl.name!r}", decl)
            columns: Dict[str, FieldType] = {}
            for col in decl.columns:
                if col.name in columns:
                    raise _verr(
                        f"duplicate column {col.name!r} in table {decl.name!r}",
                        col,
                    )
                columns[col.name] = col.type
            self._table_columns[decl.name] = columns
            if decl.append_only:
                self._append_only.add(decl.name)

    def _collect_vars(self) -> None:
        for decl in self.element.vars:
            if decl.name in self._var_types:
                raise _verr(f"duplicate var {decl.name!r}", decl)
            if decl.name in self._table_columns:
                raise _verr(
                    f"var {decl.name!r} collides with a state table", decl
                )
            if decl.init.value is not None and not decl.type.accepts(decl.init.value):
                raise _verr(
                    f"var {decl.name!r}: initializer {decl.init.value!r} is not "
                    f"a {decl.type.value}",
                    decl,
                )
            self._var_types[decl.name] = decl.type

    def _check_handlers(self) -> None:
        seen: Set[str] = set()
        for handler in self.element.handlers:
            if handler.kind in seen:
                raise _verr(
                    f"element {self.element.name!r}: duplicate "
                    f"'on {handler.kind}' handler",
                    handler,
                )
            seen.add(handler.kind)
        if not seen:
            raise _verr(
                f"element {self.element.name!r} has no handlers", self.element
            )

    def _check_init_statement(self, stmt: Statement) -> None:
        if isinstance(stmt, InsertValues):
            self._check_insert_values(stmt)
            return
        if isinstance(stmt, (SelectStmt, SetStmt, UpdateStmt, DeleteStmt)):
            if isinstance(stmt, SelectStmt) and stmt.source == "input":
                raise _verr(
                    "init block cannot read the input stream", stmt
                )
            return
        raise _verr(f"unsupported init statement {stmt!r}", stmt)

    # -- statement validation ----------------------------------------------

    def _scope_for(self, stmt: SelectStmt) -> Scope:
        scope = Scope(
            input_fields=(
                {n: s.type for n, s in self.schema.fields.items()}
                if self.schema
                else None
            ),
            vars=dict(self._var_types),
        )
        tables = [stmt.source] + [j.table for j in stmt.joins]
        for table in tables:
            if table == "input":
                continue
            if table not in self._table_columns:
                raise _verr(
                    f"element {self.element.name!r}: unknown table {table!r}",
                    stmt,
                )
            if table in self._append_only:
                raise _verr(
                    f"append-only table {table!r} cannot be read", stmt
                )
            scope.tables[table] = self._table_columns[table]
        return scope

    def _validate_statement(self, stmt: Statement) -> Statement:
        if isinstance(stmt, SelectStmt):
            return self._validate_select(stmt)
        if isinstance(stmt, InsertValues):
            self._check_insert_values(stmt)
            return stmt
        if isinstance(stmt, UpdateStmt):
            return self._validate_update(stmt)
        if isinstance(stmt, DeleteStmt):
            return self._validate_delete(stmt)
        if isinstance(stmt, SetStmt):
            return self._validate_set(stmt)
        raise _verr(f"unsupported statement {stmt!r}", stmt)

    def _validate_select(self, stmt: SelectStmt) -> SelectStmt:
        if stmt.source != "input" and stmt.source not in self._table_columns:
            raise _verr(
                f"element {self.element.name!r}: unknown source {stmt.source!r}",
                stmt,
            )
        scope = self._scope_for(stmt)
        new_items: List[object] = []
        for item in stmt.items:
            if isinstance(item, Star):
                if item.table and item.table != "input" and item.table not in scope.tables:
                    raise _verr(
                        f"'{item.table}.*' refers to a table not in FROM/JOIN",
                        stmt,
                    )
                new_items.append(item)
            else:
                assert isinstance(item, SelectItem)
                expr = self._resolve_expr(item.expr, scope)
                self._infer_type(expr, scope)
                new_items.append(SelectItem(expr=expr, alias=item.alias))
        new_joins = tuple(
            replace(j, on=self._check_bool_expr(j.on, scope)) for j in stmt.joins
        )
        new_where = (
            self._check_bool_expr(stmt.where, scope) if stmt.where is not None else None
        )
        if stmt.into is not None:
            self._check_select_into(stmt, new_items)
        self._check_written_meta_fields(new_items)
        return replace(stmt, items=tuple(new_items), joins=new_joins, where=new_where)

    def _check_written_meta_fields(self, items: List[object]) -> None:
        for item in items:
            if isinstance(item, SelectItem) and item.alias:
                if item.alias in META_FIELDS and item.alias not in WRITABLE_META_FIELDS:
                    raise _verr(
                        f"meta-field {item.alias!r} is read-only "
                        f"(writable: {sorted(WRITABLE_META_FIELDS)})",
                        item.expr,
                    )

    def _check_select_into(self, stmt: SelectStmt, items: List[object]) -> None:
        table = stmt.into
        if table not in self._table_columns:
            raise _verr(f"INSERT INTO unknown table {table!r}", stmt)
        columns = self._table_columns[table]
        # Star-projections into a table are only allowed if names line up;
        # explicit projections must cover the table's columns positionally.
        explicit = [i for i in items if isinstance(i, SelectItem)]
        has_star = any(isinstance(i, Star) for i in items)
        if not has_star and len(explicit) != len(columns):
            raise _verr(
                f"INSERT INTO {table!r}: {len(explicit)} expressions for "
                f"{len(columns)} columns",
                stmt,
            )

    def _check_insert_values(self, stmt: InsertValues) -> None:
        if stmt.table not in self._table_columns:
            raise _verr(f"INSERT INTO unknown table {stmt.table!r}", stmt)
        columns = list(self._table_columns[stmt.table].items())
        for row in stmt.rows:
            if len(row) != len(columns):
                raise _verr(
                    f"INSERT INTO {stmt.table!r}: row has {len(row)} values "
                    f"for {len(columns)} columns",
                    stmt,
                )
            for value_expr, (col_name, col_type) in zip(row, columns):
                if not isinstance(value_expr, Literal):
                    raise _verr(
                        "INSERT ... VALUES rows must be literals", stmt
                    )
                if value_expr.value is not None and not col_type.accepts(
                    value_expr.value
                ):
                    raise _verr(
                        f"column {col_name!r} of {stmt.table!r} expects "
                        f"{col_type.value}, got {value_expr.value!r}",
                        value_expr,
                    )

    def _validate_update(self, stmt: UpdateStmt) -> UpdateStmt:
        if stmt.table not in self._table_columns:
            raise _verr(f"UPDATE unknown table {stmt.table!r}", stmt)
        if stmt.table in self._append_only:
            raise _verr(
                f"append-only table {stmt.table!r} cannot be updated", stmt
            )
        columns = self._table_columns[stmt.table]
        scope = Scope(
            input_fields=(
                {n: s.type for n, s in self.schema.fields.items()}
                if self.schema
                else None
            ),
            tables={stmt.table: columns},
            vars=dict(self._var_types),
            prefer_tables=True,
        )
        new_assignments: List[Tuple[str, Expr]] = []
        for column, expr in stmt.assignments:
            if column not in columns:
                raise _verr(
                    f"UPDATE {stmt.table!r}: unknown column {column!r}", expr
                )
            new_assignments.append((column, self._resolve_expr(expr, scope)))
        new_where = (
            self._check_bool_expr(stmt.where, scope) if stmt.where is not None else None
        )
        return replace(stmt, assignments=tuple(new_assignments), where=new_where)

    def _validate_delete(self, stmt: DeleteStmt) -> DeleteStmt:
        if stmt.table not in self._table_columns:
            raise _verr(f"DELETE FROM unknown table {stmt.table!r}", stmt)
        scope = Scope(
            input_fields=(
                {n: s.type for n, s in self.schema.fields.items()}
                if self.schema
                else None
            ),
            tables={stmt.table: self._table_columns[stmt.table]},
            vars=dict(self._var_types),
            prefer_tables=True,
        )
        new_where = (
            self._check_bool_expr(stmt.where, scope) if stmt.where is not None else None
        )
        return replace(stmt, where=new_where)

    def _validate_set(self, stmt: SetStmt) -> SetStmt:
        if stmt.var not in self._var_types:
            raise _verr(f"SET of undeclared var {stmt.var!r}", stmt)
        scope = Scope(
            input_fields=(
                {n: s.type for n, s in self.schema.fields.items()}
                if self.schema
                else None
            ),
            vars=dict(self._var_types),
        )
        expr = self._resolve_expr(stmt.expr, scope)
        inferred = self._infer_type(expr, scope)
        expected = self._var_types[stmt.var]
        if inferred is not None and not _compatible(expected, inferred):
            raise _verr(
                f"SET {stmt.var}: expression is {inferred.value}, "
                f"var is {expected.value}",
                stmt,
            )
        new_where = (
            self._check_bool_expr(stmt.where, scope) if stmt.where is not None else None
        )
        return replace(stmt, expr=expr, where=new_where)

    def _resolve_statement(self, stmt: Statement) -> Statement:
        """Resolve variables in init statements (no input in scope)."""
        if isinstance(stmt, (SelectStmt, UpdateStmt, DeleteStmt, SetStmt)):
            return self._validate_statement(stmt)
        return stmt

    # -- expressions -----------------------------------------------------------

    def _resolve_expr(self, expr: Expr, scope: Scope) -> Expr:
        """Rewrite bare names to VarRef where they name element variables,
        and verify every reference resolves."""
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, VarRef):
            return expr
        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr, scope)
        if isinstance(expr, FuncCall):
            spec = self.registry.get(expr.name)
            spec.check_arity(len(expr.args))
            if expr.name in ("count", "contains", "sum_of", "min_of",
                             "max_of", "avg_of"):
                # first argument is a state-table name, not a column
                arg = expr.args[0]
                if not (
                    isinstance(arg, ColumnRef)
                    and arg.table is None
                    and arg.name in self._table_columns
                ):
                    raise _verr(
                        f"{expr.name}() takes a state-table name as its "
                        "first argument",
                        expr,
                    )
                if expr.name in ("sum_of", "min_of", "max_of", "avg_of"):
                    column = expr.args[1]
                    if not (
                        isinstance(column, ColumnRef)
                        and column.table is None
                        and column.name in self._table_columns[arg.name]
                    ):
                        raise _verr(
                            f"{expr.name}() takes a column of "
                            f"{arg.name!r} as its second argument",
                            expr,
                        )
                    if arg.name in self._append_only:
                        raise _verr(
                            f"aggregate over append-only table {arg.name!r}",
                            expr,
                        )
                    return expr
                rest = tuple(
                    self._resolve_expr(a, scope) for a in expr.args[1:]
                )
                return FuncCall(expr.name, (arg,) + rest, span=expr.span)
            return FuncCall(
                expr.name,
                tuple(self._resolve_expr(a, scope) for a in expr.args),
                span=expr.span,
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._resolve_expr(expr.left, scope),
                self._resolve_expr(expr.right, scope),
                span=expr.span,
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op, self._resolve_expr(expr.operand, scope), span=expr.span
            )
        if isinstance(expr, CaseExpr):
            return CaseExpr(
                tuple(
                    (self._resolve_expr(c, scope), self._resolve_expr(v, scope))
                    for c, v in expr.whens
                ),
                self._resolve_expr(expr.default, scope)
                if expr.default is not None
                else None,
                span=expr.span,
            )
        raise _verr(f"unsupported expression {expr!r}", expr)

    def _resolve_column(self, ref: ColumnRef, scope: Scope) -> Expr:
        if ref.table is not None:
            if ref.table == "input":
                if not scope.has_input_field(ref.name):
                    raise _verr(
                        f"unknown input field {ref.name!r}", ref
                    )
                return ref
            if ref.table not in scope.tables:
                raise _verr(
                    f"reference to {ref}: table {ref.table!r} not in scope",
                    ref,
                )
            if ref.name not in scope.tables[ref.table]:
                raise _verr(
                    f"table {ref.table!r} has no column {ref.name!r}", ref
                )
            return ref
        # bare name: var > (table column, for UPDATE/DELETE) > input field
        # > unique table column
        if ref.name in scope.vars:
            return VarRef(ref.name, span=ref.span)
        owners = [t for t, cols in scope.tables.items() if ref.name in cols]
        if scope.prefer_tables and len(owners) == 1:
            return ColumnRef(owners[0], ref.name, span=ref.span)
        if scope.has_input_field(ref.name) and scope.input_fields is not None:
            if ref.name in scope.input_fields or ref.name in META_FIELDS:
                return ColumnRef("input", ref.name, span=ref.span)
        if len(owners) == 1:
            return ColumnRef(owners[0], ref.name, span=ref.span)
        if len(owners) > 1:
            raise _verr(
                f"ambiguous column {ref.name!r} (in tables {owners})", ref
            )
        if scope.input_fields is None:
            # open schema: assume it is an input field
            return ColumnRef("input", ref.name, span=ref.span)
        raise _verr(f"unresolved name {ref.name!r}", ref)

    def _check_bool_expr(self, expr: Expr, scope: Scope) -> Expr:
        resolved = self._resolve_expr(expr, scope)
        inferred = self._infer_type(resolved, scope)
        if inferred is not None and inferred is not FieldType.BOOL:
            raise _verr(
                f"predicate must be boolean, got {inferred.value}", expr
            )
        return resolved

    def _infer_type(self, expr: Expr, scope: Scope) -> Optional[FieldType]:
        if isinstance(expr, Literal):
            return _literal_type(expr.value)
        if isinstance(expr, VarRef):
            return scope.vars.get(expr.name)
        if isinstance(expr, ColumnRef):
            if expr.table == "input" or expr.table is None:
                return scope.input_field_type(expr.name)
            return scope.tables.get(expr.table, {}).get(expr.name)
        if isinstance(expr, FuncCall):
            spec = self.registry.get(expr.name)
            if spec.result_type is not None:
                return spec.result_type
            if expr.args:
                return self._infer_type(expr.args[0], scope)
            return None
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return FieldType.BOOL
            return self._infer_type(expr.operand, scope)
        if isinstance(expr, BinaryOp):
            return self._infer_binary(expr, scope)
        if isinstance(expr, CaseExpr):
            for _, value in expr.whens:
                inferred = self._infer_type(value, scope)
                if inferred is not None:
                    return inferred
            if expr.default is not None:
                return self._infer_type(expr.default, scope)
            return None
        return None

    def _infer_binary(self, expr: BinaryOp, scope: Scope) -> Optional[FieldType]:
        left = self._infer_type(expr.left, scope)
        right = self._infer_type(expr.right, scope)
        if expr.op in ("and", "or"):
            return FieldType.BOOL
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            if (
                left is not None
                and right is not None
                and not _comparable(left, right)
            ):
                raise _verr(
                    f"cannot compare {left.value} with {right.value}", expr
                )
            return FieldType.BOOL
        # arithmetic
        if expr.op == "+" and FieldType.STR in (left, right):
            raise _verr(
                "use concat() for string concatenation, not '+'", expr
            )
        for side in (left, right):
            if side is not None and side not in _NUMERIC:
                raise _verr(
                    f"arithmetic on non-numeric type {side.value}", expr
                )
        if FieldType.FLOAT in (left, right):
            return FieldType.FLOAT
        if left is FieldType.INT and right is FieldType.INT:
            if expr.op == "/":
                return FieldType.FLOAT
            return FieldType.INT
        return None


def _literal_type(value: object) -> Optional[FieldType]:
    if isinstance(value, bool):
        return FieldType.BOOL
    if isinstance(value, int):
        return FieldType.INT
    if isinstance(value, float):
        return FieldType.FLOAT
    if isinstance(value, str):
        return FieldType.STR
    if isinstance(value, bytes):
        return FieldType.BYTES
    return None  # NULL


def _comparable(a: FieldType, b: FieldType) -> bool:
    if a is b:
        return True
    return a in _NUMERIC and b in _NUMERIC


def _compatible(expected: FieldType, actual: FieldType) -> bool:
    if expected is actual:
        return True
    return expected is FieldType.FLOAT and actual is FieldType.INT


def validate_element(
    element: ElementDef,
    schema: Optional[RpcSchema] = None,
    registry: Optional[FunctionRegistry] = None,
) -> ElementDef:
    """Validate and resolve one element definition."""
    return ElementValidator(element, schema, registry).validate()


def validate_filter(filter_def: FilterDef) -> FilterDef:
    """Check a filter element binds to a known operator."""
    if filter_def.operator not in _KNOWN_OPERATORS:
        raise _verr(
            f"filter {filter_def.name!r}: unknown operator "
            f"{filter_def.operator!r} (known: {sorted(_KNOWN_OPERATORS)})",
            filter_def,
        )
    return filter_def


def validate_app(app: AppDef, program: Program) -> AppDef:
    """Check an app's chains reference declared services and elements."""
    service_names = {svc.name for svc in app.services}
    if len(service_names) != len(app.services):
        raise _verr(f"app {app.name!r}: duplicate service", app)
    known_elements = set(program.elements) | set(program.filters)
    for chain in app.chains:
        for endpoint in (chain.src, chain.dst):
            if endpoint not in service_names:
                raise _verr(
                    f"app {app.name!r}: chain references unknown service "
                    f"{endpoint!r}",
                    chain,
                )
        if chain.src == chain.dst:
            raise _verr(
                f"app {app.name!r}: chain endpoints must differ", chain
            )
        for element_name in chain.elements:
            if element_name not in known_elements:
                raise _verr(
                    f"app {app.name!r}: chain uses unknown element "
                    f"{element_name!r}",
                    chain,
                )
    chain_elements = {
        name for chain in app.chains for name in chain.elements
    }
    for constraint in app.constraints:
        for arg in constraint.args:
            if arg in ("sender", "receiver"):
                continue
            if arg not in chain_elements:
                raise _verr(
                    f"app {app.name!r}: constraint references {arg!r}, "
                    f"which is not in any chain",
                    constraint,
                )
    return app


def validate_program(
    program: Program,
    schema: Optional[RpcSchema] = None,
    registry: Optional[FunctionRegistry] = None,
) -> Program:
    """Validate every element, filter, and app of a parsed program."""
    elements = {
        name: validate_element(element, schema, registry)
        for name, element in program.elements.items()
    }
    filters = {
        name: validate_filter(filter_def)
        for name, filter_def in program.filters.items()
    }
    validated = Program(elements=elements, filters=filters, apps=program.apps)
    apps = {
        name: validate_app(app, validated) for name, app in program.apps.items()
    }
    return Program(elements=elements, filters=filters, apps=apps)
