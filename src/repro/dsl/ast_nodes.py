"""Abstract syntax tree for the ADN DSL.

The tree is deliberately small: expressions, five statement forms (SELECT,
INSERT, UPDATE, DELETE, SET), element definitions, and app definitions.
All nodes are frozen dataclasses so they can be hashed, compared in tests,
and shared between compilation passes without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .schema import FieldType
from .span import Span

#: Shared declaration for the source-position metadata field. ``compare=
#: False`` keeps spans out of equality/hashing (structural identity must
#: survive pretty-printing); ``kw_only`` lets every node inherit it from
#: its base class without disturbing positional constructors.
def _span_field():
    return field(default=None, compare=False, kw_only=True)

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes. ``span`` is the source position
    of the expression's first token (None for synthesized nodes)."""

    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: string, int, float, bool, or None (SQL NULL)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``table.column`` or a bare ``name``.

    A bare name may resolve (during validation) to an ``input`` field, a
    unique state-table column, or an element variable.
    """

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to an element-local scalar variable (post-validation)."""

    name: str


@dataclass(frozen=True)
class FuncCall(Expr):
    """A call to a built-in or user-defined function."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operation; ``op`` is one of
    ``+ - * / % == != < <= > >= and or``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation; ``op`` is ``-`` or ``not``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE WHEN c1 THEN v1 ... ELSE d END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for statement nodes. ``span`` points at the statement's
    leading keyword in the source (None for synthesized nodes)."""

    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Star:
    """``*`` or ``table.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class SelectItem:
    """One projected expression, optionally aliased with ``AS``."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class Join:
    """``JOIN table ON predicate``."""

    table: str
    on: Expr


@dataclass(frozen=True)
class SelectStmt(Statement):
    """``[INSERT INTO into] SELECT items FROM source [JOIN ...] [WHERE ...]``.

    When ``into`` is None and ``source`` involves ``input``, the result rows
    are emitted downstream (the element's output stream). With ``into`` set,
    rows are appended to a state table instead.
    """

    items: Tuple[object, ...]  # SelectItem | Star
    source: str
    joins: Tuple[Join, ...] = ()
    where: Optional[Expr] = None
    into: Optional[str] = None


@dataclass(frozen=True)
class InsertValues(Statement):
    """``INSERT INTO table VALUES (..), (..)`` with literal-only rows."""

    table: str
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class DeleteStmt(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class SetStmt(Statement):
    """``SET var = expr [WHERE cond]`` — assign an element variable,
    optionally guarded (the guard may reference input fields)."""

    var: str
    expr: Expr
    where: Optional[Expr] = None


# --------------------------------------------------------------------------
# Element definitions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    """A state-table column; ``is_key`` marks the partition/primary key."""

    name: str
    type: FieldType
    is_key: bool = False
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class StateDecl:
    """``state name (col: type [KEY], ...) [APPEND];``

    APPEND marks write-only log-style tables (e.g. a logger's sink); they
    never need to be read back on the data path and may live off-processor.
    """

    name: str
    columns: Tuple[ColumnDef, ...]
    append_only: bool = False
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class VarDecl:
    """``var name: type = literal;`` — element-local scalar state."""

    name: str
    type: FieldType
    init: Literal
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Handler:
    """``on request { ... }`` / ``on response { ... }``."""

    kind: str  # "request" | "response"
    statements: Tuple[Statement, ...]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class ElementDef:
    """A complete element: meta config, state, variables, init, handlers."""

    name: str
    meta: Dict[str, object] = field(default_factory=dict)
    states: Tuple[StateDecl, ...] = ()
    vars: Tuple[VarDecl, ...] = ()
    init: Tuple[Statement, ...] = ()
    handlers: Tuple[Handler, ...] = ()
    span: Optional[Span] = _span_field()

    def handler(self, kind: str) -> Optional[Handler]:
        for handler in self.handlers:
            if handler.kind == kind:
                return handler
        return None

    def state(self, name: str) -> Optional[StateDecl]:
        for decl in self.states:
            if decl.name == name:
                return decl
        return None

    def __hash__(self) -> int:  # meta dict is not hashable
        return hash((self.name, self.states, self.vars, self.init, self.handlers))


@dataclass(frozen=True)
class FilterDef:
    """A stream-shaping filter bound to a platform-specific operator
    (paper §5.1: timeouts, retries, congestion control)."""

    name: str
    operator: str
    meta: Dict[str, object] = field(default_factory=dict)
    span: Optional[Span] = _span_field()

    def __hash__(self) -> int:
        return hash((self.name, self.operator))


# --------------------------------------------------------------------------
# App definitions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceDecl:
    """``service name [replicas N];``"""

    name: str
    replicas: int = 1
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class ChainDecl:
    """``chain src -> dst { Elem1, Elem2, ... }``"""

    src: str
    dst: str
    elements: Tuple[str, ...]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class ConstraintDecl:
    """A placement or ordering constraint.

    kinds: ``colocate`` (args: element, "sender"|"receiver"),
    ``outside_app`` (args: element), ``before``/``after`` (args: two
    elements).
    """

    kind: str
    args: Tuple[str, ...]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class GuaranteeDecl:
    """Delivery guarantees requested from the generated transport."""

    reliable: bool = False
    ordered: bool = False


@dataclass(frozen=True)
class AppDef:
    """A complete app specification."""

    name: str
    services: Tuple[ServiceDecl, ...] = ()
    chains: Tuple[ChainDecl, ...] = ()
    constraints: Tuple[ConstraintDecl, ...] = ()
    guarantees: GuaranteeDecl = GuaranteeDecl()
    span: Optional[Span] = _span_field()

    def service(self, name: str) -> Optional[ServiceDecl]:
        for svc in self.services:
            if svc.name == name:
                return svc
        return None


@dataclass(frozen=True)
class Program:
    """Top level parse result: elements, filters, and apps by name."""

    elements: Dict[str, ElementDef] = field(default_factory=dict)
    filters: Dict[str, FilterDef] = field(default_factory=dict)
    apps: Dict[str, AppDef] = field(default_factory=dict)

    def merged(self, other: "Program") -> "Program":
        """A new Program containing definitions from both (no mutation)."""
        return Program(
            elements={**self.elements, **other.elements},
            filters={**self.filters, **other.filters},
            apps={**self.apps, **other.apps},
        )
