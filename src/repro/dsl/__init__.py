"""The ADN domain-specific language: lexer, parser, validator, stdlib.

Typical use::

    from repro.dsl import parse, validate_program, RpcSchema, FieldType

    program = parse(source_text)
    program = validate_program(program, schema=RpcSchema.of(
        "kv", obj_id=FieldType.INT, username=FieldType.STR,
        payload=FieldType.BYTES))
"""

from .ast_nodes import (
    AppDef,
    ChainDecl,
    ConstraintDecl,
    ElementDef,
    FilterDef,
    GuaranteeDecl,
    Program,
    ServiceDecl,
)
from .functions import DEFAULT_REGISTRY, FunctionRegistry, FunctionSpec
from .lexer import tokenize
from .parser import parse, parse_element
from .schema import META_FIELDS, FieldSpec, FieldType, RpcSchema
from .stdlib import STDLIB_SOURCES, load_stdlib, stdlib_loc, stdlib_source
from .validator import (
    validate_app,
    validate_element,
    validate_filter,
    validate_program,
)

__all__ = [
    "AppDef",
    "ChainDecl",
    "ConstraintDecl",
    "DEFAULT_REGISTRY",
    "ElementDef",
    "FieldSpec",
    "FieldType",
    "FilterDef",
    "FunctionRegistry",
    "FunctionSpec",
    "GuaranteeDecl",
    "META_FIELDS",
    "Program",
    "RpcSchema",
    "STDLIB_SOURCES",
    "ServiceDecl",
    "load_stdlib",
    "parse",
    "parse_element",
    "stdlib_loc",
    "stdlib_source",
    "tokenize",
    "validate_app",
    "validate_element",
    "validate_filter",
    "validate_program",
]
