"""Standard library of ADN elements, written in the DSL itself.

These are the reusable elements the paper envisions developers sharing
(§4 Q1). The three used in the paper's evaluation — Logging, ACL, and
Fault injection (§6) — are here, along with the §2 example's load
balancer / compression / access-control chain and several extras
(rate limiting, metrics, routing, admission control, caching, mirroring).

Each entry is plain DSL text; call :func:`load_stdlib` to parse and
validate them into a :class:`~repro.dsl.ast_nodes.Program`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ast_nodes import Program
from .functions import FunctionRegistry
from .parser import parse
from .schema import RpcSchema
from .validator import validate_program

#: name → DSL source. Sources intentionally stay "tens of lines" each —
#: the paper's LoC comparison (§6) counts exactly these.
STDLIB_SOURCES: Dict[str, str] = {}


def _define(name: str, source: str) -> str:
    STDLIB_SOURCES[name] = source.strip() + "\n"
    return name


# -- The three elements evaluated in the paper (§6) -------------------------

_define(
    "Logging",
    """
-- Records both the request and the response to a log sink (paper §6).
element Logging {
    state log_tab (ts: float, direction: str, rpc_id: int, payload: bytes) APPEND;
    on request {
        INSERT INTO log_tab SELECT now(), 'request', input.rpc_id, input.payload FROM input;
        SELECT * FROM input;
    }
    on response {
        INSERT INTO log_tab SELECT now(), 'response', input.rpc_id, input.payload FROM input;
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Acl",
    """
-- Access Control List: drops RPCs whose user lacks write permission
-- (paper Figure 4 and §6).
element Acl {
    meta { mandatory: true; }
    state ac_tab (username: str KEY, permission: str);
    init {
        INSERT INTO ac_tab VALUES ('usr1', 'R'), ('usr2', 'W');
    }
    on request {
        SELECT input.* FROM input
        JOIN ac_tab ON input.username == ac_tab.username
        WHERE ac_tab.permission == 'W';
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Fault",
    """
-- Fault injection: aborts requests with a configured probability (§6).
element Fault {
    meta { abort_probability: 0.02; }
    on request {
        SELECT * FROM input WHERE rand() >= 0.02;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

# -- The §2 example chain ---------------------------------------------------

_define(
    "LbKeyHash",
    """
-- Load balancer: picks a replica of the destination service by hashing
-- the object identifier inside the RPC (paper §2's requirement 1).
element LbKeyHash {
    state endpoints (idx: int KEY, replica: str);
    on request {
        SELECT input.*, endpoints.replica AS dst FROM input
        JOIN endpoints ON endpoints.idx == hash(input.obj_id) % count(endpoints);
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "LbRoundRobin",
    """
-- Round-robin load balancer over the destination's replica set.
element LbRoundRobin {
    state endpoints (idx: int KEY, replica: str);
    var next_idx: int = 0;
    on request {
        SELECT input.*, endpoints.replica AS dst FROM input
        JOIN endpoints ON endpoints.idx == next_idx;
        SET next_idx = (next_idx + 1) % count(endpoints);
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Compression",
    """
-- Compresses the payload on the sender side (paper §2's requirement 2).
element Compression {
    meta { position: sender; }
    on request {
        SELECT input.*, compress(input.payload) AS payload FROM input;
    }
    on response {
        -- aborted responses carry no body; leave them untouched
        SELECT input.*, CASE WHEN input.status == 'ok'
            THEN decompress(input.payload) ELSE input.payload END AS payload
        FROM input;
    }
}
""",
)

_define(
    "Decompression",
    """
-- Decompresses the payload on the receiver side (paper §2).
element Decompression {
    meta { position: receiver; }
    on request {
        SELECT input.*, decompress(input.payload) AS payload FROM input;
    }
    on response {
        SELECT input.*, CASE WHEN input.status == 'ok'
            THEN compress(input.payload) ELSE input.payload END AS payload
        FROM input;
    }
}
""",
)

_define(
    "AccessControl",
    """
-- §2's access control: allow a request only when the user may act on
-- the object; reads both the user and object identifiers from the RPC.
element AccessControl {
    meta { mandatory: true; }
    state acl (username: str KEY, obj_id: int KEY, allowed: bool);
    on request {
        SELECT input.* FROM input
        JOIN acl ON acl.username == input.username AND acl.obj_id == input.obj_id
        WHERE acl.allowed == true;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

# -- Additional reusable elements ------------------------------------------

_define(
    "Encryption",
    """
element Encryption {
    meta { position: sender; }
    var key: str = 'adn-secret';
    on request {
        SELECT input.*, encrypt(input.payload, key) AS payload FROM input;
    }
    on response {
        SELECT input.*, CASE WHEN input.status == 'ok'
            THEN decrypt(input.payload, key) ELSE input.payload END AS payload
        FROM input;
    }
}
""",
)

_define(
    "Decryption",
    """
element Decryption {
    meta { position: receiver; }
    var key: str = 'adn-secret';
    on request {
        SELECT input.*, decrypt(input.payload, key) AS payload FROM input;
    }
    on response {
        SELECT input.*, CASE WHEN input.status == 'ok'
            THEN encrypt(input.payload, key) ELSE input.payload END AS payload
        FROM input;
    }
}
""",
)

_define(
    "RateLimit",
    """
-- Token-bucket rate limiter (a "simple filter" in §5.1's terms).
element RateLimit {
    meta { rate: 100000.0; burst: 128.0; }
    var tokens: float = 128.0;
    var last_refill: float = 0.0;
    on request {
        SET tokens = min(128.0, tokens + (now() - last_refill) * 100000.0);
        SET last_refill = now();
        SELECT * FROM input WHERE tokens >= 1.0;
        SET tokens = max(0.0, tokens - 1.0);
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Metrics",
    """
-- Telemetry: per-method request counter, reported to the controller.
element Metrics {
    state counters (method: str KEY, hits: int);
    on request {
        INSERT INTO counters SELECT input.method, 0 FROM input
            WHERE NOT contains(counters, input.method);
        UPDATE counters SET hits = hits + 1 WHERE method == input.method;
        SELECT * FROM input;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Router",
    """
-- Request routing on RPC content: send requests whose method matches a
-- routing rule to a pinned instance (the §2 extensibility example).
element Router {
    state routes (method: str KEY, target: str);
    on request {
        SELECT input.*, routes.target AS dst FROM input
        JOIN routes ON routes.method == input.method;
        SELECT * FROM input WHERE NOT contains(routes, input.method);
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Admission",
    """
-- Admission control: reject requests once the in-flight window is full.
element Admission {
    meta { window: 1024; }
    var in_flight: int = 0;
    on request {
        SELECT * FROM input WHERE in_flight < 1024;
        SET in_flight = in_flight + 1 WHERE in_flight < 1024;
    }
    on response {
        SET in_flight = max(0, in_flight - 1);
        SELECT * FROM input;
    }
}
""",
)

_define(
    "AdmissionControl",
    """
-- Overload admission control (repro.overload): the meta block asks the
-- hosting processor to install a CoDel-style delay shedder plus
-- utilization-triggered probabilistic shedding in front of its queue.
-- Requests at or above the priority threshold are shed last. The
-- element body forwards; the shedding happens before entry, where the
-- runtime can see queueing delay (the DSL deliberately cannot).
element AdmissionControl {
    meta {
        admission_control: true;
        target_delay_ms: 2.0;
        interval_ms: 20.0;
        util_threshold: 0.95;
        max_shed_probability: 0.5;
        priority: 1;
    }
    on request {
        SELECT * FROM input;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Mirror",
    """
-- Traffic mirroring: duplicate a sample of requests to a shadow service.
element Mirror {
    meta { sample_rate: 0.01; }
    on request {
        SELECT * FROM input;
        SELECT input.*, 'shadow' AS dst FROM input WHERE rand() < 0.01;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "Cache",
    """
-- Response cache keyed on the object id: answers repeated reads
-- without reaching the server.
element Cache {
    state cache_tab (obj_id: int KEY, payload: bytes);
    on request {
        SELECT * FROM input;
    }
    on response {
        INSERT INTO cache_tab SELECT input.obj_id, input.payload FROM input;
        SELECT * FROM input;
    }
}
""",
)

_define(
    "SizeLimit",
    """
-- Reject oversized payloads before they cross the wire.
element SizeLimit {
    meta { capacity: 65536; }
    on request {
        SELECT * FROM input WHERE len(input.payload) <= 65536;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

_define(
    "GlobalQuota",
    """
-- Cluster-wide request quota: admit while the summed per-user usage
-- stays under capacity (uses a column aggregate over element state).
element GlobalQuota {
    meta { capacity: 100000; }
    state usage (username: str KEY, used: int);
    on request {
        SELECT * FROM input WHERE sum_of(usage, used) < 100000;
        INSERT INTO usage SELECT input.username, 0 FROM input
            WHERE NOT contains(usage, input.username)
              AND sum_of(usage, used) < 100000;
        UPDATE usage SET used = used + 1
            WHERE username == input.username AND sum_of(usage, used) < 100000;
    }
    on response {
        SELECT * FROM input;
    }
}
""",
)

# -- Filters (complex stream shaping, §5.1) ---------------------------------

_define(
    "Retry",
    """
filter Retry {
    meta { max_retries: 3; timeout_ms: 10.0; deadline_budget_ms: 100.0; }
    use operator retry;
}
""",
)

_define(
    "Timeout",
    """
filter Timeout {
    meta { timeout_ms: 25.0; }
    use operator timeout;
}
""",
)

_define(
    "CircuitBreaker",
    """
filter CircuitBreaker {
    meta { failure_threshold: 5; reset_ms: 50.0; }
    use operator circuit_breaker;
}
""",
)

_define(
    "Pacer",
    """
-- Client-side rate shaping: space issues to a target rate.
filter Pacer {
    meta { rate: 50000.0; }
    use operator rate_limit_shaper;
}
""",
)


def stdlib_source(*names: str) -> str:
    """Concatenated DSL source for the named stdlib elements."""
    missing = [name for name in names if name not in STDLIB_SOURCES]
    if missing:
        raise KeyError(f"unknown stdlib elements: {missing}")
    return "\n".join(STDLIB_SOURCES[name] for name in names)


def load_stdlib(
    names: Optional[list] = None,
    schema: Optional[RpcSchema] = None,
    registry: Optional[FunctionRegistry] = None,
) -> Program:
    """Parse and validate stdlib elements (all of them by default)."""
    selected = list(names) if names is not None else list(STDLIB_SOURCES)
    program = parse(stdlib_source(*selected))
    return validate_program(program, schema=schema, registry=registry)


def stdlib_loc(name: str) -> int:
    """Non-blank, non-comment DSL line count for one element — used by the
    paper's lines-of-code comparison (§6)."""
    lines = STDLIB_SOURCES[name].splitlines()
    code_lines = [
        line
        for line in (raw.strip() for raw in lines)
        if line and not line.startswith("--") and not line.startswith("#")
    ]
    return len(code_lines)
