"""Token definitions for the ADN DSL.

The DSL has two sub-languages that share one lexer:

* the *element* language — SQL-like statements over the special ``input``
  stream and element-local state tables (paper §5.1, Figure 4);
* the *app* language — services, chains of elements between services, and
  placement/delivery constraints (paper §3).

Keywords are case-insensitive, matching SQL convention; identifiers are
case-sensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by the lexer."""

    IDENT = "IDENT"
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    KEYWORD = "KEYWORD"
    # punctuation / operators
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    PERCENT = "%"
    EQ = "="
    EQEQ = "=="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    ARROW = "->"
    EOF = "EOF"


#: Reserved words. The lexer upper-cases candidate identifiers and checks
#: membership here, so ``select`` and ``SELECT`` both lex as keywords.
KEYWORDS = frozenset(
    {
        # SQL statement heads
        "SELECT",
        "FROM",
        "WHERE",
        "JOIN",
        "ON",
        "AS",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
        "NULL",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        # element structure
        "ELEMENT",
        "FILTER",
        "META",
        "STATE",
        "VAR",
        "INIT",
        "KEY",
        "APPEND",
        "USE",
        "OPERATOR",
        # types
        "STR",
        "INT",
        "FLOAT",
        "BOOL",
        "BYTES",
        # app language
        "APP",
        "SERVICE",
        "REPLICAS",
        "CHAIN",
        "CONSTRAIN",
        "COLOCATE",
        "SENDER",
        "RECEIVER",
        "OUTSIDE_APP",
        "GUARANTEE",
        "RELIABLE",
        "ORDERED",
        "BEFORE",
        "AFTER",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given (upper-case) keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # concise for parser error messages
        return f"{self.type.value}({self.value!r})@{self.line}:{self.column}"
