"""Pretty-printer: AST → canonical DSL source.

``parse(print_program(ast))`` reproduces the AST (modulo resolved
variable references, which print as bare names) — the property the
round-trip tests check. Used by tooling (the CLI's ``fmt`` command) and
for emitting programs the controller has modified.
"""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    AppDef,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    DeleteStmt,
    ElementDef,
    Expr,
    FilterDef,
    FuncCall,
    GuaranteeDecl,
    InsertValues,
    Literal,
    Program,
    SelectItem,
    SelectStmt,
    SetStmt,
    Star,
    Statement,
    UnaryOp,
    UpdateStmt,
    VarRef,
)

#: precedence levels for parenthesization (higher binds tighter)
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def print_literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f"'{escaped}'"
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text) else text + ".0"
    return repr(value)


def print_expr(expr: Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, Literal):
        return print_literal(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, FuncCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            inner = print_expr(expr.operand, 3)
            text = f"NOT {inner}"
            return f"({text})" if parent_precedence > 3 else text
        inner = print_expr(expr.operand, 7)
        if inner.startswith("-"):
            # avoid '--', which would lex as a SQL comment
            inner = f"({inner})"
        return f"-{inner}"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        op_text = {"and": "AND", "or": "OR"}.get(expr.op, expr.op)
        # comparisons are non-associative in the grammar: both operands
        # need parens at equal precedence; other operators associate left
        comparison = expr.op in ("==", "!=", "<", "<=", ">", ">=")
        left = print_expr(expr.left, precedence + 1 if comparison else precedence)
        right = print_expr(expr.right, precedence + 1)
        text = f"{left} {op_text} {right}"
        return f"({text})" if parent_precedence > precedence else text
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {print_expr(condition)} THEN {print_expr(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {print_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot print expression {expr!r}")


def print_statement(stmt: Statement) -> str:
    if isinstance(stmt, SelectStmt):
        items: List[str] = []
        for item in stmt.items:
            if isinstance(item, Star):
                items.append(f"{item.table}.*" if item.table else "*")
            else:
                assert isinstance(item, SelectItem)
                text = print_expr(item.expr)
                if item.alias:
                    text += f" AS {item.alias}"
                items.append(text)
        parts = [f"SELECT {', '.join(items)} FROM {stmt.source}"]
        for join in stmt.joins:
            parts.append(f"JOIN {join.table} ON {print_expr(join.on)}")
        if stmt.where is not None:
            parts.append(f"WHERE {print_expr(stmt.where)}")
        text = " ".join(parts) + ";"
        if stmt.into is not None:
            text = f"INSERT INTO {stmt.into} {text}"
        return text
    if isinstance(stmt, InsertValues):
        rows = ", ".join(
            "(" + ", ".join(print_expr(v) for v in row) + ")"
            for row in stmt.rows
        )
        return f"INSERT INTO {stmt.table} VALUES {rows};"
    if isinstance(stmt, UpdateStmt):
        assignments = ", ".join(
            f"{column} = {print_expr(expr)}" for column, expr in stmt.assignments
        )
        text = f"UPDATE {stmt.table} SET {assignments}"
        if stmt.where is not None:
            text += f" WHERE {print_expr(stmt.where)}"
        return text + ";"
    if isinstance(stmt, DeleteStmt):
        text = f"DELETE FROM {stmt.table}"
        if stmt.where is not None:
            text += f" WHERE {print_expr(stmt.where)}"
        return text + ";"
    if isinstance(stmt, SetStmt):
        text = f"SET {stmt.var} = {print_expr(stmt.expr)}"
        if stmt.where is not None:
            text += f" WHERE {print_expr(stmt.where)}"
        return text + ";"
    raise TypeError(f"cannot print statement {stmt!r}")


def _print_meta_value(value: object) -> str:
    if isinstance(value, str):
        # bare words (e.g. `sender`) stay bare; anything else is quoted
        return value if value.isidentifier() else print_literal(value)
    return print_literal(value)


def _print_meta(meta: dict, indent: str) -> List[str]:
    if not meta:
        return []
    entries = " ".join(
        f"{key}: {_print_meta_value(value)};" for key, value in meta.items()
    )
    return [f"{indent}meta {{ {entries} }}"]


def print_element(element: ElementDef) -> str:
    lines = [f"element {element.name} {{"]
    lines.extend(_print_meta(element.meta, "    "))
    for decl in element.states:
        columns = ", ".join(
            f"{col.name}: {col.type.value}" + (" KEY" if col.is_key else "")
            for col in decl.columns
        )
        suffix = " APPEND" if decl.append_only else ""
        lines.append(f"    state {decl.name} ({columns}){suffix};")
    for var in element.vars:
        lines.append(
            f"    var {var.name}: {var.type.value} = "
            f"{print_literal(var.init.value)};"
        )
    if element.init:
        lines.append("    init {")
        for stmt in element.init:
            lines.append(f"        {print_statement(stmt)}")
        lines.append("    }")
    for handler in element.handlers:
        lines.append(f"    on {handler.kind} {{")
        for stmt in handler.statements:
            lines.append(f"        {print_statement(stmt)}")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def print_filter(filter_def: FilterDef) -> str:
    lines = [f"filter {filter_def.name} {{"]
    lines.extend(_print_meta(filter_def.meta, "    "))
    lines.append(f"    use operator {filter_def.operator};")
    lines.append("}")
    return "\n".join(lines)


def print_app(app: AppDef) -> str:
    lines = [f"app {app.name} {{"]
    for service in app.services:
        if service.replicas > 1:
            lines.append(
                f"    service {service.name} replicas {service.replicas};"
            )
        else:
            lines.append(f"    service {service.name};")
    for chain in app.chains:
        elements = ", ".join(chain.elements)
        lines.append(
            f"    chain {chain.src} -> {chain.dst} {{ {elements} }}"
        )
    for constraint in app.constraints:
        if constraint.kind == "colocate":
            lines.append(
                f"    constrain {constraint.args[0]} colocate "
                f"{constraint.args[1]};"
            )
        elif constraint.kind == "outside_app":
            lines.append(f"    constrain {constraint.args[0]} outside_app;")
        else:  # before / after
            lines.append(
                f"    constrain {constraint.args[0]} {constraint.kind} "
                f"{constraint.args[1]};"
            )
    lines.extend(_print_guarantees(app.guarantees))
    lines.append("}")
    return "\n".join(lines)


def _print_guarantees(guarantees: GuaranteeDecl) -> List[str]:
    flags = []
    if guarantees.reliable:
        flags.append("reliable")
    if guarantees.ordered:
        flags.append("ordered")
    if not flags:
        return []
    return [f"    guarantee {' '.join(flags)};"]


def print_program(program: Program) -> str:
    """Full program as canonical DSL text."""
    chunks: List[str] = []
    for element in program.elements.values():
        chunks.append(print_element(element))
    for filter_def in program.filters.values():
        chunks.append(print_filter(filter_def))
    for app in program.apps.values():
        chunks.append(print_app(app))
    return "\n\n".join(chunks) + "\n"
