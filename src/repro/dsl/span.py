"""Source spans: 1-based (line, column) positions carried through the
DSL front end.

Every AST node produced by the parser carries an optional :class:`Span`
pointing at the token that started it. Spans are *metadata*: they are
excluded from structural equality and hashing (``compare=False`` fields),
so two parses of the same text at different positions — or a parse of
pretty-printed output — remain structurally equal. This is what lets the
printer↔parser round-trip property hold while diagnostics still point at
real source text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A 1-based source position (start of the construct)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


def span_of(node: object) -> "Span | None":
    """The node's span, or None when the node carries none (e.g. nodes
    synthesized by optimization passes)."""
    return getattr(node, "span", None)
