"""Built-in function and UDF registry for the ADN DSL.

The DSL's expression language calls functions by name. Most are simple
builtins (``hash``, ``len``, ``min``); a few are *user-defined functions*
in the paper's sense (§5.1) — operations like compression and encryption
that SQL cannot express and for which platform-specific implementations
are provided. Each registry entry records the semantic properties the
compiler relies on:

* ``deterministic`` — same inputs always give the same output. ``rand()``
  and ``now()`` are not deterministic; elements calling them cannot be
  deduplicated/replicated naively.
* ``pure`` — no side effects outside the expression value.
* ``payload_op`` — touches the (possibly large) RPC payload; such calls
  cannot be offloaded to a switch, which sees only the header window.
* ``platforms`` — which execution platforms can run the function.
* ``cost_us`` — estimated execution cost charged by the simulator's cost
  model per call (plus a per-byte term for payload ops).
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import DslValidationError
from ..platforms import Platform
from .schema import FieldType

ALL_PLATFORMS = frozenset(Platform)
SOFTWARE_ONLY = frozenset(
    {Platform.RPC_LIB, Platform.MRPC, Platform.SIDECAR}
)
SOFTWARE_AND_NIC = SOFTWARE_ONLY | {Platform.SMARTNIC}
SOFTWARE_NIC_KERNEL = SOFTWARE_AND_NIC | {Platform.KERNEL_EBPF}


@dataclass(frozen=True)
class FunctionSpec:
    """Registry entry for one callable DSL function."""

    name: str
    arity: Tuple[int, ...]  # accepted argument counts
    result_type: Optional[FieldType]  # None = same as first argument
    impl: Callable
    deterministic: bool = True
    pure: bool = True
    payload_op: bool = False
    platforms: frozenset = ALL_PLATFORMS
    cost_us: float = 0.05
    cost_per_byte_us: float = 0.0
    doc: str = ""

    def check_arity(self, count: int) -> None:
        if count not in self.arity:
            expected = " or ".join(str(n) for n in self.arity)
            raise DslValidationError(
                f"function {self.name}() takes {expected} argument(s), got {count}"
            )


def _stable_hash(value: object) -> int:
    """64-bit deterministic hash (Python's ``hash`` is salted per-process,
    which would make compiled programs non-reproducible across runs)."""
    data = repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def _as_bytes(value: object) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return repr(value).encode("utf-8")


def _xor_cipher(data: bytes, key: object) -> bytes:
    """Toy symmetric cipher used as the encryption UDF's reference
    implementation. Stands in for AES-GCM in the real system; what matters
    to the compiler is the call's properties, not its cryptography."""
    key_bytes = _as_bytes(key) or b"\x00"
    return bytes(b ^ key_bytes[i % len(key_bytes)] for i, b in enumerate(data))


class FunctionRegistry:
    """Name → :class:`FunctionSpec` mapping with registration support.

    A fresh registry is pre-populated with the builtins; applications add
    their own UDFs with :meth:`register`.
    """

    def __init__(self, rng: Optional[random.Random] = None):
        self._specs: Dict[str, FunctionSpec] = {}
        # The RNG is injectable so simulations are reproducible; ``rand()``
        # reads from it.
        self.rng = rng or random.Random(0)
        self._clock: Callable[[], float] = lambda: 0.0
        self._install_builtins()

    # -- wiring to the simulator -------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Route ``now()`` to the simulator's clock."""
        self._clock = clock

    def bind_rng(self, rng: random.Random) -> None:
        """Route ``rand()`` to a seeded RNG."""
        self.rng = rng

    # -- registry ------------------------------------------------------------

    def register(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            raise DslValidationError(f"function {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> FunctionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise DslValidationError(f"unknown function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> Sequence[str]:
        return tuple(self._specs)

    # -- builtins ---------------------------------------------------------------

    def _install_builtins(self) -> None:
        add = self.register
        add(
            FunctionSpec(
                "now",
                arity=(0,),
                result_type=FieldType.FLOAT,
                impl=lambda: self._clock(),
                deterministic=False,
                cost_us=0.02,
                doc="Current time in seconds (simulated clock).",
            )
        )
        add(
            FunctionSpec(
                "rand",
                arity=(0,),
                result_type=FieldType.FLOAT,
                impl=lambda: self.rng.random(),
                deterministic=False,
                cost_us=0.02,
                doc="Uniform random float in [0, 1).",
            )
        )
        add(
            FunctionSpec(
                "hash",
                arity=(1,),
                result_type=FieldType.INT,
                impl=_stable_hash,
                cost_us=0.05,
                doc="Stable 64-bit hash of any value.",
            )
        )
        add(
            FunctionSpec(
                "len",
                arity=(1,),
                result_type=FieldType.INT,
                impl=lambda v: len(v) if v is not None else 0,
                cost_us=0.02,
                doc="Length of a string/bytes value.",
            )
        )
        add(
            FunctionSpec(
                "min",
                arity=(2,),
                result_type=None,
                impl=min,
                cost_us=0.02,
            )
        )
        add(
            FunctionSpec(
                "max",
                arity=(2,),
                result_type=None,
                impl=max,
                cost_us=0.02,
            )
        )
        add(
            FunctionSpec(
                "abs",
                arity=(1,),
                result_type=None,
                impl=abs,
                cost_us=0.02,
            )
        )
        add(
            FunctionSpec(
                "floor",
                arity=(1,),
                result_type=FieldType.INT,
                impl=lambda v: int(v // 1),
                cost_us=0.02,
            )
        )
        add(
            FunctionSpec(
                "concat",
                arity=(2, 3, 4),
                result_type=FieldType.STR,
                impl=lambda *parts: "".join(str(p) for p in parts),
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.05,
            )
        )
        add(
            FunctionSpec(
                "upper",
                arity=(1,),
                result_type=FieldType.STR,
                impl=lambda s: str(s).upper(),
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.03,
            )
        )
        add(
            FunctionSpec(
                "lower",
                arity=(1,),
                result_type=FieldType.STR,
                impl=lambda s: str(s).lower(),
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.03,
            )
        )
        add(
            FunctionSpec(
                "coalesce",
                arity=(2,),
                result_type=None,
                impl=lambda a, b: a if a is not None else b,
                cost_us=0.02,
            )
        )
        add(
            FunctionSpec(
                "contains",
                arity=(2,),
                result_type=FieldType.BOOL,
                impl=None,  # special-cased: key lookup on a state table
                cost_us=0.04,
                doc="True when a state table's key column contains a value.",
            )
        )
        add(
            FunctionSpec(
                "count",
                arity=(1,),
                result_type=FieldType.INT,
                impl=len,  # applied to a state table's rows by the runtime
                cost_us=0.03,
                doc="Row count of a state table (aggregate).",
            )
        )
        # column aggregates over a state table: sum_of(tab, col) etc.
        # Software-only (a switch cannot scan a table per packet); cost
        # reflects the scan.
        for agg_name, result in (
            ("sum_of", None),
            ("min_of", None),
            ("max_of", None),
            ("avg_of", FieldType.FLOAT),
        ):
            add(
                FunctionSpec(
                    agg_name,
                    arity=(2,),
                    result_type=result,
                    impl=None,  # special-cased: table scan by the runtime
                    platforms=SOFTWARE_ONLY,
                    cost_us=0.5,
                    doc=f"{agg_name}(table, column): column aggregate.",
                )
            )
        # --- UDFs with platform-specific implementations (paper §5.1) ---
        add(
            FunctionSpec(
                "compress",
                arity=(1,),
                result_type=FieldType.BYTES,
                impl=lambda payload: zlib.compress(_as_bytes(payload), level=1),
                payload_op=True,
                platforms=SOFTWARE_AND_NIC,
                cost_us=1.0,
                cost_per_byte_us=0.002,
                doc="zlib-compress a payload (UDF).",
            )
        )
        add(
            FunctionSpec(
                "decompress",
                arity=(1,),
                result_type=FieldType.BYTES,
                impl=lambda payload: zlib.decompress(_as_bytes(payload)),
                payload_op=True,
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.8,
                cost_per_byte_us=0.0015,
                doc="zlib-decompress a payload (UDF).",
            )
        )
        add(
            FunctionSpec(
                "encrypt",
                arity=(2,),
                result_type=FieldType.BYTES,
                impl=lambda payload, key: _xor_cipher(_as_bytes(payload), key),
                payload_op=True,
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.8,
                cost_per_byte_us=0.001,
                doc="Encrypt a payload with a key (UDF).",
            )
        )
        add(
            FunctionSpec(
                "decrypt",
                arity=(2,),
                result_type=FieldType.BYTES,
                impl=lambda payload, key: _xor_cipher(_as_bytes(payload), key),
                payload_op=True,
                platforms=SOFTWARE_AND_NIC,
                cost_us=0.8,
                cost_per_byte_us=0.001,
                doc="Decrypt a payload with a key (UDF).",
            )
        )


#: Shared default registry. Elements compiled without an explicit registry
#: use this one; tests that register custom UDFs should build their own.
DEFAULT_REGISTRY = FunctionRegistry()
