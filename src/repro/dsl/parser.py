"""Recursive-descent parser for the ADN DSL.

Grammar (informal):

.. code-block:: text

    program     := (element | filter | app)*
    element     := ELEMENT ident '{' section* '}'
    section     := meta | state | var | init | handler
    meta        := META '{' (ident ':' literal ';')* '}'
    state       := STATE ident '(' coldef (',' coldef)* ')' [APPEND] ';'
    coldef      := ident ':' type [KEY]
    var         := VAR ident ':' type '=' literal ';'
    init        := INIT '{' stmt* '}'
    handler     := ON? -- spelled as identifier 'on' is not reserved; we use
                   the form:  on request { stmt* }   /  on response { ... }
    stmt        := select | insert | update | delete | set
    filter      := FILTER ident '{' [meta] USE OPERATOR ident ';' '}'
    app         := APP ident '{' (service | chain | constrain | guarantee)* '}'

Expressions use conventional precedence:
``or < and < not < comparison < additive < multiplicative < unary``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import DslSyntaxError
from .ast_nodes import (
    AppDef,
    BinaryOp,
    CaseExpr,
    ChainDecl,
    ColumnDef,
    ColumnRef,
    ConstraintDecl,
    DeleteStmt,
    ElementDef,
    Expr,
    FilterDef,
    FuncCall,
    GuaranteeDecl,
    Handler,
    InsertValues,
    Join,
    Literal,
    Program,
    SelectItem,
    SelectStmt,
    ServiceDecl,
    SetStmt,
    Star,
    Statement,
    StateDecl,
    UnaryOp,
    UpdateStmt,
    VarDecl,
)
from .lexer import tokenize
from .schema import FieldType
from .span import Span
from .tokens import Token, TokenType

_TYPE_KEYWORDS = {"STR", "INT", "FLOAT", "BOOL", "BYTES"}
_COMPARISON_OPS = {
    TokenType.EQ: "==",
    TokenType.EQEQ: "==",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
}


class Parser:
    """Parses a token list into a :class:`Program`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> DslSyntaxError:
        token = self._current
        return DslSyntaxError(f"{message}, found {token!r}", token.line, token.column)

    def _expect(self, type_: TokenType) -> Token:
        if self._current.type is not type_:
            raise self._error(f"expected {type_.value!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected keyword {word}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self._current.type is TokenType.IDENT:
            return self._advance().value
        # allow non-structural keywords (e.g. a table named "log") to be
        # used as identifiers where unambiguous
        if self._current.type is TokenType.KEYWORD:
            return self._advance().value.lower()
        raise self._error("expected identifier")

    def _match_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _match(self, type_: TokenType) -> bool:
        if self._current.type is type_:
            self._advance()
            return True
        return False

    @staticmethod
    def _span(token: Token) -> Span:
        return Span(token.line, token.column)

    @property
    def _here(self) -> Span:
        return self._span(self._current)

    # -- entry point -------------------------------------------------------

    def parse_program(self) -> Program:
        elements: Dict[str, ElementDef] = {}
        filters: Dict[str, FilterDef] = {}
        apps: Dict[str, AppDef] = {}
        while self._current.type is not TokenType.EOF:
            if self._current.is_keyword("ELEMENT"):
                element = self.parse_element()
                if element.name in elements:
                    raise self._error(f"duplicate element {element.name!r}")
                elements[element.name] = element
            elif self._current.is_keyword("FILTER"):
                filt = self.parse_filter()
                if filt.name in filters:
                    raise self._error(f"duplicate filter {filt.name!r}")
                filters[filt.name] = filt
            elif self._current.is_keyword("APP"):
                app = self.parse_app()
                if app.name in apps:
                    raise self._error(f"duplicate app {app.name!r}")
                apps[app.name] = app
            else:
                raise self._error("expected 'element', 'filter', or 'app'")
        return Program(elements=elements, filters=filters, apps=apps)

    # -- element -----------------------------------------------------------

    def parse_element(self) -> ElementDef:
        span = self._here
        self._expect_keyword("ELEMENT")
        name = self._expect_ident()
        self._expect(TokenType.LBRACE)
        meta: Dict[str, object] = {}
        states: List[StateDecl] = []
        variables: List[VarDecl] = []
        init: Tuple[Statement, ...] = ()
        handlers: List[Handler] = []
        while not self._match(TokenType.RBRACE):
            if self._current.is_keyword("META"):
                meta.update(self._parse_meta_block())
            elif self._current.is_keyword("STATE"):
                states.append(self._parse_state_decl())
            elif self._current.is_keyword("VAR"):
                variables.append(self._parse_var_decl())
            elif self._current.is_keyword("INIT"):
                self._advance()
                init = init + self._parse_stmt_block()
            elif self._current.is_keyword("ON") or (
                self._current.type is TokenType.IDENT and self._current.value == "on"
            ):
                handlers.append(self._parse_handler())
            else:
                raise self._error(
                    "expected 'meta', 'state', 'var', 'init', or 'on' in element body"
                )
        return ElementDef(
            name=name,
            meta=meta,
            states=tuple(states),
            vars=tuple(variables),
            init=init,
            handlers=tuple(handlers),
            span=span,
        )

    def _parse_meta_block(self) -> Dict[str, object]:
        self._expect_keyword("META")
        self._expect(TokenType.LBRACE)
        entries: Dict[str, object] = {}
        while not self._match(TokenType.RBRACE):
            key = self._expect_ident()
            self._expect(TokenType.COLON)
            entries[key] = self._parse_meta_value()
            self._expect(TokenType.SEMICOLON)
        return entries

    def _parse_meta_value(self) -> object:
        token = self._current
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.type is TokenType.INT:
            self._advance()
            return int(token.value)
        if token.type is TokenType.FLOAT:
            self._advance()
            return float(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            # bare words like `sender` are allowed as meta values
            self._advance()
            return token.value.lower()
        raise self._error("expected literal meta value")

    def _parse_state_decl(self) -> StateDecl:
        span = self._here
        self._expect_keyword("STATE")
        name = self._expect_ident()
        self._expect(TokenType.LPAREN)
        columns: List[ColumnDef] = []
        while True:
            col_span = self._here
            col_name = self._expect_ident()
            self._expect(TokenType.COLON)
            col_type = self._parse_type()
            is_key = self._match_keyword("KEY")
            columns.append(ColumnDef(col_name, col_type, is_key, span=col_span))
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN)
        append_only = self._match_keyword("APPEND")
        self._expect(TokenType.SEMICOLON)
        return StateDecl(
            name=name,
            columns=tuple(columns),
            append_only=append_only,
            span=span,
        )

    def _parse_var_decl(self) -> VarDecl:
        span = self._here
        self._expect_keyword("VAR")
        name = self._expect_ident()
        self._expect(TokenType.COLON)
        var_type = self._parse_type()
        self._expect(TokenType.EQ)
        init = self._parse_literal()
        self._expect(TokenType.SEMICOLON)
        return VarDecl(name=name, type=var_type, init=init, span=span)

    def _parse_type(self) -> FieldType:
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self._advance()
            return FieldType.from_keyword(token.value)
        raise self._error("expected a type (str, int, float, bool, bytes)")

    def _parse_literal(self) -> Literal:
        token = self._current
        span = self._span(token)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, span=span)
        if token.type is TokenType.INT:
            self._advance()
            return Literal(int(token.value), span=span)
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value), span=span)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True, span=span)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False, span=span)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None, span=span)
        if token.type is TokenType.MINUS:
            self._advance()
            inner = self._parse_literal()
            return Literal(-inner.value, span=span)  # type: ignore[operator]
        raise self._error("expected literal")

    def _parse_handler(self) -> Handler:
        span = self._here
        self._advance()  # 'on'
        kind_token = self._current
        kind = self._expect_ident()
        if kind not in ("request", "response"):
            raise DslSyntaxError(
                "handler must be 'on request' or 'on response'",
                kind_token.line,
                kind_token.column,
            )
        statements = self._parse_stmt_block()
        return Handler(kind=kind, statements=statements, span=span)

    def _parse_stmt_block(self) -> Tuple[Statement, ...]:
        self._expect(TokenType.LBRACE)
        statements: List[Statement] = []
        while not self._match(TokenType.RBRACE):
            statements.append(self.parse_statement())
        return tuple(statements)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._current
        if token.is_keyword("SELECT"):
            return self._parse_select(into=None)
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("SET"):
            return self._parse_set()
        raise self._error("expected SELECT, INSERT, UPDATE, DELETE, or SET")

    def _parse_select(
        self,
        into: Optional[str],
        terminated: bool = True,
        span: Optional[Span] = None,
    ) -> SelectStmt:
        span = span or self._here
        self._expect_keyword("SELECT")
        items: List[object] = [self._parse_select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        source = self._expect_ident()
        joins: List[Join] = []
        while self._match_keyword("JOIN"):
            table = self._expect_ident()
            self._expect_keyword("ON")
            joins.append(Join(table=table, on=self.parse_expr()))
        where = self.parse_expr() if self._match_keyword("WHERE") else None
        if terminated:
            self._expect(TokenType.SEMICOLON)
        return SelectStmt(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            into=into,
            span=span,
        )

    def _parse_select_item(self) -> object:
        if self._current.type is TokenType.STAR:
            self._advance()
            return Star(None)
        # "ident.*" form
        if (
            self._current.type is TokenType.IDENT
            and self._peek(1).type is TokenType.DOT
            and self._peek(2).type is TokenType.STAR
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return Star(table)
        expr = self.parse_expr()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def _parse_insert(self) -> Statement:
        span = self._here
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        if self._current.is_keyword("VALUES"):
            self._advance()
            rows: List[Tuple[Expr, ...]] = []
            while True:
                self._expect(TokenType.LPAREN)
                row: List[Expr] = [self.parse_expr()]
                while self._match(TokenType.COMMA):
                    row.append(self.parse_expr())
                self._expect(TokenType.RPAREN)
                rows.append(tuple(row))
                if not self._match(TokenType.COMMA):
                    break
            self._expect(TokenType.SEMICOLON)
            return InsertValues(table=table, rows=tuple(rows), span=span)
        if self._current.is_keyword("SELECT"):
            return self._parse_select(into=table, span=span)
        raise self._error("expected VALUES or SELECT after INSERT INTO")

    def _parse_update(self) -> UpdateStmt:
        span = self._here
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Expr]] = []
        while True:
            column = self._expect_ident()
            self._expect(TokenType.EQ)
            assignments.append((column, self.parse_expr()))
            if not self._match(TokenType.COMMA):
                break
        where = self.parse_expr() if self._match_keyword("WHERE") else None
        self._expect(TokenType.SEMICOLON)
        return UpdateStmt(
            table=table, assignments=tuple(assignments), where=where, span=span
        )

    def _parse_delete(self) -> DeleteStmt:
        span = self._here
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self.parse_expr() if self._match_keyword("WHERE") else None
        self._expect(TokenType.SEMICOLON)
        return DeleteStmt(table=table, where=where, span=span)

    def _parse_set(self) -> SetStmt:
        span = self._here
        self._expect_keyword("SET")
        var = self._expect_ident()
        self._expect(TokenType.EQ)
        expr = self.parse_expr()
        where = self.parse_expr() if self._match_keyword("WHERE") else None
        self._expect(TokenType.SEMICOLON)
        return SetStmt(var=var, expr=expr, where=where, span=span)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._current.is_keyword("OR"):
            self._advance()
            left = BinaryOp("or", left, self._parse_and(), span=left.span)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._current.is_keyword("AND"):
            self._advance()
            left = BinaryOp("and", left, self._parse_not(), span=left.span)
        return left

    def _parse_not(self) -> Expr:
        if self._current.is_keyword("NOT"):
            span = self._here
            self._advance()
            return UnaryOp("not", self._parse_not(), span=span)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self._current.type in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._advance().type]
            return BinaryOp(op, left, self._parse_additive(), span=left.span)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._current.type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_multiplicative(), span=left.span)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._current.type in (
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
        ):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_unary(), span=left.span)
        return left

    def _parse_unary(self) -> Expr:
        if self._current.type is TokenType.MINUS:
            span = self._here
            self._advance()
            operand = self._parse_unary()
            # fold numeric negation so '-1' is Literal(-1), keeping the
            # printer round-trip structural
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value, span=span)
            return UnaryOp("-", operand, span=span)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.type in (TokenType.STRING, TokenType.INT, TokenType.FLOAT):
            return self._parse_literal()
        if token.is_keyword("TRUE") or token.is_keyword("FALSE"):
            return self._parse_literal()
        if token.is_keyword("NULL"):
            return self._parse_literal()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.IDENT or token.type is TokenType.KEYWORD:
            span = self._span(token)
            name = self._expect_ident()
            if self._current.type is TokenType.LPAREN:
                self._advance()
                args: List[Expr] = []
                if self._current.type is not TokenType.RPAREN:
                    args.append(self.parse_expr())
                    while self._match(TokenType.COMMA):
                        args.append(self.parse_expr())
                self._expect(TokenType.RPAREN)
                return FuncCall(name=name, args=tuple(args), span=span)
            if self._match(TokenType.DOT):
                column = self._expect_ident()
                return ColumnRef(table=name, name=column, span=span)
            return ColumnRef(table=None, name=name, span=span)
        raise self._error("expected expression")

    def _parse_case(self) -> CaseExpr:
        span = self._here
        self._expect_keyword("CASE")
        whens: List[Tuple[Expr, Expr]] = []
        while self._match_keyword("WHEN"):
            condition = self.parse_expr()
            self._expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        default = self.parse_expr() if self._match_keyword("ELSE") else None
        self._expect_keyword("END")
        return CaseExpr(whens=tuple(whens), default=default, span=span)

    # -- filters & apps --------------------------------------------------------

    def parse_filter(self) -> FilterDef:
        span = self._here
        self._expect_keyword("FILTER")
        name = self._expect_ident()
        self._expect(TokenType.LBRACE)
        meta: Dict[str, object] = {}
        operator = None
        while not self._match(TokenType.RBRACE):
            if self._current.is_keyword("META"):
                meta.update(self._parse_meta_block())
            elif self._match_keyword("USE"):
                self._expect_keyword("OPERATOR")
                operator = self._expect_ident()
                self._expect(TokenType.SEMICOLON)
            else:
                raise self._error("expected 'meta' or 'use operator' in filter")
        if operator is None:
            raise self._error(f"filter {name!r} must declare 'use operator'")
        return FilterDef(name=name, operator=operator, meta=meta, span=span)

    def parse_app(self) -> AppDef:
        span = self._here
        self._expect_keyword("APP")
        name = self._expect_ident()
        self._expect(TokenType.LBRACE)
        services: List[ServiceDecl] = []
        chains: List[ChainDecl] = []
        constraints: List[ConstraintDecl] = []
        reliable = False
        ordered = False
        while not self._match(TokenType.RBRACE):
            if self._current.is_keyword("SERVICE"):
                svc_span = self._here
                self._advance()
                svc_name = self._expect_ident()
                replicas = 1
                if self._match_keyword("REPLICAS"):
                    replicas = int(self._expect(TokenType.INT).value)
                self._expect(TokenType.SEMICOLON)
                services.append(
                    ServiceDecl(name=svc_name, replicas=replicas, span=svc_span)
                )
            elif self._current.is_keyword("CHAIN"):
                chain_span = self._here
                self._advance()
                src = self._expect_ident()
                self._expect(TokenType.ARROW)
                dst = self._expect_ident()
                self._expect(TokenType.LBRACE)
                names: List[str] = []
                if self._current.type is not TokenType.RBRACE:
                    names.append(self._expect_ident())
                    while self._match(TokenType.COMMA):
                        names.append(self._expect_ident())
                self._expect(TokenType.RBRACE)
                chains.append(
                    ChainDecl(
                        src=src, dst=dst, elements=tuple(names), span=chain_span
                    )
                )
            elif self._match_keyword("CONSTRAIN"):
                constraints.append(self._parse_constraint())
            elif self._match_keyword("GUARANTEE"):
                while not self._match(TokenType.SEMICOLON):
                    if self._match_keyword("RELIABLE"):
                        reliable = True
                    elif self._match_keyword("ORDERED"):
                        ordered = True
                    else:
                        raise self._error("expected 'reliable' or 'ordered'")
            else:
                raise self._error(
                    "expected 'service', 'chain', 'constrain', or 'guarantee'"
                )
        return AppDef(
            name=name,
            services=tuple(services),
            chains=tuple(chains),
            constraints=tuple(constraints),
            guarantees=GuaranteeDecl(reliable=reliable, ordered=ordered),
            span=span,
        )

    def _parse_constraint(self) -> ConstraintDecl:
        span = self._here
        subject = self._expect_ident()
        if self._match_keyword("COLOCATE"):
            if self._match_keyword("SENDER"):
                side = "sender"
            elif self._match_keyword("RECEIVER"):
                side = "receiver"
            else:
                raise self._error("expected 'sender' or 'receiver'")
            self._expect(TokenType.SEMICOLON)
            return ConstraintDecl(kind="colocate", args=(subject, side), span=span)
        if self._match_keyword("OUTSIDE_APP"):
            self._expect(TokenType.SEMICOLON)
            return ConstraintDecl(kind="outside_app", args=(subject,), span=span)
        if self._match_keyword("BEFORE"):
            other = self._expect_ident()
            self._expect(TokenType.SEMICOLON)
            return ConstraintDecl(kind="before", args=(subject, other), span=span)
        if self._match_keyword("AFTER"):
            other = self._expect_ident()
            self._expect(TokenType.SEMICOLON)
            return ConstraintDecl(kind="after", args=(subject, other), span=span)
        raise self._error(
            "expected 'colocate', 'outside_app', 'before', or 'after'"
        )


def parse(source: str) -> Program:
    """Parse DSL source into a :class:`Program` (elements, filters, apps)."""
    return Parser(source).parse_program()


def parse_element(source: str) -> ElementDef:
    """Parse source containing exactly one element and return it."""
    program = parse(source)
    if len(program.elements) != 1 or program.filters or program.apps:
        raise DslSyntaxError("expected exactly one element definition")
    return next(iter(program.elements.values()))
