"""Field types and RPC schemas.

An ADN views each RPC as a tuple of named, typed fields (paper §5.1). The
application registers the schema of its RPC messages; elements may add
*derived* fields (e.g. a load balancer's chosen destination) that travel in
the generated wire header between processors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..errors import DslValidationError


class FieldType(enum.Enum):
    """Types a tuple field (or state-table column) may take."""

    STR = "str"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    BYTES = "bytes"

    @classmethod
    def from_keyword(cls, word: str) -> "FieldType":
        try:
            return cls(word.lower())
        except ValueError:
            raise DslValidationError(f"unknown type {word!r}") from None

    @property
    def python_type(self) -> type:
        return {
            FieldType.STR: str,
            FieldType.INT: int,
            FieldType.FLOAT: float,
            FieldType.BOOL: bool,
            FieldType.BYTES: bytes,
        }[self]

    def accepts(self, value: object) -> bool:
        """True when a Python value is a valid instance of this type.

        ``int`` is accepted where ``float`` is expected, mirroring SQL
        numeric coercion; ``bool`` is *not* an ``int`` here.
        """
        if value is None:
            return True
        if self is FieldType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is FieldType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.python_type)

    def exemplar_values(self) -> Tuple[object, ...]:
        """Representative concrete values of this type, used to build the
        bounded test vectors the translation validator executes. Ordered
        from "typical" to "edge" (zero / empty)."""
        return {
            FieldType.STR: ("alice", "W", ""),
            FieldType.INT: (7, 1, 0),
            FieldType.FLOAT: (2.5, 1.0, 0.0),
            FieldType.BOOL: (True, False),
            FieldType.BYTES: (b"\x00payload", b"x", b""),
        }[self]


#: Meta-fields every RPC tuple carries implicitly. Elements may read all of
#: them and write ``dst`` (request routing) and ``status``.
META_FIELDS: Dict[str, FieldType] = {
    "src": FieldType.STR,  # sending service instance, e.g. "A.0"
    "dst": FieldType.STR,  # destination service or instance, e.g. "B" / "B.1"
    "rpc_id": FieldType.INT,  # unique per call; response echoes the request's
    "method": FieldType.STR,  # application RPC method name
    "kind": FieldType.STR,  # "request" | "response"
    "status": FieldType.STR,  # "ok" | "aborted:<element>"
}

WRITABLE_META_FIELDS = frozenset({"dst", "status"})


@dataclass(frozen=True)
class FieldSpec:
    """One application-level field of an RPC message."""

    name: str
    type: FieldType
    doc: str = ""


@dataclass
class RpcSchema:
    """The set of application fields carried by an application's RPCs.

    The compiler unions this with :data:`META_FIELDS` and any element-derived
    fields to type-check element programs and to lay out wire headers.
    """

    name: str
    fields: Dict[str, FieldSpec] = field(default_factory=dict)

    @classmethod
    def of(cls, name: str, **types: FieldType) -> "RpcSchema":
        """Build a schema from keyword arguments: ``RpcSchema.of("kv",
        obj_id=FieldType.INT, payload=FieldType.BYTES)``."""
        schema = cls(name)
        for field_name, field_type in types.items():
            schema.add(field_name, field_type)
        return schema

    def add(self, name: str, type_: FieldType, doc: str = "") -> "RpcSchema":
        if name in META_FIELDS:
            raise DslValidationError(
                f"field {name!r} collides with a reserved meta-field"
            )
        if name in self.fields:
            raise DslValidationError(f"duplicate field {name!r} in schema")
        self.fields[name] = FieldSpec(name, type_, doc)
        return self

    def field_type(self, name: str) -> Optional[FieldType]:
        """Type of an application or meta field, or None if unknown."""
        if name in self.fields:
            return self.fields[name].type
        return META_FIELDS.get(name)

    def all_fields(self) -> Dict[str, FieldType]:
        """Application fields plus meta-fields, name → type."""
        merged = {name: spec.type for name, spec in self.fields.items()}
        merged.update(META_FIELDS)
        return merged

    def application_field_names(self) -> Tuple[str, ...]:
        return tuple(self.fields)

    def exemplar_messages(
        self,
        count: int = 4,
        src: str = "A.0",
        dst: str = "B",
        method: str = "call",
        literal_pool: Optional[Dict[FieldType, Tuple[object, ...]]] = None,
    ) -> Tuple[Dict[str, object], ...]:
        """Schema-conforming request tuples for differential testing.

        Message *i* takes the ``i``-th exemplar of each field's type
        (wrapping), so a small count still exercises typical and edge
        values of every field together. ``literal_pool`` extends the
        per-type value pools with values mined elsewhere (e.g. literals
        appearing in a chain's IR) so predicates comparing fields against
        program constants get driven down both branches.
        """
        messages = []
        for index in range(count):
            message: Dict[str, object] = {
                "src": src,
                "dst": dst,
                "rpc_id": 1000 + index,
                "method": method,
                "kind": "request",
                "status": "ok",
            }
            for name, spec in self.fields.items():
                pool = spec.type.exemplar_values()
                if literal_pool and literal_pool.get(spec.type):
                    pool = pool + tuple(literal_pool[spec.type])
                message[name] = pool[index % len(pool)]
            messages.append(message)
        return tuple(messages)

    def validate_message_fields(self, items: Iterable[Tuple[str, object]]) -> None:
        """Raise if any (name, value) pair is ill-typed for this schema."""
        known = self.all_fields()
        for name, value in items:
            expected = known.get(name)
            if expected is not None and not expected.accepts(value):
                raise DslValidationError(
                    f"field {name!r} expects {expected.value}, got "
                    f"{type(value).__name__}"
                )
