"""Control plane: mini cluster manager, the ADN controller, placement
solver, and autoscaler."""

from .controller import (
    AdnController,
    InstalledChain,
    ReconcileRecord,
    RecoveryOrchestrator,
    RecoveryReport,
)
from .k8s import (
    ADDED,
    DELETED,
    KIND_ADN_CONFIG,
    KIND_DEPLOYMENT,
    KIND_NODE,
    MODIFIED,
    MiniKube,
    ResourceObject,
)
from .placement import (
    ClusterSpec,
    PlacementRequest,
    PlacementSolver,
    solve_placement,
)
from .scaling import Autoscaler, AutoscalerConfig, ScalingEvent

__all__ = [
    "ADDED",
    "AdnController",
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterSpec",
    "DELETED",
    "InstalledChain",
    "KIND_ADN_CONFIG",
    "KIND_DEPLOYMENT",
    "KIND_NODE",
    "MODIFIED",
    "MiniKube",
    "PlacementRequest",
    "PlacementSolver",
    "ReconcileRecord",
    "RecoveryOrchestrator",
    "RecoveryReport",
    "ResourceObject",
    "ScalingEvent",
    "solve_placement",
]
