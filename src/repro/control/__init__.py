"""Control plane: mini cluster manager, the ADN controller, placement
solver, autoscaler, and the resilience layer (leases, failover,
epoch-fenced configuration)."""

from .controller import (
    AdnController,
    InstalledChain,
    ReconcileRecord,
    RecoveryOrchestrator,
    RecoveryReport,
)
from .resilience import (
    ControllerNode,
    ControllerPair,
    FailoverReport,
    LeaseStore,
    RecoveryJournal,
    ResilienceResult,
    run_chaos_soak,
    run_chaos_trial,
    run_control_resilience_scenario,
)
from .k8s import (
    ADDED,
    DELETED,
    KIND_ADN_CONFIG,
    KIND_DEPLOYMENT,
    KIND_NODE,
    MODIFIED,
    MiniKube,
    ResourceObject,
)
from .placement import (
    ClusterSpec,
    PlacementRequest,
    PlacementSolver,
    solve_placement,
)
from .scaling import Autoscaler, AutoscalerConfig, ScalingEvent

__all__ = [
    "ADDED",
    "AdnController",
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterSpec",
    "ControllerNode",
    "ControllerPair",
    "DELETED",
    "FailoverReport",
    "InstalledChain",
    "LeaseStore",
    "KIND_ADN_CONFIG",
    "KIND_DEPLOYMENT",
    "KIND_NODE",
    "MODIFIED",
    "MiniKube",
    "PlacementRequest",
    "PlacementSolver",
    "ReconcileRecord",
    "RecoveryJournal",
    "RecoveryOrchestrator",
    "RecoveryReport",
    "ResilienceResult",
    "ResourceObject",
    "ScalingEvent",
    "run_chaos_soak",
    "run_chaos_trial",
    "run_control_resilience_scenario",
    "solve_placement",
]
