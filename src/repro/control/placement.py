"""Placement solver: where should each element run? (paper Q3, Figure 2)

Given a compiled chain, the deployment environment's capabilities, and
the app's constraints, choose a platform and location for every element
such that:

* the element's backend accepts the platform (legality matrix);
* hardware the platform needs actually exists (SmartNICs, programmable
  switch);
* switch-placed elements read only fields inside the P4 parse window of
  the hop's minimal header;
* ``position: sender/receiver`` and ``colocate`` constraints hold;
* ``mandatory`` / ``outside_app`` elements never share the application
  binary (never RPC_LIB);
* the chosen locations are monotonic along the path (an element cannot
  run on the server after one that runs on the switch, etc. — RPCs flow
  one way).

Four strategies mirror Figure 2's configurations: ``software`` (config
0/prototype: everything in the sender's mRPC engine), ``inapp`` (config
1), ``offload`` (configs 2–3: kernel/SmartNIC/switch where legal), and
``scaleout`` (config 4: replicated engine processors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..compiler.compiler import CompiledChain
from ..compiler.headers import check_switch_window, plan_hop_headers
from ..dsl.schema import RpcSchema
from ..errors import HeaderLayoutError, PlacementError
from ..platforms import Platform
from ..runtime.processor import SWITCH_LOCATION, PlacementPlan, PlacementSegment

#: Monotonic path positions: client side ascends toward the wire, then
#: the switch, then the server side descends toward the application.
_PATH_POSITION: Dict[Tuple[str, Platform], int] = {
    ("client", Platform.RPC_LIB): 0,
    ("client", Platform.MRPC): 1,
    ("client", Platform.SIDECAR): 2,
    ("client", Platform.KERNEL_EBPF): 3,
    ("client", Platform.SMARTNIC): 4,
    ("switch", Platform.SWITCH_P4): 5,
    ("server", Platform.SMARTNIC): 6,
    ("server", Platform.KERNEL_EBPF): 7,
    ("server", Platform.SIDECAR): 8,
    ("server", Platform.MRPC): 9,
    ("server", Platform.RPC_LIB): 10,
}


@dataclass
class ClusterSpec:
    """What hardware/software the deployment environment offers."""

    client_machine: str = "client-host"
    server_machine: str = "server-host"
    smartnics: bool = False
    programmable_switch: bool = False
    kernel_offload: bool = True
    sidecars_available: bool = True
    #: the mRPC-style userspace engine is deployed on the hosts; without
    #: it, elements that cannot run in-app or on an offload have no home
    engine_available: bool = True
    #: a warm-standby controller pair (lease-based leadership, journal
    #: handoff — repro.control.resilience) runs the recovery path;
    #: without it the single controller is itself a point of failure
    #: for every element whose recovery depends on it (lint ADN407)
    standby_controller: bool = False

    def machine_for(self, side: str) -> str:
        if side == "client":
            return self.client_machine
        if side == "server":
            return self.server_machine
        return SWITCH_LOCATION


@dataclass
class PlacementRequest:
    """Inputs to one solve."""

    chain: CompiledChain
    schema: RpcSchema
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    strategy: str = "software"  # software | inapp | offload | scaleout
    replicas: int = 1  # for scaleout
    #: element name → "sender"/"receiver" overrides (colocate constraints)
    colocate: Dict[str, str] = field(default_factory=dict)
    #: elements that must not share the app binary
    outside_app: Tuple[str, ...] = ()


_STRATEGIES = ("software", "inapp", "offload", "scaleout")


class PlacementSolver:
    """Solves one placement request into a :class:`PlacementPlan`."""

    def __init__(self, request: PlacementRequest):
        if request.strategy not in _STRATEGIES:
            raise PlacementError(
                f"unknown strategy {request.strategy!r} "
                f"(choose from {_STRATEGIES})"
            )
        self.request = request
        self.chain = request.chain

    # -- per-element candidates ----------------------------------------------

    def _side_for(self, name: str) -> str:
        """'client', 'server', or 'any'."""
        override = self.request.colocate.get(name)
        if override == "sender":
            return "client"
        if override == "receiver":
            return "server"
        position = self.chain.elements[name].ir.position
        if position == "sender":
            return "client"
        if position == "receiver":
            return "server"
        return "any"

    def _legal_platforms(self, name: str) -> List[Platform]:
        compiled = self.chain.elements[name]
        legal_backends = set(compiled.legal_backends())
        platforms: List[Platform] = []
        for platform in Platform:
            if platform.backend_name not in legal_backends:
                continue
            if platform is Platform.SMARTNIC and not self.request.cluster.smartnics:
                continue
            if (
                platform is Platform.SWITCH_P4
                and not self.request.cluster.programmable_switch
            ):
                continue
            if (
                platform is Platform.KERNEL_EBPF
                and not self.request.cluster.kernel_offload
            ):
                continue
            if (
                platform is Platform.SIDECAR
                and not self.request.cluster.sidecars_available
            ):
                continue
            if (
                platform is Platform.MRPC
                and not self.request.cluster.engine_available
            ):
                continue
            if platform.in_app_binary and self._must_leave_app(name):
                continue
            platforms.append(platform)
        if not platforms:
            raise PlacementError(
                f"element {name!r} has no feasible platform in this "
                "environment"
            )
        return platforms

    def _must_leave_app(self, name: str) -> bool:
        if name in self.request.outside_app:
            return True
        return self.chain.elements[name].ir.mandatory

    def _preference(self, platform: Platform) -> int:
        """Lower = more preferred, per strategy."""
        strategy = self.request.strategy
        if strategy in ("software", "scaleout"):
            order = [
                Platform.MRPC,
                Platform.RPC_LIB,
                Platform.KERNEL_EBPF,
                Platform.SIDECAR,
                Platform.SMARTNIC,
                Platform.SWITCH_P4,
            ]
        elif strategy == "inapp":
            order = [
                Platform.RPC_LIB,
                Platform.MRPC,
                Platform.KERNEL_EBPF,
                Platform.SIDECAR,
                Platform.SMARTNIC,
                Platform.SWITCH_P4,
            ]
        else:  # offload
            order = [
                Platform.SWITCH_P4,
                Platform.SMARTNIC,
                Platform.KERNEL_EBPF,
                Platform.MRPC,
                Platform.RPC_LIB,
                Platform.SIDECAR,
            ]
        return order.index(platform)

    # -- the solve -------------------------------------------------------------

    def solve(self) -> PlacementPlan:
        order = list(self.chain.element_order)
        if self.request.strategy in ("offload", "inapp"):
            order = self._reorder_for_placement(order)
        # all feasible (pref, position, side, platform) per element
        per_element: List[List[Tuple[int, int, str, Platform]]] = []
        for name in order:
            side_constraint = self._side_for(name)
            candidates: List[Tuple[int, int, str, Platform]] = []
            for platform in self._legal_platforms(name):
                for side in self._sides_of(platform, side_constraint):
                    if platform is Platform.SWITCH_P4 and not self._switch_ok(
                        name
                    ):
                        continue
                    candidates.append(
                        (
                            self._preference(platform),
                            _PATH_POSITION[(side, platform)],
                            side,
                            platform,
                        )
                    )
            if not candidates:
                raise PlacementError(
                    f"element {name!r} has no feasible placement under the "
                    "side/legality constraints"
                )
            per_element.append(candidates)
        # pass 1 (right to left): the maximum position each element may
        # take so that every later element can still be placed after it
        ceilings = [0] * len(order)
        ceiling = max(_PATH_POSITION.values())
        for index in range(len(order) - 1, -1, -1):
            feasible = [
                position
                for _pref, position, _side, _platform in per_element[index]
                if position <= ceiling
            ]
            if not feasible:
                raise PlacementError(
                    f"no placement for {order[index]!r} satisfies path "
                    f"order (every candidate exceeds position {ceiling})"
                )
            ceilings[index] = max(feasible)
            ceiling = ceilings[index]
        # pass 2 (left to right): best preference within [floor, ceiling
        # of the next element]
        choices: List[Tuple[str, str, Platform]] = []
        floor = 0
        for index, name in enumerate(order):
            upper = (
                ceilings[index + 1]
                if index + 1 < len(order)
                else max(_PATH_POSITION.values())
            )
            viable = [
                candidate
                for candidate in per_element[index]
                if floor <= candidate[1] <= upper
            ]
            if not viable:
                raise PlacementError(
                    f"no placement for {name!r} satisfies path order and "
                    f"constraints (needs position in [{floor}, {upper}])"
                )
            viable.sort()
            _pref, position, side, platform = viable[0]
            floor = position
            choices.append((name, side, platform))
        return self._build_plan(choices)

    def _reorder_for_placement(self, order: List[str]) -> List[str]:
        """Placement-friendly reorder (paper Figure 2 config 3): sort
        elements toward their ideal path position — sender-pinned
        software first, offloadable elements toward the wire/switch,
        receiver-pinned last — swapping only commuting pairs. This is how
        "access control moves to the switch before decompression after
        the compiler determines the reorder preserves semantics"; for
        the in-app strategy it pushes mandatory (outside-binary) elements
        behind the in-app run."""
        from ..ir.passes.reorder import reorder_by_priority

        analyses = self.chain.analyses()
        offload = self.request.strategy == "offload"

        def desired_position(name: str) -> int:
            side = self._side_for(name)
            if side == "client":
                return 0
            if side == "server":
                return 9
            if not offload:  # inapp: in-app-able first, mandatory after
                return 1 if self._must_leave_app(name) else 0
            compiled = self.chain.elements[name]
            legal = set(compiled.legal_backends())
            if (
                "p4" in legal
                and self.request.cluster.programmable_switch
                and self._switch_ok(name)
            ):
                return 5
            if ("ebpf" in legal or "nic" in legal) and (
                self.request.cluster.smartnics
                or self.request.cluster.kernel_offload
            ):
                return 3
            return 1

        reordered, _changed = reorder_by_priority(
            order, analyses, desired_position, ()
        )
        return reordered

    def _sides_of(self, platform: Platform, constraint: str) -> List[str]:
        if platform is Platform.SWITCH_P4:
            # the switch is on neither host; position constraints that pin
            # an element to a host exclude the switch
            return ["switch"] if constraint == "any" else []
        if constraint == "any":
            return ["client", "server"]
        return [constraint]

    def _switch_ok(self, name: str) -> bool:
        """Check the P4 parse-window constraint for this element at its
        hop using the chain's minimal headers."""
        index = self.chain.element_order.index(name)
        plans = plan_hop_headers(self.chain.ir, self.request.schema, [index - 1])
        layout = plans[0].layout
        analysis = self.chain.elements[name].analysis
        handler = analysis.handlers.get("request")
        reads = sorted(handler.fields_read) if handler else []
        try:
            check_switch_window(layout, reads)
        except HeaderLayoutError:
            return False
        return True

    def _build_plan(
        self, choices: Sequence[Tuple[str, str, Platform]]
    ) -> PlacementPlan:
        cluster = self.request.cluster
        segments: List[PlacementSegment] = []
        for name, side, platform in choices:
            machine = cluster.machine_for(side)
            replicas = (
                self.request.replicas
                if self.request.strategy == "scaleout"
                and platform in (Platform.MRPC, Platform.SIDECAR)
                else 1
            )
            if (
                segments
                and segments[-1].platform is platform
                and segments[-1].machine == machine
                and segments[-1].replicas == replicas
            ):
                last = segments[-1]
                segments[-1] = PlacementSegment(
                    platform=platform,
                    machine=machine,
                    elements=last.elements + (name,),
                    stages=self._local_stages(last.elements + (name,)),
                    replicas=replicas,
                )
            else:
                segments.append(
                    PlacementSegment(
                        platform=platform,
                        machine=machine,
                        elements=(name,),
                        stages=((name,),),
                        replicas=replicas,
                    )
                )
        client_transport = self._transport_mode(
            cluster.client_machine, segments
        )
        server_transport = self._transport_mode(
            cluster.server_machine, segments
        )
        return PlacementPlan(
            segments=segments,
            client_transport=client_transport,
            server_transport=server_transport,
            description=f"strategy={self.request.strategy}",
        )

    def _local_stages(
        self, elements: Tuple[str, ...]
    ) -> Tuple[Tuple[str, ...], ...]:
        """Restrict the chain's parallel stages to one segment's
        elements, preserving stage grouping."""
        local: List[Tuple[str, ...]] = []
        member_set = set(elements)
        for stage in self.chain.ir.stages:
            members = tuple(name for name in stage if name in member_set)
            if members:
                local.append(members)
        return tuple(local)

    def _transport_mode(
        self, machine: str, segments: Sequence[PlacementSegment]
    ) -> str:
        """Proxyless when the machine hosts only in-app/kernel elements
        (Figure 2 config 1: 'akin to gRPC proxyless'); engine otherwise."""
        local = [seg for seg in segments if seg.machine == machine]
        if not local:
            return "engine"
        if all(
            seg.platform in (Platform.RPC_LIB, Platform.KERNEL_EBPF)
            for seg in local
        ):
            return "proxyless"
        return "engine"


def solve_placement(request: PlacementRequest) -> PlacementPlan:
    """Convenience wrapper."""
    return PlacementSolver(request).solve()
