"""The ADN runtime controller (paper Figure 3, §5.2).

A logically centralized component that:

* watches the cluster manager for ``ADNConfig`` (the DSL program) and
  ``Deployment`` (service replica sets) changes;
* compiles the program and solves placement for every chain;
* installs/updates data-plane processors — pushing replica sets into
  load-balancer state tables, and hot-swapping element code while
  preserving element state (the state/code decoupling of §5.2).

The controller is deliberately synchronous: reconciliation runs to
completion on each watch event, which is the level-triggered model real
operators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..compiler.compiler import AdnCompiler, CompiledApp, CompiledChain
from ..dsl.parser import parse
from ..dsl.schema import RpcSchema
from ..dsl.stdlib import load_stdlib
from ..dsl.validator import validate_program
from ..errors import AdnError, ControlPlaneError, StaleEpochError
from ..runtime.mrpc import AdnMrpcStack
from ..runtime.processor import PlacementPlan
from .k8s import (
    DELETED,
    KIND_ADN_CONFIG,
    KIND_DEPLOYMENT,
    MiniKube,
    ResourceObject,
)
from .placement import ClusterSpec, PlacementRequest, solve_placement


@dataclass
class InstalledChain:
    """A chain the controller currently manages on the data plane."""

    chain: CompiledChain
    plan: PlacementPlan
    stack: Optional[AdnMrpcStack] = None


@dataclass
class ReconcileRecord:
    """Audit trail entry for one reconciliation."""

    generation: int
    trigger: str
    actions: List[str] = field(default_factory=list)


class AdnController:
    """Watches the cluster manager and keeps the data plane in sync."""

    def __init__(
        self,
        kube: MiniKube,
        schema: RpcSchema,
        cluster_spec: Optional[ClusterSpec] = None,
        compiler: Optional[AdnCompiler] = None,
        strategy: str = "software",
    ):
        self.kube = kube
        self.schema = schema
        self.cluster_spec = cluster_spec or ClusterSpec()
        self.compiler = compiler or AdnCompiler()
        self.strategy = strategy
        self.generation = 0
        self.compiled: Optional[CompiledApp] = None
        self.installed: Dict[Tuple[str, str], InstalledChain] = {}
        self.history: List[ReconcileRecord] = []
        self._unsubscribe = kube.watch(
            self._on_event, kinds=[KIND_ADN_CONFIG, KIND_DEPLOYMENT]
        )

    def close(self) -> None:
        self._unsubscribe()

    # -- watch handling ------------------------------------------------------

    def _on_event(self, event: str, obj: ResourceObject) -> None:
        trigger = f"{event} {obj.kind}/{obj.name}"
        if obj.kind == KIND_ADN_CONFIG:
            if event == DELETED:
                self.compiled = None
                self.installed.clear()
                self._record(trigger, ["uninstalled all chains"])
                return
            self._reconcile_config(obj, trigger)
        elif obj.kind == KIND_DEPLOYMENT:
            self._reconcile_deployment(obj, trigger)

    def _reconcile_config(self, obj: ResourceObject, trigger: str) -> None:
        try:
            self._reconcile_config_inner(obj, trigger)
        except AdnError as error:
            # a bad program must not take down the controller or the
            # running data plane: record the failure, keep serving the
            # last good configuration
            self._record(trigger, [f"REJECTED: {error}"])

    def _reconcile_config_inner(
        self, obj: ResourceObject, trigger: str
    ) -> None:
        source = str(obj.spec["program"])
        app_name = str(obj.spec["app"])
        if "strategy" in obj.spec:
            self.strategy = str(obj.spec["strategy"])
        program = load_stdlib().merged(parse(source))
        program = validate_program(
            program, schema=self.schema, registry=self.compiler.registry
        )
        compiled = self.compiler.compile_app(program, app_name, self.schema)
        self.compiled = compiled
        actions: List[str] = []
        for chain in compiled.chains:
            plan = self._solve(chain)
            key = (chain.decl.src, chain.decl.dst)
            previous = self.installed.get(key)
            self.installed[key] = InstalledChain(chain=chain, plan=plan)
            if previous is not None and previous.stack is not None:
                self._hot_update(previous, self.installed[key])
                actions.append(
                    f"hot-updated chain {key[0]}->{key[1]} "
                    f"({len(chain.element_order)} elements)"
                )
            else:
                actions.append(
                    f"installed chain {key[0]}->{key[1]}: "
                    f"{', '.join(chain.element_order)}"
                )
        self._push_endpoints(actions)
        self._record(trigger, actions)

    def _reconcile_deployment(self, obj: ResourceObject, trigger: str) -> None:
        actions: List[str] = []
        self._push_endpoints(actions)
        self._record(trigger, actions)

    def _record(self, trigger: str, actions: List[str]) -> None:
        self.generation += 1
        self.history.append(
            ReconcileRecord(
                generation=self.generation, trigger=trigger, actions=actions
            )
        )

    # -- placement & data-plane updates --------------------------------------------

    def _solve(self, chain: CompiledChain) -> PlacementPlan:
        outside_app = tuple(
            constraint.args[0]
            for constraint in (
                self.compiled.app.constraints if self.compiled else ()
            )
            if constraint.kind == "outside_app"
        )
        colocate = {
            constraint.args[0]: constraint.args[1]
            for constraint in (
                self.compiled.app.constraints if self.compiled else ()
            )
            if constraint.kind == "colocate"
        }
        request = PlacementRequest(
            chain=chain,
            schema=self.schema,
            cluster=self.cluster_spec,
            strategy=self.strategy,
            colocate=colocate,
            outside_app=outside_app,
        )
        return solve_placement(request)

    def replicas_of(self, service: str) -> int:
        obj = self.kube.get(KIND_DEPLOYMENT, service)
        if obj is None:
            return 1
        return int(obj.spec.get("replicas", 1))

    def _push_endpoints(self, actions: List[str]) -> None:
        """Install replica sets into every running load balancer's
        endpoints table (hot, no pause: keyed upsert)."""
        for (_src, dst), installed in self.installed.items():
            if installed.stack is None:
                continue
            replicas = [
                f"{dst}.{index + 1}"
                for index in range(self.replicas_of(dst))
            ]
            for processor in installed.stack.processors:
                for name in processor.segment.elements:
                    element_ir = installed.chain.elements[name].ir
                    if any(
                        decl.name == "endpoints" for decl in element_ir.states
                    ):
                        processor.seed_endpoints(name, replicas)
                        actions.append(
                            f"updated {name} endpoints to {replicas}"
                        )

    def _hot_update(
        self, previous: InstalledChain, current: InstalledChain
    ) -> None:
        """Swap element code on a live stack, carrying state across
        (paper §5.2: state decoupling enables hot update)."""
        stack = previous.stack
        assert stack is not None
        old_state: Dict[str, object] = {}
        for processor in stack.processors:
            for name in processor.segment.elements:
                old_state[name] = processor.element_state(name).snapshot()
        new_stack_needed = (
            current.plan.segments != previous.plan.segments
            or current.chain.element_order != previous.chain.element_order
        )
        if new_stack_needed:
            # placement changed: the caller must re-install; keep the old
            # stack serving until then
            current.stack = None
            return
        for processor in stack.processors:
            for name in processor.segment.elements:
                artifact = current.chain.elements[name].artifact("python")
                fresh = artifact.factory(on_func_call=processor._on_func_call)
                snapshot = old_state.get(name)
                if snapshot is not None:
                    try:
                        fresh.state.load_snapshot(snapshot)
                    except Exception:
                        pass  # schema changed: fresh state is correct
                processor.instances[name] = fresh
        current.stack = stack

    # -- data-plane installation ---------------------------------------------------

    def install_stack(
        self,
        sim,
        cluster,
        src: str,
        dst: str,
        handcoded: bool = False,
    ) -> AdnMrpcStack:
        """Build a runnable stack for one managed chain."""
        key = (src, dst)
        if key not in self.installed:
            raise ControlPlaneError(f"no chain {src} -> {dst} installed")
        installed = self.installed[key]
        stack = AdnMrpcStack(
            sim,
            cluster,
            installed.chain,
            self.schema,
            self.compiler.registry,
            plan=installed.plan,
            handcoded=handcoded,
            client_service=src,
            server_service=dst,
            server_replicas=self.replicas_of(dst),
            filters=list(installed.chain.filters.values()),
            filter_order=list(installed.chain.decl.elements),
            guarantees=(
                self.compiled.app.guarantees if self.compiled else None
            ),
        )
        installed.stack = stack
        self._push_endpoints([])
        return stack


# -- self-healing recovery (repro.faults) -----------------------------------


@dataclass
class RecoveryReport:
    """What one recovery did, in the §5.2 vocabulary: the blackout the
    application saw, split into detection and repair, with the state
    volumes that explain it."""

    machine: str
    suspected_at: float
    recovered_at: float
    #: ground-truth crash instant when the injector shared it (a real
    #: controller only knows ``suspected_at``)
    crashed_at: Optional[float] = None
    #: "crash" (restore from the warm standby) or "gray" (the machine
    #: is alive but degraded: state migrates off it directly)
    kind: str = "crash"
    rows_restored: int = 0
    deltas_replayed: int = 0
    elements_moved: Tuple[str, ...] = ()
    plan_description: str = ""
    restore_s: float = 0.0
    #: data-plane counters at recovery completion (cumulative per stack)
    rpcs_lost: int = 0
    rpcs_retried: int = 0
    duplicate_server_executions: int = 0

    @property
    def detection_latency_s(self) -> Optional[float]:
        if self.crashed_at is None:
            return None
        return self.suspected_at - self.crashed_at

    @property
    def unavailability_s(self) -> float:
        """The application-visible window: from the crash (or, without
        ground truth, the suspicion) until the re-solved plan with
        restored state is serving."""
        start = self.crashed_at if self.crashed_at is not None else self.suspected_at
        return self.recovered_at - start

    def summary(self) -> str:
        lines = [
            f"machine {self.machine} recovered in "
            f"{self.unavailability_s * 1e3:.2f} ms",
        ]
        if self.detection_latency_s is not None:
            lines.append(
                f"  detection latency: {self.detection_latency_s * 1e3:.2f} ms"
            )
        lines.append(
            f"  state restored: {self.rows_restored} rows, "
            f"{self.deltas_replayed} deltas replayed "
            f"({self.restore_s * 1e6:.1f} us blackout restore)"
        )
        lines.append(
            f"  elements moved: {', '.join(self.elements_moved) or '(none)'}"
        )
        lines.append(f"  new plan: {self.plan_description}")
        lines.append(
            f"  data plane: {self.rpcs_lost} attempts lost, "
            f"{self.rpcs_retried} retries, "
            f"{self.duplicate_server_executions} duplicate server executions"
        )
        return "\n".join(lines)


class RecoveryOrchestrator:
    """Reacts to failure-detector suspicions by healing one stack:
    re-solve placement on the surviving cluster, swap the plan in, and
    restore displaced element state from the checkpointer's warm
    standby (shadow + delta backlog).

    Wire it up with ``detector.on_suspect(orchestrator.suspect_sink)``.
    Recovery only re-homes elements; if the suspect machine is one of
    the ClusterSpec hosts themselves (the apps' homes), the re-solve
    still targets them — this orchestrator heals the *element* layer,
    matching the paper's controller scope.
    """

    def __init__(
        self,
        sim,
        stack: AdnMrpcStack,
        schema: RpcSchema,
        cluster_spec: Optional[ClusterSpec] = None,
        strategy: str = "software",
        checkpointer=None,
        telemetry=None,
        detector=None,
        crash_times: Optional[Dict[str, float]] = None,
        epoch_source=None,
        alive_fn=None,
        push_ok_fn=None,
        pre_apply_delay_s: float = 0.0,
        push_retry_interval_s: float = 0.005,
        journal=None,
    ):
        self.sim = sim
        self.stack = stack
        self.schema = schema
        self.cluster_spec = cluster_spec or ClusterSpec()
        self.strategy = strategy
        self.checkpointer = checkpointer
        self.telemetry = telemetry
        self.detector = detector
        #: injector ground truth (FaultInjector.crash_times), if shared
        self.crash_times = crash_times if crash_times is not None else {}
        #: resilience hooks (repro.control.resilience). ``epoch_source``
        #: mints the epoch stamped on every re-solved plan (None keeps
        #: legacy unfenced epoch-0 plans). ``alive_fn`` is this
        #: controller's own liveness — checked across every yield so a
        #: controller crash *abandons* the recovery mid-flight instead
        #: of impossibly completing it. ``pre_apply_delay_s`` models the
        #: controller-side re-solve/push latency (the window a crash or
        #: partition can land in). ``journal`` is a write-ahead record
        #: of open recoveries a warm standby resumes from.
        self.epoch_source = epoch_source
        self.alive_fn = alive_fn
        #: ``push_ok_fn`` is the controller→data-plane channel: a
        #: control-partitioned controller keeps computing (it does not
        #: know it is cut off) but its plan push cannot land until the
        #: partition heals — by which time a new leader's epoch fences it
        self.push_ok_fn = push_ok_fn
        self.pre_apply_delay_s = pre_apply_delay_s
        self.push_retry_interval_s = push_retry_interval_s
        self.journal = journal
        self.reports: List[RecoveryReport] = []
        self.abandoned_recoveries = 0
        self.stale_plan_rejections = 0
        self._in_progress: set = set()

    def _alive(self) -> bool:
        return self.alive_fn() if self.alive_fn is not None else True

    def suspect_sink(self, suspicion) -> None:
        """Detector callback: start recovery if the suspect machine
        hosts any of our stack's processors."""
        machine = suspicion.machine
        if machine in self._in_progress:
            return
        hosted = [
            seg for seg in self.stack.plan.segments if seg.machine == machine
        ]
        if not hosted:
            return
        self._in_progress.add(machine)
        graceful = getattr(suspicion, "kind", "crash") == "gray"
        self.sim.process(
            self._recover(machine, suspicion.at_s, graceful=graceful)
        )

    def recover_now(self, machine: str, suspected_at: float) -> bool:
        """Explicitly (re)start recovery for a machine — the takeover
        path: a standby resuming a journaled recovery its dead
        predecessor left open. Returns False if one is already
        running here."""
        if machine in self._in_progress:
            return False
        self._in_progress.add(machine)
        self.sim.process(self._recover(machine, suspected_at))
        return True

    def _recover(
        self, machine: str, suspected_at: float, graceful: bool = False
    ) -> Generator:
        stack = self.stack
        if self.journal is not None:
            self.journal.open(machine, suspected_at)
        if self.pre_apply_delay_s > 0.0:
            # controller-side work (re-solve, validation, push) takes
            # real time; a controller death inside this window is what
            # orphans a recovery without a warm standby
            yield self.sim.timeout(self.pre_apply_delay_s)
        if not self._alive():
            self.abandoned_recoveries += 1
            self._in_progress.discard(machine)
            return None
        if self.push_ok_fn is not None:
            # the push channel is severed (control partition): keep
            # retrying — the stale-controller-wakes-up case the epoch
            # fence exists for
            while not self.push_ok_fn():
                yield self.sim.timeout(self.push_retry_interval_s)
                if not self._alive():
                    self.abandoned_recoveries += 1
                    self._in_progress.discard(machine)
                    return None
        old_locations = stack.plan.element_locations()
        displaced = tuple(
            name
            for name, (_platform, location) in old_locations.items()
            if location == machine
        )
        # re-solve on the surviving cluster: the solver only ever places
        # on the ClusterSpec hosts and the switch, so a crashed third
        # machine drops out of the plan naturally
        request = PlacementRequest(
            chain=stack.chain,
            schema=self.schema,
            cluster=self.cluster_spec,
            strategy=self.strategy,
        )
        new_plan = solve_placement(request)
        if self.epoch_source is not None:
            new_plan.epoch = self.epoch_source()
        try:
            old_processors = stack.apply_plan(new_plan)
        except StaleEpochError:
            # a newer controller already reconfigured the mesh while we
            # were working (we are the deposed half of a split brain):
            # stand down, our whole view is superseded
            self.stale_plan_rejections += 1
            self._in_progress.discard(machine)
            return None
        # the dead host's un-streamed delta-log tail is gone; account it
        # — only after the fence admitted us, so a deposed controller
        # never drains a watch its successor already retargeted. A gray
        # machine is alive and its log still drains; nothing is marked.
        if self.checkpointer is not None and not graceful:
            for element in displaced:
                if element in getattr(self.checkpointer, "_watches", {}):
                    self.checkpointer.mark_crashed(element)
        if self.telemetry is not None:
            for processor in old_processors:
                self.telemetry.deregister(processor)
            self.telemetry.register_stack(stack)
        # survivors keep their state: their machines never lost memory,
        # so the rebuild carries it over directly (a warm local copy,
        # off the blackout path). In a graceful (gray) recovery the
        # "displaced" elements are survivors too — their host is slow,
        # not dead — so their state migrates directly as well.
        old_state: Dict[str, object] = {}
        for processor in old_processors:
            for name in processor.segment.elements:
                if graceful or name not in displaced:
                    old_state[name] = processor.element_state(name).snapshot()
        for processor in stack.processors:
            for name in processor.segment.elements:
                if name in old_state:
                    processor.element_state(name).load_snapshot(
                        old_state[name]
                    )
        # displaced elements restore from the warm standby: shadow is
        # already resident, the blackout pays only the backlog replay
        rows_restored = 0
        deltas_replayed = 0
        restore_s = 0.0
        if self.checkpointer is not None:
            watched = getattr(self.checkpointer, "_watches", {})
            for element in displaced:
                if element not in watched:
                    continue
                target = self._store_of(element)
                if target is None:
                    continue
                if not graceful:
                    restore = yield self.sim.process(
                        self.checkpointer.restore(element, target)
                    )
                    rows_restored += restore.rows_restored
                    deltas_replayed += restore.deltas_replayed
                    restore_s += restore.restore_s
                    if not self._alive():
                        # died between restore and retarget: leave the
                        # journal entry open so a standby re-runs it
                        self.abandoned_recoveries += 1
                        self._in_progress.discard(machine)
                        return None
                new_home = stack.plan.element_locations()[element][1]
                self.checkpointer.retarget(
                    element,
                    target,
                    live_of=lambda home=new_home: stack.cluster.machine_up(
                        home
                    ),
                )
        if self.detector is not None:
            self.detector.clear(machine)
        if self.journal is not None:
            self.journal.close(machine)
        report = RecoveryReport(
            machine=machine,
            suspected_at=suspected_at,
            recovered_at=self.sim.now,
            crashed_at=self.crash_times.get(machine),
            kind="gray" if graceful else "crash",
            rows_restored=rows_restored,
            deltas_replayed=deltas_replayed,
            elements_moved=displaced,
            plan_description=new_plan.description,
            restore_s=restore_s,
            rpcs_lost=stack.rpcs_lost,
            rpcs_retried=(
                stack.retry_stats.retries
                if stack.retry_stats is not None
                else 0
            ),
            duplicate_server_executions=stack.duplicate_server_executions,
        )
        self.reports.append(report)
        self._in_progress.discard(machine)
        return report

    def _store_of(self, element: str):
        for processor in self.stack.processors:
            if element in processor.segment.elements:
                return processor.element_state(element)
        return None
