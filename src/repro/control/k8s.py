"""Mini cluster manager (the prototype's Kubernetes integration, §6).

The paper's controller "integrates with Kubernetes ... a Kubernetes
custom resource called ADNConfig which developers use to provide ADN
programs. The ADN controller watches for changes to this resource or to
the deployment." This module provides the watchable resource store that
plays the API-server role: typed resources, versioned updates, and
watch callbacks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ControlPlaneError

#: resource kinds the controller understands
KIND_ADN_CONFIG = "ADNConfig"
KIND_DEPLOYMENT = "Deployment"
KIND_NODE = "Node"

KNOWN_KINDS = frozenset({KIND_ADN_CONFIG, KIND_DEPLOYMENT, KIND_NODE})

#: watch event types
ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"


@dataclass(frozen=True)
class ResourceObject:
    """One stored resource with its version."""

    kind: str
    name: str
    spec: Dict[str, object]
    version: int


WatchCallback = Callable[[str, ResourceObject], None]


@dataclass
class _Watch:
    callback: WatchCallback
    kinds: Optional[Tuple[str, ...]]  # None = all kinds


class MiniKube:
    """An in-process resource store with watches.

    Not a network server: controllers in this reproduction run in the
    same process as the simulator, so the store just invokes callbacks
    synchronously in registration order — equivalent semantics to a
    single-writer API server with level-triggered watches.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str], ResourceObject] = {}
        self._watches: List[_Watch] = []
        self._versions = itertools.count(1)

    # -- CRUD -------------------------------------------------------------

    def apply(self, kind: str, name: str, spec: Dict[str, object]) -> ResourceObject:
        """Create or update a resource; notifies watchers."""
        if kind not in KNOWN_KINDS:
            raise ControlPlaneError(f"unknown resource kind {kind!r}")
        key = (kind, name)
        existing = self._store.get(key)
        obj = ResourceObject(
            kind=kind, name=name, spec=dict(spec), version=next(self._versions)
        )
        self._store[key] = obj
        self._notify(ADDED if existing is None else MODIFIED, obj)
        return obj

    def delete(self, kind: str, name: str) -> None:
        key = (kind, name)
        obj = self._store.pop(key, None)
        if obj is None:
            raise ControlPlaneError(f"{kind}/{name} not found")
        self._notify(DELETED, obj)

    def get(self, kind: str, name: str) -> Optional[ResourceObject]:
        return self._store.get((kind, name))

    def list(self, kind: str) -> List[ResourceObject]:
        return sorted(
            (obj for (k, _n), obj in self._store.items() if k == kind),
            key=lambda o: o.name,
        )

    # -- watches ------------------------------------------------------------

    def watch(
        self, callback: WatchCallback, kinds: Optional[List[str]] = None
    ) -> Callable[[], None]:
        """Register a watch; returns an unsubscribe function. The callback
        immediately receives ADDED events for existing matching resources
        (level-triggered semantics)."""
        watch = _Watch(
            callback=callback, kinds=tuple(kinds) if kinds else None
        )
        self._watches.append(watch)
        for obj in sorted(self._store.values(), key=lambda o: o.version):
            if watch.kinds is None or obj.kind in watch.kinds:
                callback(ADDED, obj)

        def unsubscribe() -> None:
            if watch in self._watches:
                self._watches.remove(watch)

        return unsubscribe

    def _notify(self, event: str, obj: ResourceObject) -> None:
        for watch in list(self._watches):
            if watch.kinds is None or obj.kind in watch.kinds:
                watch.callback(event, obj)

    # -- convenience constructors ---------------------------------------------

    def apply_adn_config(
        self,
        name: str,
        program_source: str,
        app: str,
        strategy: Optional[str] = None,
    ) -> ResourceObject:
        """The ADNConfig custom resource (paper §6). ``strategy``
        optionally selects the placement strategy (software/inapp/
        offload/scaleout)."""
        spec: Dict[str, object] = {"program": program_source, "app": app}
        if strategy is not None:
            spec["strategy"] = strategy
        return self.apply(KIND_ADN_CONFIG, name, spec)

    def apply_deployment(
        self, service: str, replicas: int, machine: str = "server-host"
    ) -> ResourceObject:
        if replicas < 1:
            raise ControlPlaneError("replicas must be >= 1")
        return self.apply(
            KIND_DEPLOYMENT,
            service,
            {"service": service, "replicas": replicas, "machine": machine},
        )
