"""Autoscaling: watch utilization, scale processors out/in without
disrupting the application (paper Q3, Figure 2 configuration 4).

``Autoscaler`` is a policy loop: it samples a processor resource's
utilization over a window and decides scale-out (split state, add
capacity) or scale-in (merge state, remove capacity). Scaling uses
:class:`repro.state.migration.Migrator`, so the only data-plane impact
is the flip pause, during which the processor's queue buffers —
requests are delayed, never dropped.

Overload escalation (repro.overload): the loop also watches the
resource's estimated queueing delay — the signal that rises before
utilization windows saturate — and follows the degradation order
*autoscale before shedding, shed before collapse*: queue pressure first
triggers scale-out; only once capacity is pinned at ``max_capacity``
(or scale-out is refused for replication safety) does the loop engage
the processor's admission controller, and it releases shedding as soon
as the pressure clears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from ..ir.replication import ReplicationSafety
from ..overload.admission import AdmissionController
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..state.migration import MigrationReport, MigrationTiming, Migrator


@dataclass
class ScalingEvent:
    """One scaling action taken (or refused) by the autoscaler."""

    at_s: float
    #: "scale_out" | "scale_in" | "refused_out" | "engaged_shedding"
    #: | "released_shedding"
    action: str
    capacity_before: int
    capacity_after: int
    utilization: float
    migration: Optional[MigrationReport] = None
    #: why a scale-out was refused (replication-safety verdicts)
    reasons: Tuple[str, ...] = ()


@dataclass
class AutoscalerConfig:
    """Policy knobs."""

    high_watermark: float = 0.85  # scale out above this utilization
    low_watermark: float = 0.25  # scale in below this
    sample_interval_s: float = 0.05
    max_capacity: int = 8
    min_capacity: int = 1
    cooldown_s: float = 0.2
    #: estimated queueing delay that also demands scale-out (None
    #: disables the delay trigger); the same threshold decides when a
    #: capacity-pinned processor must fall back to shedding
    queue_delay_high_ms: Optional[float] = None


class Autoscaler:
    """Scales one processor resource, migrating element state as needed.

    ``stateful_tables`` lists the state tables that must be split/merged
    when capacity changes (the controller passes the keyed tables of the
    elements hosted on the processor).

    ``safety`` carries the hosted elements' replication-safety verdicts
    (``analysis.replication``). When any hosted element is not shardable
    — it holds read-modify-write state that key-partitioning cannot
    isolate — the autoscaler refuses to add replicas: scale-out would
    silently change semantics (each replica would see a fraction of the
    element's history). Refusals are recorded as ``refused_out`` events
    with the blocking reasons. Scale-in is always allowed.

    ``effects`` optionally carries the hosted elements' effect summaries
    (``analysis.effects.ElementEffects``); when present, each coarse
    verdict is tightened to per-mutation-site proofs before gating
    scale-out, so a coarsely-shardable element with a replica-divergent
    mutation site is refused with the site's reason (ADN702).
    """

    def __init__(
        self,
        sim: Simulator,
        resource: Resource,
        config: Optional[AutoscalerConfig] = None,
        stateful_tables: Optional[List] = None,
        migration_timing: Optional[MigrationTiming] = None,
        safety: Optional[Sequence[ReplicationSafety]] = None,
        admission: Optional[AdmissionController] = None,
        effects: Optional[Sequence] = None,
    ):
        self.sim = sim
        self.resource = resource
        self.config = config or AutoscalerConfig()
        self.stateful_tables = stateful_tables or []
        self.safety = list(safety or [])
        if effects:
            # per-mutation-site proofs (repro.analysis.effects) tighten
            # the coarse verdicts: an element the coarse classifier calls
            # shardable but whose summary holds a replica-divergent
            # mutation site must not gain replicas (ADN702)
            from ..analysis.effects import refine_replication

            by_element = {summary.element: summary for summary in effects}
            self.safety = [
                refine_replication(verdict, by_element[verdict.element])
                if verdict.element in by_element
                else verdict
                for verdict in self.safety
            ]
        self.migrator = Migrator(sim, migration_timing)
        #: the processor's admission controller, engaged only as the
        #: last escalation step (shed before collapse)
        self.admission = admission
        self.events: List[ScalingEvent] = []
        self._last_busy = 0.0
        self._last_sample_at = 0.0
        self._last_action_at = -1e9
        self._running = False

    # -- utilization sampling ---------------------------------------------

    def _window_utilization(self) -> float:
        elapsed = self.sim.now - self._last_sample_at
        if elapsed <= 0:
            return 0.0
        busy = self.resource.busy_time - self._last_busy
        self._last_busy = self.resource.busy_time
        self._last_sample_at = self.sim.now
        return busy / (elapsed * self.resource.capacity)

    # -- the control loop --------------------------------------------------------

    def run(self, duration_s: float) -> Generator:
        """Simulation process: sample and react for ``duration_s``."""
        self._running = True
        self._last_sample_at = self.sim.now
        self._last_busy = self.resource.busy_time
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.config.sample_interval_s)
            utilization = self._window_utilization()
            delay_high = self._queue_delay_high()
            pressed = utilization > self.config.high_watermark or delay_high
            if not pressed:
                self._release_shedding(utilization)
            if self.sim.now - self._last_action_at < self.config.cooldown_s:
                continue
            if pressed:
                if self.resource.capacity >= self.config.max_capacity:
                    # cannot scale away the load: degrade gracefully by
                    # shedding instead of letting the queue collapse
                    self._engage_shedding(utilization)
                    continue
                blockers = self._scale_out_blockers()
                if blockers:
                    self._refuse_scale_out(utilization, blockers)
                    self._engage_shedding(utilization)
                    continue
                yield from self._scale(utilization, out=True)
            elif (
                utilization < self.config.low_watermark
                and self.resource.capacity > self.config.min_capacity
            ):
                yield from self._scale(utilization, out=False)
        self._running = False

    def _queue_delay_high(self) -> bool:
        threshold_ms = self.config.queue_delay_high_ms
        if threshold_ms is None:
            return False
        return self.resource.estimated_sojourn_s() * 1e3 > threshold_ms

    # -- graceful-degradation escalation ----------------------------------

    def _engage_shedding(self, utilization: float) -> None:
        if self.admission is None or self.admission.engaged:
            return
        self.admission.engage(True)
        capacity = self.resource.capacity
        self.events.append(
            ScalingEvent(
                at_s=self.sim.now,
                action="engaged_shedding",
                capacity_before=capacity,
                capacity_after=capacity,
                utilization=utilization,
            )
        )

    def _release_shedding(self, utilization: float) -> None:
        if self.admission is None or not self.admission.engaged:
            return
        self.admission.engage(False)
        capacity = self.resource.capacity
        self.events.append(
            ScalingEvent(
                at_s=self.sim.now,
                action="released_shedding",
                capacity_before=capacity,
                capacity_after=capacity,
                utilization=utilization,
            )
        )

    def _scale(self, utilization: float, out: bool) -> Generator:
        before = self.resource.capacity
        after = before + 1 if out else before - 1
        migration: Optional[MigrationReport] = None
        for table in self.stateful_tables:
            if out:
                # split one way further; in this single-instance model the
                # migration cost is what matters — rows stay addressable
                parts, report = yield from self.migrator.scale_out(table, 2)
                merged = table.merge(table.decl, parts)
                table.load_snapshot(merged.snapshot())
                migration = report
            else:
                # scale-in: warm-merge while serving, pause only for the
                # routing flip (same discipline as scale-out)
                report = MigrationReport(
                    table=table.name, started_at=self.sim.now
                )
                report.rows_copied = len(table)
                warm_s = (
                    len(table) * self.migrator.timing.per_row_copy_us * 1e-6
                )
                if warm_s > 0:
                    yield self.sim.timeout(warm_s)
                report.warm_copy_s = warm_s
                pause_started = self.sim.now
                yield self.sim.timeout(
                    self.migrator.timing.flip_fixed_us * 1e-6
                )
                report.pause_s = self.sim.now - pause_started
                report.finished_at = self.sim.now
                migration = report
        self.resource.set_capacity(after)
        self._last_action_at = self.sim.now
        self.events.append(
            ScalingEvent(
                at_s=self.sim.now,
                action="scale_out" if out else "scale_in",
                capacity_before=before,
                capacity_after=after,
                utilization=utilization,
                migration=migration,
            )
        )

    def _scale_out_blockers(self) -> List[str]:
        """Replication-safety reasons that forbid adding a replica."""
        reasons: List[str] = []
        for verdict in self.safety:
            if verdict.shardable:
                continue
            for reason in verdict.reasons():
                reasons.append(f"element {verdict.element!r}: {reason}")
        return reasons

    def _refuse_scale_out(
        self, utilization: float, reasons: List[str]
    ) -> None:
        capacity = self.resource.capacity
        self.events.append(
            ScalingEvent(
                at_s=self.sim.now,
                action="refused_out",
                capacity_before=capacity,
                capacity_after=capacity,
                utilization=utilization,
                reasons=tuple(reasons),
            )
        )
        # refusals honour the cooldown too, so a saturated processor does
        # not spam one refusal per sample
        self._last_action_at = self.sim.now

    @property
    def scale_out_count(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_out")

    @property
    def scale_in_count(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_in")
