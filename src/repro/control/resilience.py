"""Control-plane resilience: failover, fencing, partition tolerance.

The recovery machinery of :mod:`repro.control.controller` assumes the
controller itself survives. This module drops that assumption and makes
the *control plane* a fault domain of its own:

* **Lease-based leadership** (:class:`LeaseStore`): a warm-standby
  controller pair arbitrates through a lease over the simulation clock.
  The leader renews on a tick; a leader that crashes — or loses its
  control channel — stops renewing, the lease expires, and the standby
  acquires it under a *higher term*.

* **Epoch-fenced configuration**: every plan a controller installs
  carries an epoch minted as ``term * 1_000_000 + seq``, so any plan
  from a newer leadership term outranks every plan an older term could
  ever mint. The data plane (:meth:`AdnMrpcStack.apply_plan`) rejects
  stale epochs with :class:`~repro.errors.StaleEpochError` — the fence
  that turns a split brain from silent double-application into a
  counted, harmless rejection.

* **Recovery journaling** (:class:`RecoveryJournal`): the leader writes
  every recovery it starts into a journal whose state store rides the
  existing delta-log :class:`~repro.state.checkpoint.Checkpointer`.
  A standby taking over restores the journal from the warm standby and
  *resumes* any recovery its dead predecessor left open — the
  crash-mid-recovery case that would otherwise orphan the mesh.

* **Chaos soak** (:func:`run_chaos_soak`): seeded multi-fault trials
  over the full fault universe (crashes, hangs, link faults, control
  partitions, gray degradation) with invariant checks — notably that
  the split-brain counter stays zero — and a per-trial determinism
  signature.

Everything is deterministic in the seeds: same inputs, same timeline,
bit-identical signatures.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.compiler import AdnCompiler
from ..dsl.ast_nodes import ChainDecl, ColumnDef, StateDecl
from ..dsl.functions import FunctionRegistry
from ..dsl.parser import parse
from ..dsl.schema import FieldType
from ..dsl.stdlib import load_stdlib
from ..dsl.validator import validate_program
from ..faults.detector import HeartbeatFailureDetector
from ..faults.injector import FaultInjector, TimelineEntry
from ..faults.plan import FAULT_KINDS, FaultPlan, random_multi_fault_plan
from ..platforms import Platform
from ..runtime.filters import RetryPolicy
from ..runtime.message import reset_rpc_ids
from ..runtime.mrpc import AdnMrpcStack
from ..runtime.processor import PlacementPlan, PlacementSegment
from ..runtime.telemetry import TelemetryCollector
from ..sim.cluster import Cluster, Simulator, two_machine_cluster
from ..sim.engine import SimulationError
from ..sim.workload import ClosedLoopClient
from ..state.checkpoint import Checkpointer
from ..state.table import StateStore
from .controller import RecoveryOrchestrator, RecoveryReport
from .placement import ClusterSpec

# NOTE: repro.faults.scenario imports repro.control.controller, so this
# module must not import from it at module scope (circular); the
# scenario helpers are imported inside the functions that need them.

#: the stateful data host (mirrors repro.faults.scenario.STATS_MACHINE)
STATS_MACHINE = "stats-host"

#: the controller pair's machine names in the scenario cluster
CTRL_A = "ctrl-a"
CTRL_B = "ctrl-b"

#: the journal's element name under the checkpointer
JOURNAL_ELEMENT = "recovery-journal"


# -- leadership --------------------------------------------------------------


@dataclass
class LeaseStore:
    """A single lease over the simulation clock (the moral equivalent of
    an etcd lease, minus the network: the store itself is assumed
    reliable; the *controllers* are not).

    ``term`` increments exactly when leadership changes hands, which is
    what makes it safe to build fencing epochs on: a term is never
    reused, and a deposed leader keeps minting under its old term.
    """

    sim: Simulator
    duration_s: float = 0.03
    holder: Optional[str] = None
    expires_at: float = float("-inf")
    term: int = 0

    def acquire(self, node: str) -> Optional[int]:
        """Take the lease if it is free or expired (or already ours).
        Returns the term held under, or None if someone else holds a
        live lease."""
        if self.holder != node and self.expires_at > self.sim.now:
            return None
        if self.holder != node:
            self.term += 1
            self.holder = node
        self.expires_at = self.sim.now + self.duration_s
        return self.term

    def renew(self, node: str) -> bool:
        """Extend a still-valid lease; an expired one must re-acquire."""
        if self.holder == node and self.expires_at > self.sim.now:
            self.expires_at = self.sim.now + self.duration_s
            return True
        return False

    def valid(self, node: str) -> bool:
        return self.holder == node and self.expires_at > self.sim.now


# -- the recovery journal ----------------------------------------------------


class RecoveryJournal:
    """Write-ahead record of recoveries, as a state store.

    Implements the same store protocol element state does (``tables`` /
    ``vars`` / ``table()``), so the existing delta-log
    :class:`Checkpointer` replicates it to the warm standby with zero
    new machinery: ``open()`` and ``close()`` are ordinary keyed-table
    writes, and they stream out with the next checkpoint tick."""

    def __init__(self) -> None:
        decl = StateDecl(
            name="recoveries",
            columns=(
                ColumnDef(name="machine", type=FieldType.STR, is_key=True),
                ColumnDef(name="suspected_at", type=FieldType.FLOAT),
                ColumnDef(name="status", type=FieldType.STR),
            ),
        )
        self._store = StateStore([decl], {})

    # the StateStore protocol the checkpointer consumes
    @property
    def tables(self):
        return self._store.tables

    @property
    def vars(self):
        return self._store.vars

    def table(self, name: str):
        return self._store.table(name)

    # journal semantics
    def open(self, machine: str, suspected_at: float) -> None:
        table = self.table("recoveries")
        if table.get(machine) is None:
            table.insert(
                {
                    "machine": machine,
                    "suspected_at": suspected_at,
                    "status": "open",
                }
            )
        else:
            table.update_where(
                lambda row: row["machine"] == machine,
                lambda row: {"suspected_at": suspected_at, "status": "open"},
            )

    def close(self, machine: str) -> None:
        table = self.table("recoveries")
        if table.get(machine) is not None:
            table.update_where(
                lambda row: row["machine"] == machine,
                lambda row: {"status": "closed"},
            )

    def open_entries(self) -> List[Tuple[str, float]]:
        """(machine, suspected_at) for every recovery still open —
        what a standby must resume after taking over."""
        return sorted(
            (str(row["machine"]), float(row["suspected_at"]))
            for row in self.table("recoveries").rows()
            if row["status"] == "open"
        )


# -- controller nodes --------------------------------------------------------


class ControllerNode:
    """One controller process: a machine in the cluster, a lease
    client, an epoch mint, and a :class:`RecoveryOrchestrator` it drives
    while it leads."""

    def __init__(
        self, name: str, sim: Simulator, cluster: Cluster, lease: LeaseStore
    ):
        self.name = name
        self.sim = sim
        self.cluster = cluster
        self.lease = lease
        self.journal = RecoveryJournal()
        self.orchestrator: Optional[RecoveryOrchestrator] = None
        #: the leadership term this node last held (a deposed node keeps
        #: minting under it — that is exactly what the fence catches)
        self.term = 0
        self._seq = 0
        self.takeovers = 0

    @property
    def up(self) -> bool:
        """The machine is powered: a crashed controller computes nothing."""
        return self.cluster.machine_up(self.name)

    @property
    def reachable(self) -> bool:
        """The control channel works: a partitioned controller still
        computes, but cannot renew its lease or land a plan push."""
        return self.cluster.control_reachable(self.name)

    def mint_epoch(self) -> int:
        """``term * 1_000_000 + seq``: any epoch from a newer term
        outranks every epoch an older term could ever mint."""
        self._seq += 1
        return self.term * 1_000_000 + self._seq


@dataclass(frozen=True)
class FailoverReport:
    """One leadership takeover, with what the new leader inherited."""

    node: str
    at_s: float
    term: int
    #: journaled recoveries the predecessor left open, now resumed
    resumed: Tuple[str, ...] = ()
    #: standing detector suspicions the predecessor never acted on
    swept: Tuple[str, ...] = ()
    journal_rows_restored: int = 0
    journal_deltas_replayed: int = 0


class ControllerPair:
    """Warm-standby controller replication over a :class:`LeaseStore`.

    One tick process drives both nodes: the leader renews, a standby
    that sees an expired lease acquires it (bumping the term) and runs
    the takeover — journal restore, resumption of open recoveries, and
    a sweep of standing suspicions the dead leader never acted on.
    Suspicions route to the node holding a *valid* lease; while no such
    node is alive and reachable they are dropped, which is precisely the
    window failover exists to bound."""

    def __init__(
        self,
        sim: Simulator,
        lease: LeaseStore,
        nodes: List[ControllerNode],
        checkpointer: Optional[Checkpointer] = None,
        detector: Optional[HeartbeatFailureDetector] = None,
        renew_interval_s: float = 0.01,
    ):
        self.sim = sim
        self.lease = lease
        self.nodes = nodes
        self.checkpointer = checkpointer
        self.detector = detector
        self.renew_interval_s = renew_interval_s
        self.failovers: List[FailoverReport] = []
        self.dropped_suspicions = 0
        # bootstrap: the first node starts as leader (term 1)
        term = lease.acquire(nodes[0].name)
        nodes[0].term = term if term is not None else 0

    def leader(self) -> Optional[ControllerNode]:
        for node in self.nodes:
            if self.lease.valid(node.name) and node.up and node.reachable:
                return node
        return None

    def suspect_sink(self, suspicion) -> None:
        """Route a detector suspicion to the current leader; with no
        live leader the message has no recipient and is lost."""
        node = self.leader()
        if node is None or node.orchestrator is None:
            self.dropped_suspicions += 1
            return
        node.orchestrator.suspect_sink(suspicion)

    def run(self, duration_s: float):
        """Simulation process: lease renewal and takeover on a tick."""
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.renew_interval_s)
            for node in self.nodes:
                if not (node.up and node.reachable):
                    continue
                if self.lease.valid(node.name):
                    self.lease.renew(node.name)
                    continue
                if self.lease.expires_at <= self.sim.now:
                    term = self.lease.acquire(node.name)
                    if term is None or term == node.term:
                        # re-acquired our own lapsed lease: same term,
                        # nothing to take over
                        continue
                    node.term = term
                    yield from self._takeover(node)

    def _takeover(self, node: ControllerNode):
        started = self.sim.now
        node.takeovers += 1
        rows = deltas = 0
        if (
            self.checkpointer is not None
            and JOURNAL_ELEMENT in getattr(self.checkpointer, "_watches", {})
        ):
            restore = yield self.sim.process(
                self.checkpointer.restore(JOURNAL_ELEMENT, node.journal)
            )
            rows = restore.rows_restored
            deltas = restore.deltas_replayed
            self.checkpointer.retarget(
                JOURNAL_ELEMENT,
                node.journal,
                live_of=lambda n=node: n.up and n.reachable,
            )
        resumed: List[str] = []
        if node.orchestrator is not None:
            for machine, suspected_at in node.journal.open_entries():
                if node.orchestrator.recover_now(machine, suspected_at):
                    resumed.append(machine)
        # suspicions raised while no leader was reachable were dropped;
        # the detector still holds them — sweep what is still standing
        swept: List[str] = []
        if self.detector is not None and node.orchestrator is not None:
            for machine in sorted(self.detector.suspects):
                if machine in resumed:
                    continue
                node.orchestrator.suspect_sink(self.detector.suspects[machine])
                if machine in node.orchestrator._in_progress:
                    swept.append(machine)
        self.failovers.append(
            FailoverReport(
                node=node.name,
                at_s=started,
                term=node.term,
                resumed=tuple(resumed),
                swept=tuple(swept),
                journal_rows_restored=rows,
                journal_deltas_replayed=deltas,
            )
        )


# -- the scenario ------------------------------------------------------------


@dataclass
class ResilienceResult:
    """Everything the resilience tests and benchmarks assert on."""

    sim: Simulator
    cluster: Cluster
    stack: AdnMrpcStack
    metrics: object  # RunMetrics
    fault_plan: FaultPlan
    timeline: List[TimelineEntry]
    detector: HeartbeatFailureDetector
    checkpointer: Checkpointer
    telemetry: TelemetryCollector
    injector: FaultInjector
    lease: LeaseStore
    pair: ControllerPair
    nodes: List[ControllerNode]
    total_rpcs: int = 0
    #: the workload hit the simulation-time limit before completing
    #: (the orphaned-mesh signature of the no-failover baseline)
    timed_out: bool = False

    @property
    def reports(self) -> List[RecoveryReport]:
        out: List[RecoveryReport] = []
        for node in self.nodes:
            if node.orchestrator is not None:
                out.extend(node.orchestrator.reports)
        return sorted(out, key=lambda report: report.recovered_at)

    @property
    def failovers(self) -> List[FailoverReport]:
        return self.pair.failovers

    @property
    def ok_rpcs(self) -> int:
        return self.metrics.completed - self.metrics.aborted

    @property
    def goodput_fraction(self) -> float:
        """Successfully answered RPCs over the offered total — the
        number the controller-blackout benchmark pins."""
        if self.total_rpcs <= 0:
            return 0.0
        return self.ok_rpcs / self.total_rpcs

    @property
    def stale_plans_rejected(self) -> int:
        return self.stack.stale_plans_rejected

    @property
    def stale_plans_applied(self) -> int:
        """The split-brain counter: stale plans that *landed*. Zero
        whenever the epoch fence is on."""
        return self.stack.stale_plans_applied

    @property
    def abandoned_recoveries(self) -> int:
        return sum(
            node.orchestrator.abandoned_recoveries
            for node in self.nodes
            if node.orchestrator is not None
        )

    def tally_hits(self) -> int:
        store = self._tally_store()
        if store is None:
            return 0
        return sum(
            int(row["hits"])
            for row in store.table("tally").rows()
            if str(row["username"]).startswith("user")
        )

    def _tally_store(self):
        for processor in self.stack.processors:
            if "SessionTally" in processor.segment.elements:
                return processor.element_state("SessionTally")
        return None

    def signature(self) -> str:
        """A deterministic digest of everything observable: equal
        signatures mean bit-identical replays."""
        record = (
            round(self.sim.now, 9),
            self.metrics.issued,
            self.metrics.completed,
            self.metrics.aborted,
            self.stack.rpcs_lost,
            self.stack.stale_plans_rejected,
            self.stack.stale_plans_applied,
            self.pair.dropped_suspicions,
            tuple(
                (round(entry.at_s, 9), entry.action, entry.kind, entry.target)
                for entry in self.timeline
            ),
            tuple(
                (report.node, round(report.at_s, 9), report.term,
                 report.resumed, report.swept)
                for report in self.failovers
            ),
            tuple(
                (report.machine, report.kind, round(report.recovered_at, 9),
                 report.elements_moved)
                for report in self.reports
            ),
        )
        return hashlib.blake2b(
            repr(record).encode("utf-8"), digest_size=16
        ).hexdigest()


def run_control_resilience_scenario(
    seed: int = 1,
    total_rpcs: int = 3000,
    concurrency: int = 4,
    table_rows: int = 200,
    key_space: int = 16,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    telemetry_interval_s: float = 0.005,
    stream_interval_s: float = 0.002,
    fold_every: int = 4,
    horizon_s: float = 2.0,
    strategy: str = "software",
    standby: bool = True,
    fence_epochs: bool = True,
    lease_duration_s: float = 0.03,
    renew_interval_s: float = 0.01,
    pre_apply_delay_s: float = 0.01,
    gray_factor: float = 0.0,
    gray_consecutive: int = 3,
    gray_min_samples: int = 5,
    client_think_s: float = 0.0,
    run_limit_s: Optional[float] = None,
) -> ResilienceResult:
    """The recovery scenario of :mod:`repro.faults.scenario`, with the
    control plane made mortal: the SessionTally workload runs while
    ``ctrl-a`` (leader) and optionally ``ctrl-b`` (warm standby) drive
    detection and recovery under a lease, a journal, and epoch-fenced
    plan pushes. Fully deterministic in ``seed`` and the plan."""
    from ..faults.scenario import (
        SCENARIO_SCHEMA,
        SESSION_TALLY_SOURCE,
        default_crash_plan,
        default_retry_policy,
    )

    reset_rpc_ids()
    plan = fault_plan if fault_plan is not None else default_crash_plan(seed=seed)
    policy = retry_policy or default_retry_policy(seed=seed)

    sim = Simulator()
    cluster = two_machine_cluster(sim)
    cluster.add_machine(STATS_MACHINE)
    cluster.add_machine(CTRL_A)
    cluster.add_machine(CTRL_B)

    registry = FunctionRegistry(rng=random.Random(seed))
    program = load_stdlib().merged(parse(SESSION_TALLY_SOURCE))
    program = validate_program(
        program, schema=SCENARIO_SCHEMA, registry=registry
    )
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=("SessionTally",)),
        program,
        SCENARIO_SCHEMA,
    )
    placement = PlacementPlan(
        segments=[
            PlacementSegment(
                platform=Platform.MRPC,
                machine=STATS_MACHINE,
                elements=("SessionTally",),
            )
        ],
        description=f"SessionTally on {STATS_MACHINE} (pre-fault)",
    )
    stack = AdnMrpcStack(
        sim,
        cluster,
        chain,
        SCENARIO_SCHEMA,
        registry,
        plan=placement,
        retry_policy=policy,
    )
    stack.fence_epochs = fence_epochs

    store = stack.processors[0].element_state("SessionTally")
    for index in range(table_rows):
        store.table("tally").insert_values([f"resident{index}", 1])

    checkpointer = Checkpointer(
        sim, stream_interval_s=stream_interval_s, fold_every=fold_every
    )
    checkpointer.watch(
        "SessionTally",
        store,
        live_of=lambda: cluster.machine_up(STATS_MACHINE),
    )

    telemetry = TelemetryCollector(sim, interval_s=telemetry_interval_s)
    telemetry.register_stack(stack)
    detector = HeartbeatFailureDetector(
        sim,
        heartbeat_interval_s=telemetry_interval_s,
        gray_factor=gray_factor,
        gray_consecutive=gray_consecutive,
        gray_min_samples=gray_min_samples,
    )
    telemetry.add_sink(detector.sink)
    for _, machine in stack.plan.element_locations().values():
        detector.expect(machine)

    injector = FaultInjector(sim, cluster)
    injector.register_stack(stack)
    injector.register_detector(detector)

    lease = LeaseStore(sim, duration_s=lease_duration_s)
    nodes = [ControllerNode(CTRL_A, sim, cluster, lease)]
    if standby:
        nodes.append(ControllerNode(CTRL_B, sim, cluster, lease))
    for node in nodes:
        node.orchestrator = RecoveryOrchestrator(
            sim,
            stack,
            SCENARIO_SCHEMA,
            cluster_spec=ClusterSpec(),
            strategy=strategy,
            checkpointer=checkpointer,
            telemetry=telemetry,
            detector=detector,
            crash_times=injector.crash_times,
            epoch_source=node.mint_epoch,
            alive_fn=lambda n=node: n.up,
            push_ok_fn=lambda n=node: n.reachable,
            pre_apply_delay_s=pre_apply_delay_s,
            journal=node.journal,
        )
    pair = ControllerPair(
        sim,
        lease,
        nodes,
        checkpointer=checkpointer,
        detector=detector,
        renew_interval_s=renew_interval_s,
    )
    # the leader's journal is checkpointed exactly like element state:
    # its delta log streams to the warm standby on the same cadence
    checkpointer.watch(
        JOURNAL_ELEMENT,
        nodes[0].journal,
        live_of=lambda n=nodes[0]: n.up and n.reachable,
    )
    detector.on_suspect(pair.suspect_sink)

    sim.process(telemetry.run(horizon_s))
    sim.process(detector.run(horizon_s))
    sim.process(checkpointer.run(horizon_s))
    sim.process(injector.run(plan))
    sim.process(pair.run(horizon_s))

    def fields(rng: random.Random, index: int):
        return {
            "payload": b"x" * 64,
            "username": f"user{rng.randrange(key_space)}",
            "obj_id": rng.randrange(1 << 12),
        }

    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=concurrency,
        total_rpcs=total_rpcs,
        seed=seed,
        fields_fn=fields,
        think_s=client_think_s,
    )
    limit = run_limit_s if run_limit_s is not None else max(horizon_s * 4, 8.0)
    timed_out = False
    try:
        metrics = client.run(limit_s=limit)
    except SimulationError:
        # an orphaned mesh never finishes the workload: the baseline
        # without failover is *supposed* to end up here
        timed_out = True
        metrics = client.metrics
        metrics.elapsed_s = sim.now

    return ResilienceResult(
        sim=sim,
        cluster=cluster,
        stack=stack,
        metrics=metrics,
        fault_plan=plan,
        timeline=list(injector.timeline),
        detector=detector,
        checkpointer=checkpointer,
        telemetry=telemetry,
        injector=injector,
        lease=lease,
        pair=pair,
        nodes=nodes,
        total_rpcs=total_rpcs,
        timed_out=timed_out,
    )


# -- chaos soak --------------------------------------------------------------

#: machines the multi-fault chaos schedule may target: the stateful
#: data host and the leader controller
CHAOS_MACHINES = [STATS_MACHINE, CTRL_A]


def run_chaos_trial(
    seed: int,
    horizon_s: float = 2.0,
    events: int = 3,
    total_rpcs: int = 800,
    standby: bool = True,
    fence_epochs: bool = True,
) -> Dict[str, object]:
    """One seeded multi-fault trial: overlapping faults across the data
    host and the leader controller, gray detection armed. Returns a
    JSON-ready record with the trial's invariant counters and its
    determinism signature."""
    plan = random_multi_fault_plan(
        seed,
        horizon_s * 0.6,
        CHAOS_MACHINES,
        kinds=FAULT_KINDS,
        events=events,
    )
    result = run_control_resilience_scenario(
        seed=seed,
        total_rpcs=total_rpcs,
        fault_plan=plan,
        horizon_s=horizon_s,
        standby=standby,
        fence_epochs=fence_epochs,
        gray_factor=4.0,
        # stretch the closed loop across ~70% of the horizon (4 workers,
        # total_rpcs/4 each) so the fault windows land on live traffic,
        # not on an already-finished workload
        client_think_s=horizon_s * 0.7 * 4 / max(1, total_rpcs),
    )
    return {
        "seed": seed,
        "events": [event.to_dict() for event in plan.events],
        "issued": result.metrics.issued,
        "completed": result.metrics.completed,
        "aborted": result.metrics.aborted,
        "ok_rate": (
            result.ok_rpcs / result.metrics.completed
            if result.metrics.completed
            else 0.0
        ),
        "goodput_fraction": result.goodput_fraction,
        "timed_out": result.timed_out,
        "recoveries": len(result.reports),
        "failovers": len(result.failovers),
        "abandoned_recoveries": result.abandoned_recoveries,
        "dropped_suspicions": result.pair.dropped_suspicions,
        "stale_plans_rejected": result.stale_plans_rejected,
        "stale_plans_applied": result.stale_plans_applied,
        "signature": result.signature(),
    }


def run_chaos_soak(
    trials: int = 10,
    base_seed: int = 0,
    horizon_s: float = 2.0,
    events: int = 3,
    total_rpcs: int = 800,
    standby: bool = True,
    fence_epochs: bool = True,
) -> Dict[str, object]:
    """N seeded multi-fault trials plus the soak-level invariants: the
    split-brain counter (stale plans *applied*) must be zero across the
    whole soak whenever fencing is on."""
    results = [
        run_chaos_trial(
            base_seed + index,
            horizon_s=horizon_s,
            events=events,
            total_rpcs=total_rpcs,
            standby=standby,
            fence_epochs=fence_epochs,
        )
        for index in range(trials)
    ]
    return {
        "trials": results,
        "total_recoveries": sum(r["recoveries"] for r in results),
        "total_failovers": sum(r["failovers"] for r in results),
        "total_stale_rejected": sum(
            r["stale_plans_rejected"] for r in results
        ),
        "total_stale_applied": sum(r["stale_plans_applied"] for r in results),
        "min_goodput_fraction": min(
            (r["goodput_fraction"] for r in results), default=0.0
        ),
    }
