"""repro — a reproduction of *Application Defined Networks* (HotNets '23).

ADN replaces the general-purpose protocol stack under microservice RPCs
with a fully application-specific network: developers specify RPC
processing as a chain of elements in a SQL-like DSL; a compiler lowers
the chain to an IR, optimizes it (reordering, parallelization, minimal
wire headers), and emits platform-native code; a runtime controller
places elements across software and hardware processors and rescales
them without disrupting the application.

Quick start::

    from repro import AdnCompiler, RpcSchema, FieldType
    from repro.dsl import load_stdlib
    from repro.dsl.ast_nodes import ChainDecl

    schema = RpcSchema.of("kv", payload=FieldType.BYTES,
                          username=FieldType.STR, obj_id=FieldType.INT)
    program = load_stdlib(["Logging", "Acl", "Fault"], schema=schema)
    chain = AdnCompiler().compile_chain(
        ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault")),
        program, schema)
    print(chain.element_order)            # optimized order
    print(chain.elements["Acl"].artifacts["p4"].source)  # generated P4

Package map:

* :mod:`repro.dsl` — the element/app language (lexer, parser, validator,
  standard element library).
* :mod:`repro.ir` — dataflow IR, analyses, interpreter, optimizer.
* :mod:`repro.compiler` — backends (python/eBPF/P4/WASM) and minimal
  header synthesis.
* :mod:`repro.state` — element state tables: snapshot, split, merge,
  live migration.
* :mod:`repro.net` — flat-id virtual L2, TCP model, HTTP/2+gRPC framing,
  the ADN compact wire format.
* :mod:`repro.sim` — discrete-event simulator, cluster model, calibrated
  cost model, workload generators.
* :mod:`repro.runtime` — placed processors and the ADN-over-mRPC path.
* :mod:`repro.baselines` — gRPC+Envoy mesh and hand-written mRPC modules.
* :mod:`repro.control` — mini cluster manager, controller, placement
  solver, autoscaler.
* :mod:`repro.elements` — the element catalog.
"""

from .compiler import AdnCompiler, CompiledApp, CompiledChain, CompiledElement
from .dsl import (
    DEFAULT_REGISTRY,
    FieldType,
    FunctionRegistry,
    Program,
    RpcSchema,
    load_stdlib,
    parse,
    validate_program,
)
from .errors import (
    AdnError,
    BackendError,
    CompileError,
    ControlPlaneError,
    DslSyntaxError,
    DslValidationError,
    HeaderLayoutError,
    PlacementError,
    RuntimeFault,
    SimulationError,
    StateError,
)
from .platforms import Platform

__version__ = "1.0.0"

__all__ = [
    "AdnCompiler",
    "AdnError",
    "BackendError",
    "CompileError",
    "CompiledApp",
    "CompiledChain",
    "CompiledElement",
    "ControlPlaneError",
    "DEFAULT_REGISTRY",
    "DslSyntaxError",
    "DslValidationError",
    "FieldType",
    "FunctionRegistry",
    "HeaderLayoutError",
    "PlacementError",
    "Platform",
    "Program",
    "RpcSchema",
    "RuntimeFault",
    "SimulationError",
    "StateError",
    "__version__",
    "load_stdlib",
    "parse",
    "validate_program",
]
