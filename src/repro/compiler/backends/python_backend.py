"""Executable Python backend — stands in for the paper's Rust mRPC
engine code generation.

The backend emits real Python source (returned in the artifact for
inspection and LoC accounting) and ``exec``\\ s it to obtain a module
factory. Generated modules satisfy the same contract as
:class:`repro.ir.interp.ElementInstance` — ``process(row, kind) ->
[rows]`` — and are differential-tested against the interpreter.

Unlike the interpreter, generated code accesses fields directly (no
generic operator dispatch), mirroring how the real compiler specializes
Rust code per element. The residual genericity — output tuples are
materialized as fresh dicts per emit, join rows via table iteration — is
what produces the paper's 3–12% gap versus hand-written modules, which
skip materialization entirely.
"""

from __future__ import annotations

from typing import Dict, List

from ...dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    VarRef,
)
from ...errors import BackendError
from ...ir.nodes import (
    AdvanceInput,
    AssignVar,
    DeleteRows,
    ElementIR,
    EmitRows,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    Scan,
    StatementIR,
    UpdateRows,
)
from ...state.table import StateStore
from .base import Backend, CompiledArtifact, LegalityReport

_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "and": "and",
    "or": "or",
}


class _ExprCompiler:
    """Compiles DSL expressions to Python source fragments.

    ``joins`` maps a joined table name to the local variable holding its
    current row dict.
    """

    def __init__(self, row_var: str, joins: Dict[str, str]):
        self.row_var = row_var
        self.joins = joins

    def compile(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            return f"_vars[{expr.name!r}]"
        if isinstance(expr, ColumnRef):
            if expr.table in (None, "input"):
                return f"{self.row_var}[{expr.name!r}]"
            join_var = self.joins.get(expr.table)
            if join_var is None:
                raise BackendError(
                    f"column {expr} referenced outside its join"
                )
            return f"{join_var}[{expr.name!r}]"
        if isinstance(expr, FuncCall):
            return self._compile_call(expr)
        if isinstance(expr, BinaryOp):
            op = _BINOPS[expr.op]
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                # SQL semantics: comparisons with NULL are false
                return (
                    f"_cmp({left}, {right}, {expr.op!r})"
                )
            return f"({left} {op} {right})"
        if isinstance(expr, UnaryOp):
            operand = self.compile(expr.operand)
            if expr.op == "not":
                return f"(not _truthy({operand}))"
            return f"(-{operand})"
        if isinstance(expr, CaseExpr):
            return self._compile_case(expr)
        raise BackendError(f"cannot compile expression {expr!r}")

    def _compile_call(self, call: FuncCall) -> str:
        if call.name == "count":
            table = call.args[0]
            assert isinstance(table, ColumnRef)
            return f"len(_tables[{table.name!r}])"
        if call.name == "contains":
            table = call.args[0]
            assert isinstance(table, ColumnRef)
            key = self.compile(call.args[1])
            return f"_tables[{table.name!r}].contains_key({key})"
        if call.name in ("sum_of", "min_of", "max_of", "avg_of"):
            table = call.args[0]
            column = call.args[1]
            assert isinstance(table, ColumnRef)
            assert isinstance(column, ColumnRef)
            return (
                f"_agg({call.name!r}, _tables[{table.name!r}], "
                f"{column.name!r})"
            )
        args = ", ".join(self.compile(arg) for arg in call.args)
        return f"_f_{call.name}({args})"

    def _compile_case(self, expr: CaseExpr) -> str:
        parts: List[str] = []
        for condition, value in expr.whens:
            parts.append(
                f"{self.compile(value)} if _truthy({self.compile(condition)})"
            )
        default = (
            self.compile(expr.default) if expr.default is not None else "None"
        )
        chained = default
        for part in reversed(parts):
            chained = f"({part} else {chained})"
        return chained


class PythonBackend(Backend):
    """Generates executable Python modules from element IR."""

    name = "python"

    def check(self, element: ElementIR) -> LegalityReport:
        # software platforms host anything the IR can express
        return LegalityReport(element=element.name, backend=self.name)

    def emit(self, element: ElementIR) -> CompiledArtifact:
        self._require_legal(element)
        source = self._generate_source(element)
        op_count = sum(
            element.analysis.handler_ops(kind) if element.analysis else 0
            for kind in ("request", "response")
        )
        artifact = CompiledArtifact(
            element=element.name,
            backend=self.name,
            source=source,
            op_count=op_count,
        )
        artifact.factory = self._make_factory(element, source)
        return artifact

    # -- factory ---------------------------------------------------------

    def _make_factory(self, element: ElementIR, source: str):
        registry = self.registry

        def factory(on_func_call=None):
            from ...ir.expr_utils import run_column_aggregate

            namespace: Dict[str, object] = {
                "_truthy": _truthy,
                "_cmp": _cmp,
                "_agg": run_column_aggregate,
            }
            for func_name in _used_functions(element):
                spec = registry.get(func_name)
                if spec.impl is None:
                    continue
                namespace[f"_f_{func_name}"] = _wrap_func(spec, on_func_call)
            exec(compile(source, f"<adn:{element.name}>", "exec"), namespace)
            module_cls = namespace[f"Module_{element.name}"]
            initial_vars = {d.name: d.init.value for d in element.vars}
            state = StateStore(element.states, initial_vars)
            instance = module_cls(state.tables, state.vars)  # type: ignore[operator]
            instance.state = state
            instance.run_init()
            return instance

        return factory

    # -- code generation -----------------------------------------------------

    def _generate_source(self, element: ElementIR) -> str:
        writer = _Writer()
        writer.line(f"class Module_{element.name}:")
        with writer.indent():
            writer.line(f"NAME = {element.name!r}")
            writer.line("def __init__(self, tables, vars):")
            with writer.indent():
                writer.line("self.tables = tables")
                writer.line("self.vars = vars")
            self._generate_init(element, writer)
            fused = any(
                isinstance(op, AdvanceInput)
                for handler in element.handlers.values()
                for stmt in handler.statements
                for op in stmt.ops
            )
            for kind in ("request", "response"):
                handler = element.handlers.get(kind)
                writer.line(f"def on_{kind}(self, row):")
                with writer.indent():
                    writer.line("_tables = self.tables")
                    writer.line("_vars = self.vars")
                    writer.line("_emitted = []")
                    if fused:
                        # members completed so far; the runtime reads it
                        # to attribute an internal drop (turnaround runs
                        # iff some member already executed)
                        writer.line("self.fused_progress = 0")
                    if handler is None:
                        writer.line("_emitted.append(dict(row))")
                    else:
                        for index, stmt in enumerate(handler.statements):
                            writer.line(f"# statement {index}")
                            self._generate_statement(stmt, writer)
                    writer.line("return _emitted")
            writer.line("def process(self, row, kind):")
            with writer.indent():
                writer.line("if kind == 'request':")
                with writer.indent():
                    writer.line("return self.on_request(row)")
                writer.line("return self.on_response(row)")
        return writer.text()

    def _generate_init(self, element: ElementIR, writer: "_Writer") -> None:
        writer.line("def run_init(self):")
        with writer.indent():
            writer.line("_tables = self.tables")
            writer.line("_vars = self.vars")
            emitted_any = False
            for stmt in element.init:
                for op in stmt.ops:
                    if isinstance(op, InsertLiterals):
                        for row_values in op.rows:
                            writer.line(
                                f"_tables[{op.table!r}].insert_values("
                                f"{list(row_values)!r})"
                            )
                        emitted_any = True
                    elif isinstance(op, AssignVar):
                        compiler = _ExprCompiler("_no_row", {})
                        guard = (
                            f"if _truthy({compiler.compile(op.where)}): "
                            if op.where is not None
                            else ""
                        )
                        writer.line(
                            f"{guard}_vars[{op.var!r}] = "
                            f"{compiler.compile(op.expr)}"
                        )
                        emitted_any = True
                    else:
                        raise BackendError(
                            f"unsupported init op {op!r} in {element.name!r}"
                        )
            if not emitted_any:
                writer.line("pass")

    def _generate_statement(self, stmt: StatementIR, writer: "_Writer") -> None:
        ops = list(stmt.ops)
        if len(ops) == 1 and isinstance(ops[0], AdvanceInput):
            # fusion seam: the previous member's output becomes the input
            writer.line(f"# advance past {ops[0].source}")
            writer.line("if not _emitted:")
            writer.line("    return []")
            writer.line("row = _emitted[0]")
            writer.line("_emitted = []")
            writer.line("self.fused_progress += 1")
            return
        if ops and isinstance(ops[0], Scan):
            self._generate_pipeline(ops, writer)
            return
        # state-only statements
        for op in ops:
            if isinstance(op, InsertLiterals):
                for row_values in op.rows:
                    writer.line(
                        f"_tables[{op.table!r}].insert_values({list(row_values)!r})"
                    )
            elif isinstance(op, UpdateRows):
                self._generate_update(op, writer)
            elif isinstance(op, DeleteRows):
                self._generate_delete(op, writer)
            elif isinstance(op, AssignVar):
                self._generate_assign(op, writer)
            else:
                raise BackendError(f"unexpected op {op!r} outside pipeline")

    def _generate_pipeline(self, ops: List[object], writer: "_Writer") -> None:
        """Scan → joins/filters → project → emit/insert as nested loops.

        Each join opens a ``for`` loop over the state table with an inline
        predicate guard; each filter opens an ``if`` block; the terminal
        op appends to ``_emitted`` or inserts into a table at the current
        nesting depth.
        """
        joins: Dict[str, str] = {}
        compiler = _ExprCompiler("row", joins)
        join_index = 0
        indents = 0
        for op in ops[1:]:
            prefix = "    " * indents
            if isinstance(op, JoinState):
                var = f"_j{join_index}"
                join_index += 1
                joins[op.table] = var
                writer.line(f"{prefix}for {var} in _tables[{op.table!r}].rows():")
                indents += 1
                writer.line(
                    "    " * indents
                    + f"if not _truthy({compiler.compile(op.on)}): continue"
                )
            elif isinstance(op, FilterRows):
                writer.line(
                    f"{prefix}if _truthy({compiler.compile(op.predicate)}):"
                )
                indents += 1
            elif isinstance(op, Project):
                projection = self._projection_source(op, compiler, joins)
                writer.line(f"{prefix}_out = {projection}")
            elif isinstance(op, EmitRows):
                writer.line(f"{prefix}_emitted.append(_out)")
            elif isinstance(op, InsertRows):
                writer.line(f"{prefix}_tables[{op.table!r}].insert(_out)")
            else:
                raise BackendError(f"unexpected op {op!r} in pipeline")

    def _projection_source(
        self, op: Project, compiler: _ExprCompiler, joins: Dict[str, str]
    ) -> str:
        parts: List[str] = []
        if op.keep_input:
            parts.append("**row")
        for table in op.star_tables:
            join_var = joins.get(table)
            if join_var is None:
                raise BackendError(f"star over unjoined table {table!r}")
            parts.append(f"**{join_var}")
        for name, expr in op.items:
            parts.append(f"{name!r}: {compiler.compile(expr)}")
        return "{" + ", ".join(parts) + "}"

    def _generate_update(self, op: UpdateRows, writer: "_Writer") -> None:
        joins = {op.table: "_srow"}
        compiler = _ExprCompiler("row", joins)
        where = (
            compiler.compile(op.where) if op.where is not None else "True"
        )
        assignments = ", ".join(
            f"{col!r}: {compiler.compile(expr)}" for col, expr in op.assignments
        )
        writer.line(
            f"_tables[{op.table!r}].update_where("
            f"lambda _srow: _truthy({where}), "
            f"lambda _srow: {{{assignments}}})"
        )

    def _generate_delete(self, op: DeleteRows, writer: "_Writer") -> None:
        joins = {op.table: "_srow"}
        compiler = _ExprCompiler("row", joins)
        where = (
            compiler.compile(op.where) if op.where is not None else "True"
        )
        writer.line(
            f"_tables[{op.table!r}].delete_where("
            f"lambda _srow: _truthy({where}))"
        )

    def _generate_assign(self, op: AssignVar, writer: "_Writer") -> None:
        compiler = _ExprCompiler("row", {})
        value = compiler.compile(op.expr)
        if op.where is not None:
            writer.line(f"if _truthy({compiler.compile(op.where)}):")
            writer.line(f"    _vars[{op.var!r}] = {value}")
        else:
            writer.line(f"_vars[{op.var!r}] = {value}")


# -- runtime helpers shared with generated code ------------------------------


def _truthy(value: object) -> bool:
    if value is None:
        return False
    return bool(value)


def _cmp(left: object, right: object, op: str) -> bool:
    if left is None or right is None:
        return False
    return {
        "==": left == right,
        "!=": left != right,
        "<": left < right,
        "<=": left <= right,
        ">": left > right,
        ">=": left >= right,
    }[op]


def _wrap_func(spec, on_func_call):
    """Wrap a registry function so the cost hook sees each call."""
    if on_func_call is None:
        return spec.impl

    def wrapped(*args):
        result = spec.impl(*args)
        size = 0
        if spec.payload_op and args and isinstance(args[0], (bytes, str)):
            size = len(args[0])
        on_func_call(spec, size)
        return result

    return wrapped


def _used_functions(element: ElementIR) -> List[str]:
    names = set()
    for kind in element.handlers:
        analysis = element.analysis
        if analysis is not None and kind in analysis.handlers:
            names |= analysis.handlers[kind].functions
    return sorted(names)


class _Writer:
    """Tiny indented-source writer."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append("    " * self._depth + text)

    def pop_line(self) -> str:
        return self._lines.pop()

    def rewrite_last_as_guard(self) -> None:  # kept for API symmetry
        pass

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def indent(self) -> "_IndentContext":
        return _IndentContext(self)

    def indented_block(self, extra: int) -> "_IndentContext":
        return _IndentContext(self, extra)


class _IndentContext:
    def __init__(self, writer: _Writer, extra: int = 1):
        self.writer = writer
        self.extra = extra

    def __enter__(self) -> "_IndentContext":
        self.writer._depth += self.extra
        return self

    def __exit__(self, *exc_info) -> None:
        self.writer._depth -= self.extra
