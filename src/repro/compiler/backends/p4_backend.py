"""P4 backend: legality checking and P4-16 source generation for
programmable-switch placement.

A switch pipeline is the most constrained ADN processor (paper §2/§3,
Figure 2 configuration 3). We enforce:

* **Header-window access only** — the element may read only fields the
  header layout puts in the first ~200 bytes; payload operations are
  rejected outright (checked here), and the exact window check runs at
  placement time against the hop's :class:`HeaderLayout`.
* **Match-action state** — joins must be unique-key lookups (they become
  match-action tables whose entries the controller installs). Data-plane
  inserts and deletes are rejected; the only data-plane writes allowed
  are register-style numeric updates (``SET x = ...`` on numeric vars,
  ``UPDATE t SET c = c + k``-shaped counter bumps).
* **No string computation** — equality on short fixed-width strings is
  allowed (exact-match on padded bytes); ordering or construction is not.
* **No packet replication** — multi-emit elements need clone sessions,
  which this model does not provision.
"""

from __future__ import annotations

from typing import List

from ...dsl.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    VarRef,
)
from ...dsl.schema import FieldType
from ...ir.analysis import _join_is_unique
from ...ir.expr_utils import walk
from ...ir.nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    InsertRows,
    JoinState,
    Project,
    UpdateRows,
)
from .base import Backend, CompiledArtifact, LegalityReport

#: DSL functions with P4 equivalents.
_P4_FUNCS = {
    "hash": "hash(..., HashAlgorithm.crc32, ...)",
    "rand": "random(...)",
    "now": "standard_metadata.ingress_global_timestamp",
    "min": "min",
    "max": "max",
    "count": "register read",
    "contains": "table hit",
    "coalesce": "ternary",
    "abs": "abs",
    "floor": "shift",
}

_P4_TYPES = {
    FieldType.INT: "bit<64>",
    FieldType.FLOAT: "bit<64> /* fixed-point */",
    FieldType.BOOL: "bit<8>",
    FieldType.STR: "bit<256> /* padded ascii */",
    FieldType.BYTES: "/* not parseable */",
}


class P4Backend(Backend):
    """Generates P4-16 and enforces switch-pipeline legality."""

    name = "p4"

    def check(self, element: ElementIR) -> LegalityReport:
        report = LegalityReport(element=element.name, backend=self.name)
        analysis = element.analysis
        if analysis is None:
            report.violations.append("element not analyzed")
            return report
        if "fused_from" in element.meta:
            report.violations.append(
                "fused element: a switch stage hosts one match-action "
                "element; compile the members individually"
            )
            return report
        for func_name in sorted(
            {f for h in analysis.handlers.values() for f in h.functions}
        ):
            spec = self.registry.get(func_name)
            if spec.payload_op:
                report.violations.append(
                    f"payload UDF {func_name}() touches bytes beyond the "
                    "parse window"
                )
            elif func_name not in _P4_FUNCS:
                report.violations.append(
                    f"function {func_name}() has no P4 equivalent"
                )
        if analysis.can_multiply:
            report.violations.append(
                "packet replication (multi-emit) needs clone sessions"
            )
        key_columns = {
            decl.name: tuple(c.name for c in decl.columns if c.is_key)
            for decl in element.states
        }
        for decl in element.states:
            if decl.append_only:
                report.violations.append(
                    f"append-only table {decl.name!r}: switches cannot "
                    "stream logs to files"
                )
            elif not any(c.is_key for c in decl.columns):
                report.violations.append(
                    f"unkeyed table {decl.name!r} cannot be a match-action "
                    "table"
                )
        for handler in element.handlers.values():
            for stmt in handler.statements:
                for op in stmt.ops:
                    self._check_op(op, key_columns, report)
        if analysis.fields_read or analysis.fields_written:
            report.notes.append(
                "placement must verify read fields sit in the "
                "200-byte parse window (HeaderLayout check)"
            )
        return report

    def _check_op(self, op, key_columns, report: LegalityReport) -> None:
        if isinstance(op, JoinState):
            if not _join_is_unique(op, key_columns):
                report.violations.append(
                    f"join on {op.table!r} is not an exact-match lookup"
                )
        elif isinstance(op, InsertRows):
            report.violations.append(
                f"data-plane insert into {op.table!r}: table entries are "
                "control-plane only"
            )
        elif isinstance(op, DeleteRows):
            report.violations.append(
                f"data-plane delete from {op.table!r}: table entries are "
                "control-plane only"
            )
        elif isinstance(op, UpdateRows):
            for col, expr in op.assignments:
                if not _is_counter_bump(col, expr, op.table):
                    report.violations.append(
                        f"UPDATE {op.table}.{col}: only register-style "
                        "counter bumps are supported on the switch"
                    )
        elif isinstance(op, (FilterRows, Project, AssignVar)):
            for expr in _exprs_of(op):
                self._check_expr(expr, report)

    def _check_expr(self, expr: Expr, report: LegalityReport) -> None:
        for node in walk(expr):
            if isinstance(node, BinaryOp) and node.op in ("<", "<=", ">", ">="):
                if _side_is_string(node.left) or _side_is_string(node.right):
                    report.violations.append(
                        "string ordering comparison is not expressible in "
                        "match-action"
                    )

    # -- emission ------------------------------------------------------------

    def emit(self, element: ElementIR) -> CompiledArtifact:
        self._require_legal(element)
        lines: List[str] = [
            "// auto-generated by ADN compiler — P4-16 backend",
            f"// element: {element.name}",
            "#include <core.p4>",
            "#include <v1model.p4>",
            "",
            "header adn_hdr_t {",
        ]
        analysis = element.analysis
        fields = sorted(analysis.fields_read | analysis.fields_written)
        for field_name in fields:
            lines.append(f"    bit<64> {field_name};")
        lines.append("}")
        lines.append("")
        for decl in element.states:
            keys = [c for c in decl.columns if c.is_key]
            lines.append(f"table {decl.name}_t {{")
            lines.append("    key = {")
            for key in keys:
                lines.append(f"        hdr.adn.{key.name}: exact;")
            lines.append("    }")
            lines.append(
                f"    actions = {{ {decl.name}_hit; adn_miss; }}"
            )
            lines.append("    size = 65536;")
            lines.append("}")
        for var in element.vars:
            lines.append(
                f"register<bit<64>>(1) reg_{var.name};"
            )
        lines.append("")
        lines.append(f"control {element.name}Ingress(inout headers hdr,")
        lines.append("                  inout metadata meta,")
        lines.append(
            "                  inout standard_metadata_t standard_metadata) {"
        )
        lines.append("    apply {")
        for kind, handler in sorted(element.handlers.items()):
            lines.append(f"        // on {kind}")
            lines.append(
                f"        if (hdr.adn.kind == ADN_{kind.upper()}) {{"
            )
            for stmt in handler.statements:
                for op in stmt.ops:
                    if isinstance(op, JoinState):
                        lines.append(
                            f"            {op.table}_t.apply();"
                        )
                    elif isinstance(op, FilterRows):
                        lines.append(
                            "            if (!("
                            + _p4_expr(op.predicate)
                            + ")) { mark_to_drop(standard_metadata); return; }"
                        )
                    elif isinstance(op, Project):
                        for name, expr in op.items:
                            lines.append(
                                f"            hdr.adn.{name} = "
                                f"{_p4_expr(expr)};"
                            )
                    elif isinstance(op, UpdateRows):
                        for col, _expr in op.assignments:
                            lines.append(
                                f"            reg_{op.table}_{col}.read(tmp, idx);"
                            )
                            lines.append(
                                f"            reg_{op.table}_{col}.write(idx, tmp + 1);"
                            )
                    elif isinstance(op, AssignVar):
                        lines.append(
                            f"            reg_{op.var}.write(0, "
                            f"{_p4_expr(op.expr)});"
                        )
            lines.append("        }")
        lines.append("    }")
        lines.append("}")
        source = "\n".join(lines) + "\n"
        return CompiledArtifact(
            element=element.name,
            backend=self.name,
            source=source,
            op_count=sum(
                element.analysis.handler_ops(k) for k in element.handlers
            )
            if element.analysis
            else 0,
        )


def _exprs_of(op) -> List[Expr]:
    if isinstance(op, FilterRows):
        return [op.predicate]
    if isinstance(op, Project):
        return [expr for _, expr in op.items]
    if isinstance(op, AssignVar):
        exprs = [op.expr]
        if op.where is not None:
            exprs.append(op.where)
        return exprs
    return []


def _side_is_string(expr: Expr) -> bool:
    return isinstance(expr, Literal) and isinstance(expr.value, str)


def _is_counter_bump(col: str, expr: Expr, table: str) -> bool:
    """col = col + <numeric literal or simple numeric expr>."""
    if not isinstance(expr, BinaryOp) or expr.op not in ("+", "-"):
        return False
    base = expr.left
    return (
        isinstance(base, ColumnRef)
        and base.name == col
        and base.table in (table, None)
    )


def _p4_expr(expr: Expr) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "1w1" if expr.value else "1w0"
        if isinstance(expr.value, float):
            return f"64w{int(expr.value * (1 << 32))} /* Q32.32 */"
        if isinstance(expr.value, str):
            return f"ADN_STR({expr.value!r})"
        return f"64w{expr.value}"
    if isinstance(expr, VarRef):
        return f"meta.{expr.name}"
    if isinstance(expr, ColumnRef):
        if expr.table in (None, "input"):
            return f"hdr.adn.{expr.name}"
        return f"meta.{expr.table}_{expr.name}"
    if isinstance(expr, FuncCall):
        args = ", ".join(_p4_expr(a) for a in expr.args if not _is_table_ref(a))
        mapped = {
            "hash": "crc32",
            "rand": "adn_random",
            "now": "standard_metadata.ingress_global_timestamp",
        }.get(expr.name, expr.name)
        if expr.name == "now":
            return mapped
        if expr.name == "count":
            table = expr.args[0]
            assert isinstance(table, ColumnRef)
            return f"meta.{table.name}_count"
        if expr.name == "contains":
            table = expr.args[0]
            assert isinstance(table, ColumnRef)
            return f"meta.{table.name}_hit"
        return f"{mapped}({args})"
    if isinstance(expr, BinaryOp):
        op = {"and": "&&", "or": "||"}.get(expr.op, expr.op)
        return f"({_p4_expr(expr.left)} {op} {_p4_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        op = "!" if expr.op == "not" else expr.op
        return f"({op}{_p4_expr(expr.operand)})"
    return "/* case */ 64w0"


def _is_table_ref(expr: Expr) -> bool:
    return isinstance(expr, ColumnRef) and expr.table is None
