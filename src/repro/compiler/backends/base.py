"""Backend interface and compiled-artifact types.

A backend turns one :class:`~repro.ir.nodes.ElementIR` into platform
code. Backends must also *refuse* elements their platform cannot host —
the placement solver treats those refusals as hard constraints (paper §4
Q2/Q3: not every element can run in eBPF or on a switch).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ...dsl.functions import FunctionRegistry
from ...errors import BackendError
from ...ir.nodes import ElementIR


@dataclass
class CompiledArtifact:
    """The output of compiling one element for one backend."""

    element: str
    backend: str
    source: str
    #: non-blank generated source lines — the paper's LoC comparison
    loc: int = 0
    #: IR operation count — proxy for per-RPC work of the generated code
    op_count: int = 0
    #: for executable backends: factory() -> object with .process(row, kind)
    factory: Optional[Callable] = None

    def __post_init__(self) -> None:
        if not self.loc:
            self.loc = sum(
                1 for line in self.source.splitlines() if line.strip()
            )


@dataclass
class LegalityReport:
    """Why an element can or cannot run on a platform."""

    element: str
    backend: str
    violations: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return not self.violations


class Backend(abc.ABC):
    """Code generator for one platform family."""

    name: str = "abstract"

    def __init__(self, registry: FunctionRegistry):
        self.registry = registry

    @abc.abstractmethod
    def check(self, element: ElementIR) -> LegalityReport:
        """Static legality check; does not raise."""

    @abc.abstractmethod
    def emit(self, element: ElementIR) -> CompiledArtifact:
        """Generate code. Raises :class:`BackendError` when illegal."""

    def _require_legal(self, element: ElementIR) -> None:
        report = self.check(element)
        if not report.legal:
            raise BackendError(
                f"element {element.name!r} cannot run on {self.name}: "
                + "; ".join(report.violations),
                reasons=report.violations,
            )
