"""Code-generation backends: python (executable, mRPC-style), ebpf, nic
(eBPF subset under SmartNIC capacity limits), p4, wasm. ``make_backends``
builds one of each sharing a function registry."""

from typing import Dict

from ...dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from .base import Backend, CompiledArtifact, LegalityReport
from .ebpf_backend import EbpfBackend
from .nic_backend import NicBackend
from .p4_backend import P4Backend
from .python_backend import PythonBackend
from .wasm_backend import WasmBackend


def make_backends(registry: FunctionRegistry = None) -> Dict[str, Backend]:
    """All backends keyed by name."""
    registry = registry or DEFAULT_REGISTRY
    backends = [
        PythonBackend(registry),
        EbpfBackend(registry),
        NicBackend(registry),
        P4Backend(registry),
        WasmBackend(registry),
    ]
    return {backend.name: backend for backend in backends}


__all__ = [
    "Backend",
    "CompiledArtifact",
    "EbpfBackend",
    "LegalityReport",
    "NicBackend",
    "P4Backend",
    "PythonBackend",
    "WasmBackend",
    "make_backends",
]
