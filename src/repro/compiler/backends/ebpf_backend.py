"""eBPF backend: legality checking and C source generation.

Models what an in-kernel placement can actually host (paper §2/§3: parsing
and processing for standardized protocols is almost impossible to offload,
but ADN's custom flat headers make it feasible). The verifier-driven
constraints we enforce:

* **No unbounded loops** — a join must be a unique-key map lookup
  (``BPF_MAP_TYPE_HASH``); scanning a table is rejected.
* **No heavyweight UDFs** — payload operations (compression, encryption)
  have no kernel helpers and are rejected.
* **No string manipulation** — only fixed-width comparisons; building new
  strings is rejected.
* **Map-shaped state only** — keyed tables become hash maps; append-only
  tables become ring buffers; unkeyed bags are rejected.
* **Floats** are converted to Q32.32 fixed point (noted, not rejected),
  because the BPF ISA has no FPU access.

The generated source is representative eBPF C (maps, ctx accessors, a
``SEC("adn/<element>")`` program per handler) — it is not loaded into a
kernel here, but it is what the paper's compiler would hand to clang.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    VarRef,
)
from ...dsl.schema import FieldType
from ...ir.analysis import _join_is_unique  # shared join-shape analysis
from ...ir.expr_utils import collect_refs, walk
from ...ir.nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    EmitRows,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    Scan,
    UpdateRows,
    op_exprs,
)
from .base import Backend, CompiledArtifact, LegalityReport

#: functions with kernel helper equivalents
_EBPF_FUNCS = {
    "hash": "bpf_crc32c",
    "rand": "bpf_get_prandom_u32",
    "now": "bpf_ktime_get_ns",
    "min": "__min",
    "max": "__max",
    "abs": "__abs",
    "floor": "/* integer floor */",
    "len": "__builtin_strlen /* bounded */",
    "count": "map_count",
    "contains": "bpf_map_lookup_elem",
    "coalesce": "__coalesce",
}

_C_TYPES = {
    FieldType.INT: "__s64",
    FieldType.FLOAT: "__s64 /* Q32.32 */",
    FieldType.BOOL: "__u8",
    FieldType.STR: "char[32]",
    FieldType.BYTES: "__u8*",
}


class EbpfBackend(Backend):
    """Generates eBPF C and enforces the verifier-shaped subset."""

    name = "ebpf"

    # -- legality ----------------------------------------------------------

    def check(self, element: ElementIR) -> LegalityReport:
        report = LegalityReport(element=element.name, backend=self.name)
        analysis = element.analysis
        if analysis is None:
            report.violations.append("element not analyzed")
            return report
        if "fused_from" in element.meta:
            report.violations.append(
                "fused element: kernel programs stay per-element (tail "
                "calls chain them); compile the members individually"
            )
            return report
        for func_name in sorted(
            {f for h in analysis.handlers.values() for f in h.functions}
        ):
            spec = self.registry.get(func_name)
            if spec.payload_op:
                report.violations.append(
                    f"payload UDF {func_name}() has no kernel helper"
                )
            elif func_name not in _EBPF_FUNCS:
                report.violations.append(
                    f"function {func_name}() has no eBPF mapping"
                )
        key_columns = {
            decl.name: tuple(c.name for c in decl.columns if c.is_key)
            for decl in element.states
        }
        for decl in element.states:
            if not decl.append_only and not any(c.is_key for c in decl.columns):
                report.violations.append(
                    f"table {decl.name!r} is an unkeyed bag; eBPF state "
                    "must be a keyed map or a ring buffer"
                )
        for handler in element.handlers.values():
            for stmt in handler.statements:
                for op in stmt.ops:
                    if isinstance(op, JoinState) and not _join_is_unique(
                        op, key_columns
                    ):
                        report.violations.append(
                            f"join on {op.table!r} is not a unique-key "
                            "lookup (unbounded loop)"
                        )
                    if isinstance(op, (UpdateRows, DeleteRows)):
                        if op.where is not None and not _bounded_where(
                            op, key_columns
                        ):
                            report.violations.append(
                                f"{type(op).__name__} on {op.table!r} "
                                "scans the table (predicate is not a "
                                "key lookup)"
                            )
                    self._check_op_exprs(op, report)
        if _uses_floats(element):
            report.notes.append(
                "float arithmetic converted to Q32.32 fixed point"
            )
        if analysis.append_only_state:
            report.notes.append(
                "append-only tables lowered to BPF ring buffers"
            )
        return report

    def _check_op_exprs(self, op, report: LegalityReport) -> None:
        for expr in _op_exprs(op):
            for node in walk(expr):
                if (
                    isinstance(node, BinaryOp)
                    and node.op in ("<", "<=", ">", ">=")
                    and _is_stringy(node.left)
                ):
                    report.violations.append(
                        "string ordering comparison is not supported in eBPF"
                    )

    # -- emission --------------------------------------------------------------

    def emit(self, element: ElementIR) -> CompiledArtifact:
        self._require_legal(element)
        lines: List[str] = [
            "// auto-generated by ADN compiler — eBPF backend",
            f"// element: {element.name}",
            '#include "adn_ebpf.h"',
            "",
        ]
        for decl in element.states:
            if decl.append_only:
                lines.append(
                    f"ADN_RINGBUF({decl.name}, 1 << 20);"
                )
            else:
                key = [c for c in decl.columns if c.is_key]
                value = [c for c in decl.columns if not c.is_key]
                key_type = ", ".join(
                    f"{_C_TYPES[c.type]} {c.name}" for c in key
                )
                value_type = ", ".join(
                    f"{_C_TYPES[c.type]} {c.name}" for c in value
                ) or "__u8 _unused"
                lines.append(
                    f"ADN_HASH_MAP({decl.name}, {{ {key_type} }}, "
                    f"{{ {value_type} }}, 65536);"
                )
        for var in element.vars:
            lines.append(
                f"ADN_GLOBAL({_C_TYPES[var.type].split(' ')[0]}, "
                f"{var.name}, {_c_literal(var.init.value)});"
            )
        lines.append("")
        for kind, handler in sorted(element.handlers.items()):
            lines.append(f'SEC("adn/{element.name}/{kind}")')
            lines.append(
                f"int {element.name.lower()}_{kind}(struct adn_ctx *ctx) {{"
            )
            lines.append("    struct adn_hdr *hdr = adn_hdr(ctx);")
            emitted = self._emit_handler_body(element, handler, lines)
            if not emitted:
                lines.append("    return ADN_PASS;")
            lines.append("}")
            lines.append("")
        source = "\n".join(lines)
        return CompiledArtifact(
            element=element.name,
            backend=self.name,
            source=source,
            op_count=sum(
                element.analysis.handler_ops(k) for k in element.handlers
            )
            if element.analysis
            else 0,
        )

    def _emit_handler_body(self, element, handler, lines: List[str]) -> bool:
        compiler = _CExprCompiler()
        wrote = False
        for stmt in handler.statements:
            for op in stmt.ops:
                if isinstance(op, Scan):
                    continue
                if isinstance(op, JoinState):
                    lines.append(
                        f"    struct {op.table}_value *{op.table}_v = "
                        f"bpf_map_lookup_elem(&{op.table}, "
                        f"&({compiler.key_expr(op)}));"
                    )
                    lines.append(
                        f"    if (!{op.table}_v) return ADN_DROP;"
                    )
                    wrote = True
                elif isinstance(op, FilterRows):
                    lines.append(
                        f"    if (!({compiler.compile(op.predicate)})) "
                        "return ADN_DROP;"
                    )
                    wrote = True
                elif isinstance(op, Project):
                    for name, expr in op.items:
                        lines.append(
                            f"    hdr->{name} = {compiler.compile(expr)};"
                        )
                        wrote = True
                elif isinstance(op, EmitRows):
                    pass  # falling through to ADN_PASS emits
                elif isinstance(op, (InsertRows, InsertLiterals)):
                    lines.append(
                        f"    adn_ringbuf_or_map_write(&{op.table}, hdr);"
                    )
                    wrote = True
                elif isinstance(op, UpdateRows):
                    for col, expr in op.assignments:
                        lines.append(
                            f"    __sync_fetch_and_add(&{op.table}_v->{col}, "
                            f"{compiler.compile(expr)} - {op.table}_v->{col});"
                        )
                    wrote = True
                elif isinstance(op, AssignVar):
                    guard = ""
                    if op.where is not None:
                        guard = f"if ({compiler.compile(op.where)}) "
                    lines.append(
                        f"    {guard}{op.var} = {compiler.compile(op.expr)};"
                    )
                    wrote = True
                elif isinstance(op, DeleteRows):
                    lines.append(
                        f"    bpf_map_delete_elem(&{op.table}, "
                        f"&({compiler.key_expr_for_delete(op)}));"
                    )
                    wrote = True
        lines.append("    return ADN_PASS;")
        return True


def _op_exprs(op) -> List[Expr]:
    return list(op_exprs(op))


def _bounded_where(op, key_columns: Dict[str, tuple]) -> bool:
    """An update/delete predicate is map-friendly when it pins the key
    columns by equality (single map lookup instead of a scan)."""
    keys: Set[str] = set(key_columns.get(op.table, ()))
    if not keys:
        return False
    refs = collect_refs(op.where)
    pinned = {col for tbl, col in refs.table_columns if tbl == op.table}
    return keys <= pinned


def _uses_floats(element: ElementIR) -> bool:
    if any(var.type is FieldType.FLOAT for var in element.vars):
        return True
    for handler in element.handlers.values():
        for stmt in handler.statements:
            for op in stmt.ops:
                for expr in _op_exprs(op):
                    for node in walk(expr):
                        if isinstance(node, Literal) and isinstance(
                            node.value, float
                        ):
                            return True
    return False


def _is_stringy(expr: Expr) -> bool:
    return isinstance(expr, Literal) and isinstance(expr.value, str)


def _c_literal(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"ADN_FIXED({value})"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)


class _CExprCompiler:
    """DSL expression → C fragment (for representative source only)."""

    def compile(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            return _c_literal(expr.value)
        if isinstance(expr, VarRef):
            return expr.name
        if isinstance(expr, ColumnRef):
            if expr.table in (None, "input"):
                return f"hdr->{expr.name}"
            return f"{expr.table}_v->{expr.name}"
        if isinstance(expr, FuncCall):
            if expr.name == "count":
                table = expr.args[0]
                assert isinstance(table, ColumnRef)
                return f"map_count(&{table.name})"
            if expr.name == "contains":
                table = expr.args[0]
                assert isinstance(table, ColumnRef)
                key = self.compile(expr.args[1])
                return f"(bpf_map_lookup_elem(&{table.name}, &({key})) != 0)"
            helper = _EBPF_FUNCS.get(expr.name, expr.name)
            args = ", ".join(self.compile(a) for a in expr.args)
            return f"{helper}({args})"
        if isinstance(expr, BinaryOp):
            op = {"and": "&&", "or": "||"}.get(expr.op, expr.op)
            return f"({self.compile(expr.left)} {op} {self.compile(expr.right)})"
        if isinstance(expr, UnaryOp):
            op = "!" if expr.op == "not" else expr.op
            return f"({op}{self.compile(expr.operand)})"
        if isinstance(expr, CaseExpr):
            out = (
                self.compile(expr.default) if expr.default is not None else "0"
            )
            for condition, value in reversed(expr.whens):
                out = (
                    f"({self.compile(condition)} ? "
                    f"{self.compile(value)} : {out})"
                )
            return out
        return "/* ? */"

    def key_expr(self, op: JoinState) -> str:
        # the unique-join key is the non-table side of the equality
        for node in walk(op.on):
            if isinstance(node, BinaryOp) and node.op == "==":
                for side, other in ((node.left, node.right), (node.right, node.left)):
                    if (
                        isinstance(side, ColumnRef)
                        and side.table == op.table
                    ):
                        return self.compile(other)
        return "0"

    def key_expr_for_delete(self, op: DeleteRows) -> str:
        if op.where is None:
            return "0"
        for node in walk(op.where):
            if isinstance(node, BinaryOp) and node.op == "==":
                for side, other in ((node.left, node.right), (node.right, node.left)):
                    if isinstance(side, ColumnRef) and side.table == op.table:
                        return self.compile(other)
        return "0"
