"""The ADN compiler: DSL source → optimized IR → per-platform artifacts.

This is the control plane's compilation half (paper Figure 3): it takes
the developer's program (elements + app spec), lowers and optimizes each
chain, determines which platforms can host each element, and generates
code for every legal platform. The runtime controller then *places*
elements using the legality matrix and resource availability
(:mod:`repro.control.placement`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.ast_nodes import AppDef, ChainDecl, ElementDef, FilterDef, Program
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.parser import parse
from ..dsl.schema import RpcSchema
from ..dsl.stdlib import load_stdlib
from ..dsl.validator import validate_program
from ..errors import CompileError, TranslationValidationError
from ..ir.analysis import ElementAnalysis, analyze_element
from ..ir.builder import build_element_ir
from ..ir.nodes import ChainIR, ElementIR
from ..ir.optimizer import ChainContext, OptimizerOptions, optimize_chain
from .backends import Backend, CompiledArtifact, LegalityReport, make_backends


@dataclass
class CompiledElement:
    """One element compiled for every platform that can host it."""

    name: str
    ir: ElementIR
    artifacts: Dict[str, CompiledArtifact] = field(default_factory=dict)
    legality: Dict[str, LegalityReport] = field(default_factory=dict)
    dsl_loc: int = 0

    @property
    def analysis(self) -> ElementAnalysis:
        assert self.ir.analysis is not None
        return self.ir.analysis  # type: ignore[return-value]

    def legal_backends(self) -> List[str]:
        return [name for name, report in self.legality.items() if report.legal]

    def artifact(self, backend: str) -> CompiledArtifact:
        try:
            return self.artifacts[backend]
        except KeyError:
            report = self.legality.get(backend)
            reasons = report.violations if report else ["backend unknown"]
            raise CompileError(
                f"element {self.name!r} has no {backend!r} artifact: "
                + "; ".join(reasons)
            ) from None


@dataclass
class CompiledChain:
    """An optimized chain plus its elements' compiled artifacts."""

    decl: ChainDecl
    ir: ChainIR
    elements: Dict[str, CompiledElement]
    filters: Dict[str, FilterDef] = field(default_factory=dict)

    @property
    def element_order(self) -> Tuple[str, ...]:
        return self.ir.element_names

    def analyses(self) -> Dict[str, ElementAnalysis]:
        return {name: ce.analysis for name, ce in self.elements.items()}


@dataclass
class CompiledApp:
    """Everything compiled for one app: all chains, ready for placement."""

    app: AppDef
    schema: RpcSchema
    chains: List[CompiledChain] = field(default_factory=list)

    def chain(self, src: str, dst: str) -> CompiledChain:
        for chain in self.chains:
            if chain.decl.src == src and chain.decl.dst == dst:
                return chain
        raise KeyError(f"no chain {src} -> {dst}")


@dataclass
class ArtifactCacheStats:
    """Hit/miss counters for the compiler's artifact cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class AdnCompiler:
    """Compiles validated programs. Reusable across apps; holds backends,
    optimization options, and an artifact cache keyed by (IR structural
    hash, backend) so unchanged elements aren't re-checked or re-emitted
    on recompiles and hot updates."""

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        options: Optional[OptimizerOptions] = None,
    ):
        self.registry = registry or DEFAULT_REGISTRY
        self.options = options or OptimizerOptions()
        self.backends: Dict[str, Backend] = make_backends(self.registry)
        self._artifact_cache: Dict[
            Tuple[str, str], Tuple[LegalityReport, Optional[CompiledArtifact]]
        ] = {}
        self.cache_stats = ArtifactCacheStats()

    # -- element ----------------------------------------------------------

    def compile_element(
        self, element: ElementDef, dsl_loc: int = 0
    ) -> CompiledElement:
        """Lower, analyze, and emit one element for every legal backend."""
        ir = build_element_ir(element)
        analyze_element(ir, self.registry)
        return self._compile_ir(ir, dsl_loc)

    def _compile_ir(self, ir: ElementIR, dsl_loc: int = 0) -> CompiledElement:
        """Check and emit one analyzed ElementIR for every backend —
        the single emit loop behind both element and chain compilation,
        fronted by the artifact cache."""
        digest = _ir_digest(ir)
        compiled = CompiledElement(name=ir.name, ir=ir, dsl_loc=dsl_loc)
        for backend_name, backend in self.backends.items():
            key = (digest, backend_name)
            cached = self._artifact_cache.get(key)
            if cached is not None:
                self.cache_stats.hits += 1
                report, artifact = cached
            else:
                self.cache_stats.misses += 1
                report = backend.check(ir)
                artifact = backend.emit(ir) if report.legal else None
                self._artifact_cache[key] = (report, artifact)
            compiled.legality[backend_name] = report
            if artifact is not None:
                compiled.artifacts[backend_name] = artifact
        return compiled

    # -- chain --------------------------------------------------------------

    def compile_chain(
        self,
        decl: ChainDecl,
        program: Program,
        schema: RpcSchema,
        app_name: str = "app",
    ) -> CompiledChain:
        """Optimize and compile one chain of a validated program."""
        element_irs: List[ElementIR] = []
        filters: Dict[str, FilterDef] = {}
        loc_by_name: Dict[str, int] = {}
        for name in decl.elements:
            if name in program.filters:
                filters[name] = program.filters[name]
                continue
            if name not in program.elements:
                raise CompileError(f"chain references unknown element {name!r}")
            element_irs.append(build_element_ir(program.elements[name]))
            loc_by_name[name] = _element_loc(program.elements[name])
        context = ChainContext(
            app=app_name,
            src=decl.src,
            dst=decl.dst,
            pinned_pairs=self._pinned_pairs(program, app_name, decl),
            registry=self.registry,
            schema=schema,
        )
        chain_ir = optimize_chain(element_irs, context, self.options)
        if self.options.verify:
            self._check_validation(chain_ir)
        compiled_elements: Dict[str, CompiledElement] = {}
        for element_ir in chain_ir.elements:
            # re-emit from the optimized IR so artifacts reflect passes;
            # a fused element accounts for all its members' DSL lines
            members = element_ir.meta.get("fused_from", (element_ir.name,))
            dsl_loc = sum(loc_by_name.get(member, 0) for member in members)
            compiled_elements[element_ir.name] = self._compile_ir(
                element_ir, dsl_loc
            )
        return CompiledChain(
            decl=decl,
            ir=chain_ir,
            elements=compiled_elements,
            filters=filters,
        )

    def _check_validation(self, chain_ir: ChainIR) -> None:
        """Refuse to emit (or cache) artifacts for a chain whose pass
        pipeline failed translation validation (``compile --verify``)."""
        for report in chain_ir.pass_reports:
            if report.validated is False:
                raise TranslationValidationError(
                    f"pass {report.name!r} failed translation validation: "
                    f"{report.counterexample or 'rewritten chain diverges'}",
                    pass_name=report.name,
                    counterexample=report.counterexample,
                    span=report.counterexample_span,
                )

    def _pinned_pairs(
        self, program: Program, app_name: str, decl: ChainDecl
    ) -> Tuple[Tuple[str, str], ...]:
        app = program.apps.get(app_name)
        if app is None:
            return ()
        pairs: List[Tuple[str, str]] = []
        for constraint in app.constraints:
            if constraint.kind == "before":
                pairs.append((constraint.args[0], constraint.args[1]))
            elif constraint.kind == "after":
                pairs.append((constraint.args[1], constraint.args[0]))
        return tuple(pairs)

    # -- app ------------------------------------------------------------------

    def compile_app(
        self, program: Program, app_name: str, schema: RpcSchema
    ) -> CompiledApp:
        """Compile every chain of an app."""
        if app_name not in program.apps:
            raise CompileError(f"unknown app {app_name!r}")
        app = program.apps[app_name]
        compiled = CompiledApp(app=app, schema=schema)
        for decl in app.chains:
            compiled.chains.append(
                self.compile_chain(decl, program, schema, app_name)
            )
        return compiled

    # -- convenience -----------------------------------------------------------

    def compile_source(
        self,
        source: str,
        schema: RpcSchema,
        app_name: Optional[str] = None,
        include_stdlib: bool = True,
    ) -> CompiledApp:
        """Parse, validate, and compile DSL source in one call.

        ``include_stdlib`` merges the standard element library so apps can
        chain stdlib elements without redefining them.
        """
        program = parse(source)
        if include_stdlib:
            program = load_stdlib().merged(program)
        program = validate_program(program, schema=schema, registry=self.registry)
        if app_name is None:
            if len(program.apps) != 1:
                raise CompileError(
                    "source must define exactly one app (or pass app_name)"
                )
            app_name = next(iter(program.apps))
        return self.compile_app(program, app_name, schema)


def _ir_digest(ir: ElementIR) -> str:
    """Structural hash of an ElementIR (analysis excluded) — the artifact
    cache key. Every IR node is a frozen dataclass, so repr is a faithful
    structural encoding."""
    parts = (
        ir.name,
        tuple(sorted((key, repr(value)) for key, value in ir.meta.items())),
        ir.states,
        ir.vars,
        ir.init,
        tuple(sorted(ir.handlers.items())),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def _element_loc(element: ElementDef) -> int:
    """Non-blank, non-comment DSL line count of one element definition —
    same accounting as :func:`repro.dsl.stdlib.stdlib_loc`, but usable
    for any (possibly user-defined) element in a chain."""
    from ..dsl.printer import print_element

    count = 0
    for raw in print_element(element).splitlines():
        line = raw.strip()
        if line and not line.startswith("--") and not line.startswith("#"):
            count += 1
    return count


def compile_elements(
    names: Sequence[str],
    registry: Optional[FunctionRegistry] = None,
    options: Optional[OptimizerOptions] = None,
) -> Dict[str, CompiledElement]:
    """Compile stdlib elements by name (helper used by tests/benches)."""
    from ..dsl.stdlib import stdlib_loc

    compiler = AdnCompiler(registry=registry, options=options)
    program = load_stdlib(list(names))
    return {
        name: compiler.compile_element(program.elements[name], stdlib_loc(name))
        for name in names
    }
