"""Minimal wire-header synthesis.

"We need to determine the minimum set of headers needed to satisfy the
network requirements" (paper §4 Q2). Once the compiler knows which fields
each downstream element reads — and which fields the destination
application itself consumes — everything else can be stripped from the
wire. This module computes, for each hop between processors, the exact
field set that must cross that hop, and lays those fields out in a
compact binary format.

Layout rules:

* fixed-width fields (int, float, bool) first, ordered by descending
  width then name — keeps hot match fields at stable small offsets;
* variable-width fields (str, bytes) last, each preceded by a varint
  length;
* a 1-byte field-id prefix per field supports schema evolution (old
  processors skip unknown ids).

The layout knows each field's worst-case *fixed* offset, which is what
the P4 backend checks against the switch's parse window: a programmable
switch can only match on roughly the first 200 bytes of a packet (paper
§2, citing Gallium), so every field a switch-placed element reads must
land inside that window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..dsl.schema import META_FIELDS, FieldType, RpcSchema
from ..errors import HeaderLayoutError
from ..ir.analysis import ElementAnalysis
from ..ir.nodes import ChainIR

#: Parse window available to a programmable switch (paper §2: "access to
#: about the first 200 bytes of each network packet").
P4_PARSE_WINDOW_BYTES = 200

#: Wire widths of fixed-size field types.
_FIXED_WIDTHS = {
    FieldType.INT: 8,
    FieldType.FLOAT: 8,
    FieldType.BOOL: 1,
}

#: Fields the transport itself always needs (addressing + matching
#: responses to requests). Everything else is optional per hop.
TRANSPORT_FIELDS = ("src", "dst", "rpc_id", "kind")


@dataclass(frozen=True)
class HeaderField:
    """One field in a wire header layout."""

    name: str
    type: FieldType
    field_id: int
    #: byte offset of this field's value, assuming all preceding
    #: variable fields are empty (their minimum size); fixed-width fields
    #: have exact offsets because they precede all variable ones.
    offset: int
    fixed: bool


@dataclass(frozen=True)
class HeaderLayout:
    """The compact header for one hop."""

    fields: Tuple[HeaderField, ...]
    fixed_bytes: int  # total size of the fixed region

    def field(self, name: str) -> HeaderField:
        for entry in self.fields:
            if entry.name == name:
                return entry
        raise KeyError(name)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(entry.name for entry in self.fields)

    def min_size_bytes(self) -> int:
        """Encoded size with empty variable-width fields."""
        variable = sum(
            2 for entry in self.fields if not entry.fixed
        )  # id + zero varint
        return self.fixed_bytes + variable

    def offsets_within(self, names: Sequence[str], window: int) -> bool:
        """True when every named field sits within the first ``window``
        bytes (fixed region only — variable fields never qualify)."""
        for name in names:
            entry = self.field(name)
            if not entry.fixed:
                return False
            width = _FIXED_WIDTHS[entry.type]
            if entry.offset + width > window:
                return False
        return True


def build_layout(fields: Dict[str, FieldType]) -> HeaderLayout:
    """Lay out the given fields per the module's layout rules."""
    fixed = sorted(
        (name for name, t in fields.items() if t in _FIXED_WIDTHS),
        key=lambda n: (-_FIXED_WIDTHS[fields[n]], n),
    )
    variable = sorted(name for name, t in fields.items() if t not in _FIXED_WIDTHS)
    entries: List[HeaderField] = []
    offset = 0
    next_id = 0
    for name in fixed:
        offset += 1  # field id byte
        entries.append(
            HeaderField(
                name=name,
                type=fields[name],
                field_id=next_id,
                offset=offset,
                fixed=True,
            )
        )
        offset += _FIXED_WIDTHS[fields[name]]
        next_id += 1
    fixed_bytes = offset
    for name in variable:
        offset += 1
        entries.append(
            HeaderField(
                name=name,
                type=fields[name],
                field_id=next_id,
                offset=offset,
                fixed=False,
            )
        )
        next_id += 1
    return HeaderLayout(fields=tuple(entries), fixed_bytes=fixed_bytes)


@dataclass
class HopHeaderPlan:
    """Header requirements for the hop *after* chain position ``after``.

    ``after == -1`` is the hop from the sending application into the
    first processor; ``after == len(chain)-1`` is the final hop into the
    receiving application.
    """

    after: int
    needed_fields: FrozenSet[str]
    layout: HeaderLayout = field(default=None)  # type: ignore[assignment]


#: fields added to every hop header by delivery guarantees (paper Q1:
#: "allow developers to specify message ordering and reliability
#: constraints"). Without the guarantee, the field — and its transport
#: machinery — simply does not exist.
GUARANTEE_FIELDS = {
    "ordered": ("seq", FieldType.INT),
    "reliable": ("ack", FieldType.INT),
}

#: wire field carrying the remaining deadline budget (milliseconds) when
#: deadline propagation is on (repro.overload): the receiver reconstructs
#: an absolute deadline from it, gRPC-style, so downstream processors can
#: drop already-expired RPCs before spending service time. Like the
#: guarantee fields, it exists on the wire only when the stack asks.
DEADLINE_WIRE_FIELD = ("deadline_ms", FieldType.FLOAT)


def guarantee_fields(guarantees) -> Dict[str, FieldType]:
    """Extra wire fields implied by a
    :class:`~repro.dsl.ast_nodes.GuaranteeDecl` (or None)."""
    fields: Dict[str, FieldType] = {}
    if guarantees is None:
        return fields
    if getattr(guarantees, "ordered", False):
        name, type_ = GUARANTEE_FIELDS["ordered"]
        fields[name] = type_
    if getattr(guarantees, "reliable", False):
        name, type_ = GUARANTEE_FIELDS["reliable"]
        fields[name] = type_
    return fields


def fields_needed_downstream(
    chain: ChainIR,
    schema: RpcSchema,
    position: int,
    kind: str = "request",
    app_reads: Optional[FrozenSet[str]] = None,
) -> FrozenSet[str]:
    """Fields that must be available just after chain position
    ``position`` (i.e. read by any later element, or consumed by the
    destination application).

    ``app_reads`` narrows the "destination application" term: by default
    the app is assumed to read every schema field, but the mesh-wide
    liveness analysis (:mod:`repro.analysis.graph`) can prove a smaller
    set — only those then count as consumed downstream."""
    needed: Set[str] = set(TRANSPORT_FIELDS)
    if app_reads is None:
        # the destination application reads all its schema fields
        needed |= set(schema.application_field_names())
    else:
        needed |= set(app_reads) & set(schema.application_field_names())
    needed.add("status")
    for element in chain.elements[position + 1 :]:
        analysis: ElementAnalysis = element.analysis  # type: ignore[assignment]
        handler = analysis.handlers.get(kind)
        if handler is not None:
            needed |= handler.fields_read
        # elements with both handlers may need response-direction fields
        # carried forward in request headers only if they correlate; we
        # keep request/response planning independent.
    return frozenset(needed)


def fields_needed_on_return(
    chain: ChainIR,
    schema: RpcSchema,
    position: int,
) -> FrozenSet[str]:
    """Fields a *response* crossing back over the hop after ``position``
    must carry: read by the response handlers of every element placed at
    or before that position (they see the response on the way back),
    plus what the calling application consumes."""
    needed: Set[str] = set(TRANSPORT_FIELDS)
    needed |= set(schema.application_field_names())
    needed.add("status")
    for element in chain.elements[: position + 1]:
        analysis: ElementAnalysis = element.analysis  # type: ignore[assignment]
        handler = analysis.handlers.get("response")
        if handler is not None:
            needed |= handler.fields_read
    return frozenset(needed)


def fields_available_at(
    chain: ChainIR,
    schema: RpcSchema,
    position: int,
    kind: str = "request",
) -> FrozenSet[str]:
    """Fields an RPC tuple can carry just after chain position
    ``position`` (application fields plus everything written upstream,
    respecting narrowing projections)."""
    available: FrozenSet[str] = frozenset(schema.all_fields())
    for element in chain.elements[: position + 1]:
        analysis: ElementAnalysis = element.analysis  # type: ignore[assignment]
        handler = analysis.handlers.get(kind)
        if handler is not None:
            available = handler.propagate_fields(available)
    return available


def plan_hop_headers(
    chain: ChainIR,
    schema: RpcSchema,
    hop_after: Sequence[int],
    kind: str = "request",
    guarantees=None,
    deadline: bool = False,
    app_reads: Optional[FrozenSet[str]] = None,
) -> List[HopHeaderPlan]:
    """Compute the header layout for each processor-boundary hop.

    ``hop_after`` lists chain positions after which the RPC crosses to a
    different processor (so a wire header is required). ``kind`` selects
    the direction: request headers carry what later elements read,
    response headers carry what earlier elements' response handlers
    read. ``guarantees`` (a GuaranteeDecl) may add seq/ack fields;
    ``deadline`` adds :data:`DEADLINE_WIRE_FIELD` (requests only —
    a response's deadline has already been decided). ``app_reads``
    (request direction only) narrows the set of application fields the
    destination is assumed to consume — see
    :func:`fields_needed_downstream`; responses stay conservative, the
    caller echoes whatever it sent.
    """
    all_types = dict(schema.all_fields())
    extra: Dict[str, FieldType] = dict(guarantee_fields(guarantees))
    if deadline and kind != "response":
        name, type_ = DEADLINE_WIRE_FIELD
        extra[name] = type_
    plans: List[HopHeaderPlan] = []
    for position in hop_after:
        if kind == "response":
            needed = fields_needed_on_return(chain, schema, position)
        else:
            needed = fields_needed_downstream(
                chain, schema, position, kind, app_reads=app_reads
            )
        available = fields_available_at(chain, schema, position, "request")
        carried = (needed & available) | set(extra)
        types: Dict[str, FieldType] = {}
        for name in carried:
            if name in all_types:
                types[name] = all_types[name]
            elif name in extra:
                types[name] = extra[name]
            else:
                # element-derived field: take the type from META_FIELDS or
                # default to STR (derived routing hints are strings)
                types[name] = META_FIELDS.get(name, FieldType.STR)
        layout = build_layout(types)
        plans.append(
            HopHeaderPlan(after=position, needed_fields=frozenset(carried), layout=layout)
        )
    return plans


#: Width of a fixed (zero-padded) string slot when a switch must match
#: on a string field — the "custom header designs" hardware requires
#: (paper §2, citing ATP/Pegasus).
STR_FIXED_WIDTH = 32


def relayout_for_switch(
    layout: HeaderLayout, reads: Sequence[str]
) -> HeaderLayout:
    """Re-lay the header so every STR field the switch reads occupies a
    fixed zero-padded :data:`STR_FIXED_WIDTH`-byte slot in the fixed
    region (exact-match-able); other fields keep their kinds."""
    fields: Dict[str, FieldType] = {
        entry.name: entry.type for entry in layout.fields
    }
    promoted = {
        name
        for name in reads
        if fields.get(name) is FieldType.STR
    }
    fixed = sorted(
        (
            name
            for name, t in fields.items()
            if t in _FIXED_WIDTHS or name in promoted
        ),
        key=lambda n: (-_FIXED_WIDTHS.get(fields[n], STR_FIXED_WIDTH), n),
    )
    variable = sorted(
        name
        for name, t in fields.items()
        if t not in _FIXED_WIDTHS and name not in promoted
    )
    entries: List[HeaderField] = []
    offset = 0
    next_id = 0
    for name in fixed:
        offset += 1
        entries.append(
            HeaderField(
                name=name,
                type=fields[name],
                field_id=next_id,
                offset=offset,
                fixed=True,
            )
        )
        offset += _FIXED_WIDTHS.get(fields[name], STR_FIXED_WIDTH)
        next_id += 1
    fixed_bytes = offset
    for name in variable:
        offset += 1
        entries.append(
            HeaderField(
                name=name,
                type=fields[name],
                field_id=next_id,
                offset=offset,
                fixed=False,
            )
        )
        next_id += 1
    return HeaderLayout(fields=tuple(entries), fixed_bytes=fixed_bytes)


def _window_offset_ok(
    layout: HeaderLayout, name: str, window: int
) -> bool:
    entry = layout.field(name)
    if not entry.fixed:
        return False
    width = _FIXED_WIDTHS.get(entry.type, STR_FIXED_WIDTH)
    return entry.offset + width <= window


def check_switch_window(
    layout: HeaderLayout,
    reads: Sequence[str],
    window: int = P4_PARSE_WINDOW_BYTES,
) -> None:
    """Raise :class:`HeaderLayoutError` when a switch-placed element's
    read fields cannot be made available in the parse window.

    Fields that are fixed-width already must sit inside the window; STR
    fields the switch reads are re-laid as fixed padded slots (custom
    header design); BYTES fields (payloads) can never qualify.
    """
    missing = [name for name in reads if name not in layout.field_names]
    if missing:
        raise HeaderLayoutError(
            f"switch element reads fields not on the wire: {missing}"
        )
    for name in reads:
        if layout.field(name).type is FieldType.BYTES:
            raise HeaderLayoutError(
                f"field {name!r} is a byte payload; it cannot be parsed "
                "by the switch pipeline"
            )
    switch_layout = relayout_for_switch(layout, reads)
    bad = [
        name
        for name in reads
        if not _window_offset_ok(switch_layout, name, window)
    ]
    if bad:
        raise HeaderLayoutError(
            f"fields {sorted(bad)} do not fit in the {window}-byte "
            f"switch parse window (fixed region is "
            f"{switch_layout.fixed_bytes} bytes)"
        )


def wrapped_stack_header_bytes(payload_field: str = "payload") -> int:
    """Header bytes consumed by the conventional wrapped stack before any
    application data appears — Ethernet(14) + IP(20) + TCP(20) +
    HTTP/2 frame+headers(~60) + gRPC message prefix(5) + protobuf field
    tags. Used by the header-size benchmark to contrast with ADN's
    minimal headers."""
    ethernet, ip, tcp = 14, 20, 20
    http2 = 9 + 51  # frame header + typical HPACK-compressed headers
    grpc = 5
    return ethernet + ip + tcp + http2 + grpc
