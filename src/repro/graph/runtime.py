"""Graph-aware runtime: one ADN hop per RPC edge, composed into a
runnable multi-service application.

Each edge of a :class:`~repro.graph.model.ServiceGraph` becomes one
:class:`~repro.runtime.mrpc.AdnMrpcStack` spanning the machines the
graph placement assigned its endpoints. The server handler installed on
every non-leaf service fans out to that service's outgoing edges *in
parallel* and aggregates the answers, so a request entering the graph at
``productpage`` really traverses ``reviews`` and ``ratings`` through
three independent element chains.

Two things ride every hop end to end:

* **deadline budget** — the caller's absolute deadline enters each hop
  via ``deadline_at``; the hop's own ``deadline_budget_ms`` can only
  tighten it (min-merge in :func:`~repro.runtime.filters.wrap_retry_policy`),
  the remaining budget crosses each wire as a relative header field, and
  every downstream server boundary drops already-expired requests before
  spending application service time;
* **priority** — an ordinary schema application field, so it crosses
  every hop (destination apps read all schema fields) and admission
  controllers anywhere in the graph can shed low-priority work first.

Failure semantics: a *required* child edge that fails aborts the parent
RPC at the server boundary. Failure classes a circuit breaker counts
(``Timeout``, ``DeadlineExpired``, ``Shed``, ...) propagate upstream
under their own token — that is what lets a caller's breaker open when a
service *two hops down* crashes — while application-level aborts (an ACL
denial) surface as ``downstream:<edge>`` so upstream breakers do not
trip on a working service saying no.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Generator, List, Optional, Tuple

from ..dsl.functions import FunctionRegistry
from ..dsl.schema import RpcSchema
from ..errors import GraphError
from ..overload import (
    CIRCUIT_OPEN,
    AdmissionConfig,
    CircuitBreakerPolicy,
    RetryBudgetConfig,
)
from ..runtime.filters import BREAKER_FAILURES, RetryPolicy
from ..runtime.message import RpcOutcome
from ..runtime.mrpc import ABORT_KEY, AdnMrpcStack
from ..sim.cluster import Cluster
from ..sim.engine import Simulator
from .model import EdgeKey, EdgeSpec, ServiceGraph
from .placement import GraphPlacement

#: downstream failure classes re-raised upstream under their own token
#: (so retry policies and breakers see the real failure class);
#: everything else is an application answer and propagates as
#: ``downstream:<edge>``
PROPAGATED_FAILURES = frozenset(BREAKER_FAILURES | {CIRCUIT_OPEN})

#: plain per-service logic: ``fn(request, child_outcomes) -> overrides``
#: where ``child_outcomes`` is ``[(EdgeSpec, RpcOutcome), ...]`` for the
#: service's outgoing edges (empty at leaves)
ServiceLogic = Callable[[dict, list], Optional[dict]]


def build_graph_cluster(
    sim: Simulator,
    placement: GraphPlacement,
    costs=None,
    programmable_switch: bool = False,
) -> Cluster:
    """A cluster with every machine the placement references: the solve
    pool plus any machines services were pinned to outside it. Machines
    that host a SmartNIC segment in some edge plan get a NIC; a switch
    segment anywhere makes the ToR programmable (offloaded edge plans
    must be realizable without the caller re-deriving the hardware)."""
    from ..platforms import Platform
    from .placement import DEFAULT_MACHINE_CORES

    nic_machines = {
        segment.machine
        for plan in placement.edge_plans.values()
        for segment in plan.segments
        if segment.platform is Platform.SMARTNIC
    }
    programmable_switch = programmable_switch or any(
        segment.platform is Platform.SWITCH_P4
        for plan in placement.edge_plans.values()
        for segment in plan.segments
    )
    cluster = Cluster(sim, costs=costs, programmable_switch=programmable_switch)
    for spec in placement.machines:
        cluster.add_machine(
            spec.name,
            cores=spec.cores,
            has_smartnic=spec.name in nic_machines,
        )
    for machine in placement.service_machines.values():
        if machine not in cluster.machines:
            cluster.add_machine(
                machine,
                cores=DEFAULT_MACHINE_CORES,
                has_smartnic=machine in nic_machines,
            )
    return cluster


@dataclass
class EdgeStats:
    """Per-edge call accounting, kept by the graph runtime (the stacks
    underneath keep their own richer stats)."""

    calls: int = 0
    ok: int = 0
    aborted_by: Dict[str, int] = field(default_factory=dict)
    latency_s_total: float = 0.0

    @property
    def aborted(self) -> int:
        return self.calls - self.ok

    def record(self, outcome: RpcOutcome) -> None:
        self.calls += 1
        self.latency_s_total += outcome.completed_at - outcome.issued_at
        if outcome.ok:
            self.ok += 1
        else:
            token = outcome.aborted_by
            self.aborted_by[token] = self.aborted_by.get(token, 0) + 1


class GraphRuntime:
    """Instantiates and drives a service graph on one simulator.

    ``entry_call(**fields)`` is the mesh's external request: it fans out
    over the entry service's outgoing edges exactly like an internal
    service handler would, and returns a synthetic
    :class:`~repro.runtime.message.RpcOutcome` that is ``ok`` iff every
    required edge answered ok. Use it as the call function of any
    workload generator.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        placement: GraphPlacement,
        schema: RpcSchema,
        service_logic: Optional[Dict[str, ServiceLogic]] = None,
        admission: Optional[AdmissionConfig] = None,
        retry_budget: Optional[RetryBudgetConfig] = None,
        breaker_policy: Optional[CircuitBreakerPolicy] = None,
        entry: Optional[str] = None,
        seed: int = 0,
        edge_app_reads: Optional[Dict[EdgeKey, FrozenSet[str]]] = None,
        sanitizer=None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.placement = placement
        self.graph: ServiceGraph = placement.graph
        self.schema = schema
        self.service_logic = dict(service_logic or {})
        #: default knobs applied to every edge that opts in via its spec
        self._admission_default = admission or AdmissionConfig()
        self._retry_budget_default = retry_budget or RetryBudgetConfig()
        self._breaker_default = breaker_policy or CircuitBreakerPolicy()
        #: mesh-proven live fields per edge (repro.analysis.graph's
        #: GraphFieldPlan.edge_app_reads()); edges present here get wire
        #: headers narrowed to what the mesh actually consumes
        self._edge_app_reads = dict(edge_app_reads or {})
        #: one shadow exactly-once checker shared by every edge stack
        #: (repro.state.StateSanitizer); None runs the mesh unchecked
        self.sanitizer = sanitizer
        self.stacks: Dict[EdgeKey, AdnMrpcStack] = {}
        self.registries: Dict[EdgeKey, FunctionRegistry] = {}
        self.edge_stats: Dict[EdgeKey, EdgeStats] = {}
        self.entry_calls = 0
        self.entry_ok = 0

        entries = self.graph.entry_services()
        if entry is not None:
            if entry not in self.graph.services:
                raise GraphError(f"unknown entry service {entry!r}")
            self.entry = entry
        elif len(entries) == 1:
            self.entry = entries[0]
        else:
            raise GraphError(
                f"graph {self.graph.name!r} has entry services "
                f"{entries}; pass entry= to pick one"
            )

        for index, edge in enumerate(self.graph.edges):
            self._build_stack(edge, seed + index)

    # -- construction --------------------------------------------------------

    def _retry_policy(self, edge: EdgeSpec, seed: int) -> Optional[RetryPolicy]:
        """An edge gets a policy wrapper when it retries, carries its
        own deadline budget, or needs a per-attempt timeout to survive
        blackholes. An unshaped edge still *inherits* deadlines — the
        raw path reads ``deadline_at`` directly."""
        if (
            edge.max_attempts <= 1
            and edge.deadline_budget_ms is None
            and edge.per_attempt_timeout_ms is None
        ):
            return None
        per_attempt = edge.per_attempt_timeout_ms
        if per_attempt is None:
            per_attempt = (
                edge.deadline_budget_ms
                if edge.deadline_budget_ms is not None
                else 30.0
            )
        return RetryPolicy(
            max_attempts=edge.max_attempts,
            per_attempt_timeout_ms=per_attempt,
            deadline_budget_ms=edge.deadline_budget_ms,
            seed=seed,
        )

    def _edge_admission(self, edge: EdgeSpec) -> Optional[AdmissionConfig]:
        if not edge.admission:
            return None
        if edge.hash_fields:
            # the spec's declared fate-hash overrides the runtime-wide
            # default (ADN604 checks siblings agree statically)
            return replace(
                self._admission_default, hash_fields=edge.hash_fields
            )
        return self._admission_default

    def _build_stack(self, edge: EdgeSpec, seed: int) -> None:
        registry = FunctionRegistry(rng=random.Random(seed))
        policy = self._retry_policy(edge, seed)
        stack = AdnMrpcStack(
            self.sim,
            self.cluster,
            self.placement.edge_chains[edge.key],
            self.schema,
            registry,
            plan=self.placement.edge_plans[edge.key],
            client_service=edge.src,
            server_service=edge.dst,
            server_replicas=self.graph.services[edge.dst].replicas,
            server_handler=self._make_handler(edge.dst),
            retry_policy=policy,
            queue_limit=edge.queue_limit,
            admission=self._edge_admission(edge),
            retry_budget=(
                self._retry_budget_default if edge.max_attempts > 1 else None
            ),
            circuit_breaker=self._breaker_default if edge.breaker else None,
            client_machine=self.placement.machine_of(edge.src),
            server_machine=self.placement.machine_of(edge.dst),
            client_thread=f"{edge.src}-app",
            server_thread=f"{edge.dst}-app",
            l2_tag=edge.name,
            propagate_deadline=True,
            app_reads=self._edge_app_reads.get(edge.key),
            sanitizer=self.sanitizer,
        )
        self.stacks[edge.key] = stack
        self.registries[edge.key] = registry
        self.edge_stats[edge.key] = EdgeStats()

    def _make_handler(self, service: str):
        """The server handler for every edge terminating at ``service``:
        fan out to the service's outgoing edges, then run its local
        logic. Child stacks resolve lazily through ``self.stacks`` so
        edge build order never matters. Leaves with no local logic keep
        the default echo handler (``None``)."""
        children = self.graph.outgoing(service)
        if not children and service not in self.service_logic:
            return None

        def handler(request: dict, deadline_at: Optional[float]) -> Generator:
            outcomes: List[Tuple[EdgeSpec, RpcOutcome]] = []
            failure: Optional[str] = None
            if children:
                fields = self._inherited_fields(request)
                processes = [
                    self.sim.process(
                        self._edge_call(child, fields, deadline_at)
                    )
                    for child in children
                ]
                results = yield self.sim.all_of(processes)
                for child, outcome in results:
                    outcomes.append((child, outcome))
                    if failure is None and child.required and not outcome.ok:
                        failure = self._propagate_token(child, outcome)
            if failure is not None:
                return {ABORT_KEY: failure}
            logic = self.service_logic.get(service)
            if logic is not None:
                return dict(logic(request, outcomes) or {})
            return {}

        return handler

    @staticmethod
    def _propagate_token(edge: EdgeSpec, outcome: RpcOutcome) -> str:
        if outcome.aborted_by in PROPAGATED_FAILURES:
            return outcome.aborted_by
        return f"downstream:{edge.name}"

    def _inherited_fields(self, request: dict) -> dict:
        """Application fields a service copies onto its child RPCs —
        notably ``priority``, which is how end-to-end criticality
        survives fan-out. (Header planning keeps every schema field on
        the wire because destination apps read them all.)"""
        return {
            name: request[name]
            for name in self.schema.application_field_names()
            if name in request
        }

    # -- driving -------------------------------------------------------------

    def _edge_call(
        self,
        edge: EdgeSpec,
        fields: dict,
        deadline_at: Optional[float],
    ) -> Generator:
        call_fields = dict(fields)
        if deadline_at is not None:
            call_fields["deadline_at"] = deadline_at
        outcome = yield self.sim.process(
            self.stacks[edge.key].call(**call_fields)
        )
        self.edge_stats[edge.key].record(outcome)
        return (edge, outcome)

    def entry_call(self, **fields: object) -> Generator:
        """One external request into the entry service; fans out over
        its outgoing edges and aggregates. An optional ``deadline_at``
        field bounds the whole traversal (each edge's own budget can
        only tighten it further)."""
        issued_at = self.sim.now
        raw_deadline = fields.pop("deadline_at", None)
        deadline_at = (
            float(raw_deadline) if raw_deadline is not None else None  # type: ignore[arg-type]
        )
        children = self.graph.outgoing(self.entry)
        processes = [
            self.sim.process(self._edge_call(child, dict(fields), deadline_at))
            for child in children
        ]
        results = yield self.sim.all_of(processes)
        failure = ""
        for child, outcome in results:
            if not failure and child.required and not outcome.ok:
                failure = self._propagate_token(child, outcome)
        self.entry_calls += 1
        if not failure:
            self.entry_ok += 1
        return RpcOutcome(
            request=dict(fields),
            response={
                "kind": "response",
                "status": f"aborted:{failure}" if failure else "ok",
            },
            issued_at=issued_at,
            completed_at=self.sim.now,
            aborted_by=failure,
        )

    # -- observability -------------------------------------------------------

    def stack(self, src: str, dst: str) -> AdnMrpcStack:
        try:
            return self.stacks[(src, dst)]
        except KeyError:
            raise GraphError(f"no edge {src}->{dst}") from None

    def stats(self, src: str, dst: str) -> EdgeStats:
        return self.edge_stats[(src, dst)]

    # -- control-plane reconfiguration ---------------------------------------

    def apply_edge_plan(self, src: str, dst: str, new_plan) -> list:
        """Install a re-solved placement on one edge's stack, subject to
        the stack's epoch fence — the mesh-level entry point a
        controller uses, so stale pushes from a deposed leader are
        refused per edge exactly like on a single hop."""
        return self.stack(src, dst).apply_plan(new_plan)

    @property
    def stale_plans_rejected(self) -> int:
        """Mesh-wide count of fenced (refused) stale config pushes."""
        return sum(s.stale_plans_rejected for s in self.stacks.values())

    @property
    def stale_plans_applied(self) -> int:
        """Mesh-wide split-brain counter: stale plans that were applied
        because a stack ran with its fence off. Zero whenever fencing
        is on — the invariant the resilience benchmark pins."""
        return sum(s.stale_plans_applied for s in self.stacks.values())

    def mesh_stats(self) -> Dict[str, object]:
        """Mesh-wide roll-up: entry goodput plus per-edge counters."""
        return {
            "entry_calls": self.entry_calls,
            "entry_ok": self.entry_ok,
            "edges": {
                f"{src}->{dst}": {
                    "calls": stats.calls,
                    "ok": stats.ok,
                    "aborted_by": dict(stats.aborted_by),
                }
                for (src, dst), stats in self.edge_stats.items()
            },
        }
