"""Canned service graphs and an end-to-end mesh scenario runner.

Two reference topologies:

* :func:`bookinfo_graph` — the 4-service Istio bookinfo app
  (productpage fanning out to details and reviews, reviews calling
  ratings), the smallest graph that exercises fan-out *and* a two-hop
  deadline chain;
* :func:`hotel_mesh_graph` — a 12-service DeathStarBench-style
  hotel-reservation mesh, deep and wide enough that a mid-graph crash
  is three hops from the client and overload control has to act
  mesh-wide.

:func:`run_graph_scenario` wires a graph through placement, the graph
runtime, the mesh workload (diurnal Poisson + Zipf users + priority
mix), and optionally a :class:`~repro.faults.FaultPlan` — the PR-4/PR-5
machinery re-exercised on a real application graph instead of a single
hop. Costs are inflated the same way the overload sweep does it
(``element_dispatch_us``) so capacity is bounded and a short simulated
run saturates realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dsl.schema import FieldType, RpcSchema
from ..dsl.stdlib import load_stdlib
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..overload import AdmissionConfig, CircuitBreakerPolicy, RetryBudgetConfig
from ..runtime.message import reset_rpc_ids
from ..sim.costmodel import CostModel
from ..sim.engine import Simulator
from ..sim.metrics import RunMetrics
from .model import GraphBuilder, ServiceGraph
from .placement import GraphPlacement, solve_graph_placement
from .runtime import GraphRuntime, build_graph_cluster
from .workload import MeshWorkload, MeshWorkloadConfig

#: the mesh application schema; ``priority`` is an ordinary application
#: field, which is exactly why it survives every hop (destination apps
#: read all schema fields, so header planning always carries them)
MESH_SCHEMA = RpcSchema.of(
    "mesh",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
    priority=FieldType.INT,
)


def mesh_program():
    return load_stdlib(schema=MESH_SCHEMA)


def bookinfo_graph(deadline_ms: float = 40.0) -> ServiceGraph:
    """Istio's bookinfo: productpage -> {details, reviews}, reviews ->
    ratings. The productpage edges carry the end-to-end budget; the
    ratings hop inherits whatever remains of it.

    The services declare what they actually consume (``reads``), which
    is what lets the mesh-wide liveness analysis
    (:mod:`repro.analysis.graph`) prove fields dead per edge and shrink
    the wire headers — e.g. ``details`` only reads the payload, so
    username/obj_id/priority never need to cross that edge."""
    return (
        GraphBuilder("bookinfo")
        .service("productpage")
        .service("details", reads=("payload",))
        .service("reviews", replicas=2, reads=("payload",))
        .service("ratings", reads=("obj_id",))
        .edge(
            "productpage", "details",
            elements=("Logging",),
            deadline_budget_ms=deadline_ms,
        )
        .edge(
            "productpage", "reviews",
            elements=("Logging", "LbKeyHash"),
            deadline_budget_ms=deadline_ms,
            max_attempts=2,
            per_attempt_timeout_ms=deadline_ms / 2,
            breaker=True,
        )
        .edge(
            "reviews", "ratings",
            elements=("Logging",),
            deadline_budget_ms=deadline_ms / 2,
            admission=True,
            queue_limit=48,
            hash_fields=("username", "obj_id"),
        )
        .build()
    )


def hotel_mesh_graph(
    deadline_ms: float = 60.0,
    crash_timeout_ms: float = 5.0,
) -> ServiceGraph:
    """A 12-service hotel-reservation mesh (DeathStarBench shape).

    gateway fans out to search / profile / recommendation / reservation;
    search needs geo + rate; profile chains through review to user;
    reservation needs payment + inventory, and payment notifies.
    ``recommendation`` is optional — losing it degrades the answer
    instead of failing it. Every edge into a mid-graph service carries a
    per-attempt timeout (``crash_timeout_ms``) so a crashed host turns
    silence into fast, breaker-countable failures.
    """
    builder = GraphBuilder("hotel-mesh")
    for name, replicas in (
        ("gateway", 1),
        ("search", 2),
        ("profile", 2),
        ("recommendation", 1),
        ("reservation", 2),
        ("geo", 1),
        ("rate", 2),
        ("review", 1),
        ("user", 1),
        ("payment", 1),
        ("inventory", 1),
        ("notify", 1),
    ):
        builder.service(name, replicas=replicas)
    half = deadline_ms / 2
    quarter = deadline_ms / 4
    builder.edge(
        "gateway", "search",
        elements=("Logging", "LbKeyHash"),
        deadline_budget_ms=deadline_ms,
        max_attempts=2,
        per_attempt_timeout_ms=half,
        admission=True,
        queue_limit=48,
        hash_fields=("username", "obj_id"),
        breaker=True,
    )
    builder.edge(
        "gateway", "profile",
        elements=("Logging", "LbKeyHash"),
        deadline_budget_ms=deadline_ms,
        max_attempts=2,
        per_attempt_timeout_ms=half,
        admission=True,
        queue_limit=48,
        hash_fields=("username", "obj_id"),
        breaker=True,
    )
    builder.edge(
        "gateway", "recommendation",
        elements=("Logging",),
        deadline_budget_ms=half,
        per_attempt_timeout_ms=quarter,
        breaker=True,
        required=False,
    )
    builder.edge(
        "gateway", "reservation",
        elements=("Logging", "LbKeyHash"),
        deadline_budget_ms=deadline_ms,
        max_attempts=2,
        per_attempt_timeout_ms=half,
        admission=True,
        queue_limit=48,
        hash_fields=("username", "obj_id"),
        breaker=True,
    )
    builder.edge(
        "search", "geo",
        elements=("Logging",),
        deadline_budget_ms=half,
        max_attempts=2,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    builder.edge(
        "search", "rate",
        elements=("LbKeyHash",),
        deadline_budget_ms=half,
        per_attempt_timeout_ms=crash_timeout_ms,
        admission=True,
        queue_limit=48,
        hash_fields=("username", "obj_id"),
        breaker=True,
    )
    builder.edge(
        "recommendation", "rate",
        elements=("LbKeyHash",),
        deadline_budget_ms=quarter,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    builder.edge(
        "profile", "review",
        elements=("Logging",),
        deadline_budget_ms=half,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    builder.edge(
        "review", "user",
        elements=("Logging",),
        deadline_budget_ms=quarter,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    builder.edge(
        "reservation", "payment",
        elements=("Logging",),
        deadline_budget_ms=half,
        max_attempts=2,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    builder.edge(
        "reservation", "inventory",
        elements=("Logging",),
        deadline_budget_ms=half,
        max_attempts=2,
        per_attempt_timeout_ms=crash_timeout_ms,
        admission=True,
        queue_limit=48,
        hash_fields=("username", "obj_id"),
        breaker=True,
    )
    builder.edge(
        "payment", "notify",
        elements=("Logging",),
        deadline_budget_ms=quarter,
        per_attempt_timeout_ms=crash_timeout_ms,
        breaker=True,
    )
    return builder.build()


@dataclass
class GraphScenarioResult:
    """Everything one mesh run produced."""

    graph: ServiceGraph
    placement: GraphPlacement
    runtime: GraphRuntime
    workload: MeshWorkload
    metrics: RunMetrics
    fault_timeline: List = field(default_factory=list)

    @property
    def goodput_rps(self) -> float:
        return self.workload.goodput_rps()

    @property
    def goodput_ratio(self) -> float:
        return self.workload.goodput_ratio()

    def breaker_opens(self) -> Dict[str, int]:
        """Edges whose client-side breaker opened at least once."""
        opens: Dict[str, int] = {}
        for (src, dst), stack in self.runtime.stacks.items():
            breaker = stack.breaker
            if breaker is not None and breaker.opens > 0:
                opens[f"{src}->{dst}"] = breaker.opens
        return opens

    def sheds(self) -> int:
        total = 0
        for stats in self.runtime.edge_stats.values():
            total += stats.aborted_by.get("Shed", 0)
        return total


def run_graph_scenario(
    graph: Optional[ServiceGraph] = None,
    base_rps: float = 2_000.0,
    duration_s: float = 0.3,
    drain_s: float = 0.1,
    fault_plan: Optional[FaultPlan] = None,
    service_cost_us: float = 36.0,
    users: int = 1_000_000,
    diurnal_amplitude: float = 0.2,
    diurnal_period_s: float = 0.25,
    priority_high_ratio: float = 0.1,
    admission: Optional[AdmissionConfig] = None,
    strategy: str = "software",
    seed: int = 1,
    sanitizer=None,
) -> GraphScenarioResult:
    """One fresh simulation of a mesh under this workload/fault plan.

    The default knobs mirror the overload sweep: inflated element
    dispatch cost bounds capacity, admission targets a 2 ms sojourn, the
    breaker exists for *dead* downstreams (high trip threshold, short
    open period so probes find restarts quickly).
    """
    graph = graph or hotel_mesh_graph()
    reset_rpc_ids()
    sim = Simulator()
    program = mesh_program()
    placement = solve_graph_placement(
        graph, program, MESH_SCHEMA, strategy=strategy
    )
    costs = CostModel(element_dispatch_us=service_cost_us)
    cluster = build_graph_cluster(sim, placement, costs=costs)
    runtime = GraphRuntime(
        sim,
        cluster,
        placement,
        MESH_SCHEMA,
        # hash_fields makes probabilistic sheds fate-coherent: all of a
        # request's sub-RPCs (which share username/obj_id through
        # fan-out) live or die together, instead of three gateway edges
        # compounding independent shed draws against the same request
        admission=admission
        or AdmissionConfig(
            target_delay_ms=2.0,
            interval_ms=10.0,
            hash_fields=("username", "obj_id"),
            seed=seed,
        ),
        retry_budget=RetryBudgetConfig(ratio=0.1),
        # the breaker exists to answer a *dead* downstream locally; a
        # partial-shed burst under mere overload must not trip it, so
        # the threshold sits far above any shed run (same tuning as the
        # single-hop overload sweep)
        breaker_policy=CircuitBreakerPolicy(
            failure_threshold=100, open_ms=2.0, seed=seed
        ),
        seed=seed,
        sanitizer=sanitizer,
    )

    injector = FaultInjector(sim, cluster)
    for stack in runtime.stacks.values():
        injector.register_stack(stack)
    if fault_plan is not None:
        sim.process(injector.run(fault_plan))

    workload = MeshWorkload(
        sim,
        runtime,
        MeshWorkloadConfig(
            users=users,
            base_rps=base_rps,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_period_s=diurnal_period_s,
            duration_s=duration_s,
            priority_high_ratio=priority_high_ratio,
            seed=seed,
        ),
    )
    metrics = workload.run(drain_s=drain_s)
    return GraphScenarioResult(
        graph=graph,
        placement=placement,
        runtime=runtime,
        workload=workload,
        metrics=metrics,
        fault_timeline=list(injector.timeline),
    )
