"""Mesh workload model: what a production service graph actually sees.

Three properties distinguish mesh traffic from the paper's closed-loop
microbenchmark, and each one exercises a different part of the graph
layer:

* **open-loop arrivals with diurnal shaping** — a nonhomogeneous
  Poisson process (rate modulated by a sinusoidal day curve) generated
  by thinning, so overload control is tested against load that *keeps
  arriving* while the mesh degrades;
* **hot-key skew** — users are drawn from a Zipf distribution over a
  population of millions, via Devroye's rejection method: O(1) memory
  and O(1) expected time per draw, no precomputed CDF, so "millions of
  simulated users" costs nothing;
* **priority mix** — a configurable fraction of requests carry an
  elevated ``priority`` field, which rides the schema end to end and
  lets admission controllers anywhere in the graph shed the cheap
  traffic first.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..runtime.message import RpcOutcome
from ..sim.engine import Simulator
from ..sim.metrics import RunMetrics
from .runtime import GraphRuntime


class ZipfSampler:
    """Zipf(s) over ``{1..n}`` by rejection (Devroye 1986, the method
    numpy uses), valid for ``s > 1``. Expected iterations per draw is a
    small constant independent of ``n``, so a population of millions is
    as cheap as one of dozens."""

    def __init__(self, n: int, s: float = 1.2):
        if n < 1:
            raise ValueError("population must be >= 1")
        if s <= 1.0:
            raise ValueError("rejection sampling needs s > 1")
        self.n = n
        self.s = s
        self._b = 2.0 ** (s - 1.0)

    def sample(self, rng: random.Random) -> int:
        while True:
            u = 1.0 - rng.random()  # (0, 1]
            v = rng.random()
            x = math.floor(u ** (-1.0 / (self.s - 1.0)))
            if x < 1 or x > self.n:
                continue
            t = (1.0 + 1.0 / x) ** (self.s - 1.0)
            if v * x * (t - 1.0) / (self._b - 1.0) <= t / self._b:
                return int(x)


@dataclass
class MeshWorkloadConfig:
    """Knobs for one mesh workload run."""

    #: simulated user population; arrival user ids are Zipf-skewed over
    #: it, so a tiny hot set dominates (cache-busting realism)
    users: int = 1_000_000
    zipf_s: float = 1.2
    #: mean arrival rate before diurnal shaping
    base_rps: float = 2_000.0
    #: peak-to-mean swing of the day curve (0 = flat Poisson)
    diurnal_amplitude: float = 0.3
    #: one simulated "day"; short by default so tests see full cycles
    diurnal_period_s: float = 1.0
    duration_s: float = 1.0
    #: fraction of requests issued at elevated priority
    priority_high_ratio: float = 0.1
    #: priority value of the elevated tier (>= admission's threshold)
    high_priority: int = 1
    seed: int = 1


class MeshWorkload:
    """Open-loop driver for a :class:`~repro.graph.runtime.GraphRuntime`
    (or any call function) with diurnal Poisson arrivals and Zipf users.

    The diurnal rate is ``base * (1 + amp * sin(2*pi*t/period))``,
    realized by thinning: candidate arrivals at the peak rate, each
    accepted with probability ``rate(t)/peak``. Thinning preserves the
    Poisson property exactly — no time-discretization artifacts.
    """

    def __init__(
        self,
        sim: Simulator,
        call,
        config: Optional[MeshWorkloadConfig] = None,
    ):
        if isinstance(call, GraphRuntime):
            call = call.entry_call
        self.sim = sim
        self.call = call
        self.config = config or MeshWorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.zipf = ZipfSampler(self.config.users, self.config.zipf_s)
        self.metrics = RunMetrics()
        #: goodput accounting by priority tier
        self.ok_by_priority: Dict[int, int] = {}
        self.issued_by_priority: Dict[int, int] = {}

    def _rate(self, t: float) -> float:
        config = self.config
        if config.diurnal_amplitude <= 0.0:
            return config.base_rps
        phase = 2.0 * math.pi * t / config.diurnal_period_s
        return config.base_rps * (
            1.0 + config.diurnal_amplitude * math.sin(phase)
        )

    def fields_for(self, index: int) -> Dict[str, object]:
        """One arrival's application fields: Zipf-skewed user identity
        (hot keys), a small payload, and the priority tier."""
        high = self.rng.random() < self.config.priority_high_ratio
        return {
            "payload": b"x" * 64,
            "username": f"user{self.zipf.sample(self.rng)}",
            "obj_id": self.rng.randrange(1 << 16),
            "priority": self.config.high_priority if high else 0,
        }

    def run(self, drain_s: float = 0.5) -> RunMetrics:
        self.sim.process(self._arrivals())
        self.sim.run(until=self.sim.now + self.config.duration_s + drain_s)
        self.metrics.elapsed_s = self.config.duration_s
        return self.metrics

    def _arrivals(self) -> Generator:
        config = self.config
        peak = config.base_rps * (1.0 + max(0.0, config.diurnal_amplitude))
        started = self.sim.now
        index = 0
        while self.sim.now - started < config.duration_s:
            yield self.sim.timeout(self.rng.expovariate(peak))
            # thinning: accept this candidate with rate(t)/peak
            t = self.sim.now - started
            if self.rng.random() * peak > self._rate(t):
                continue
            index += 1
            fields = self.fields_for(index)
            self.metrics.issued += 1
            priority = int(fields.get("priority", 0))
            self.issued_by_priority[priority] = (
                self.issued_by_priority.get(priority, 0) + 1
            )
            self.sim.process(self._one(fields, priority))

    def _one(self, fields: Dict[str, object], priority: int) -> Generator:
        outcome: RpcOutcome = yield self.sim.process(self.call(**fields))
        self.metrics.completed += 1
        self.metrics.latency.record(outcome.latency_s)
        if outcome.ok:
            self.ok_by_priority[priority] = (
                self.ok_by_priority.get(priority, 0) + 1
            )
        else:
            self.metrics.aborted += 1

    # -- derived -------------------------------------------------------------

    def goodput_rps(self) -> float:
        if self.metrics.elapsed_s <= 0:
            return 0.0
        ok = self.metrics.completed - self.metrics.aborted
        return ok / self.metrics.elapsed_s

    def goodput_ratio(self, priority: Optional[int] = None) -> float:
        """Fraction of issued requests answered ok (optionally for one
        priority tier)."""
        if priority is None:
            issued = self.metrics.issued
            ok = self.metrics.completed - self.metrics.aborted
        else:
            issued = self.issued_by_priority.get(priority, 0)
            ok = self.ok_by_priority.get(priority, 0)
        return ok / issued if issued else 0.0
