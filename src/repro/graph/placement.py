"""Cross-service placement: assign graph services to machines, then
solve each edge's element chain under the resulting pair of hosts.

The single-hop :class:`~repro.control.placement.PlacementSolver` already
answers "where does each element of *one* chain run, given a client
machine and a server machine". The graph layer's job is the step above:
pick the machines. Pinned services keep their pin; the rest are
balanced least-loaded-first by core demand (app replicas plus one
shared mRPC engine core per occupied machine), callers-first in
topological order. Each edge then gets an ordinary
per-chain solve with ``client_machine``/``server_machine`` set to the
endpoints' hosts — the whole point of parametrizing those out of the
single-hop stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.compiler import AdnCompiler, CompiledChain
from ..control.placement import ClusterSpec, PlacementRequest, solve_placement
from ..dsl.ast_nodes import ChainDecl, Program
from ..dsl.schema import RpcSchema
from ..errors import GraphError
from ..lint.diagnostics import Diagnostic
from ..offload.split import SplitDecision, solve_offload_plan
from ..runtime.processor import PlacementPlan
from .model import EdgeKey, ServiceGraph

#: cores granted to each default machine; graph meshes co-locate many
#: app threads per host, unlike the paper's two-Xeon testbed
DEFAULT_MACHINE_CORES = 64


@dataclass(frozen=True)
class MachineSpec:
    """One host available to the graph placement solve."""

    name: str
    cores: int = DEFAULT_MACHINE_CORES


def default_machine_pool(count: int = 4) -> List[MachineSpec]:
    return [MachineSpec(name=f"node-{i}") for i in range(count)]


@dataclass
class GraphPlacement:
    """Output of :func:`solve_graph_placement`."""

    graph: ServiceGraph
    #: service name -> machine name
    service_machines: Dict[str, str] = field(default_factory=dict)
    #: edge key -> solved single-hop plan for that edge's chain
    edge_plans: Dict[EdgeKey, PlacementPlan] = field(default_factory=dict)
    #: edge key -> compiled chain (reused by the runtime; compiling is
    #: the expensive half of a solve)
    edge_chains: Dict[EdgeKey, CompiledChain] = field(default_factory=dict)
    machines: List[MachineSpec] = field(default_factory=list)
    #: edge key -> split decision, for edges that requested an offload
    #: tier (the host-fallback story lives in its diagnostics)
    edge_offloads: Dict[EdgeKey, SplitDecision] = field(default_factory=dict)
    #: ADN406 etc. raised while solving (capacity fallbacks — the solve
    #: still succeeds)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def machine_of(self, service: str) -> str:
        try:
            return self.service_machines[service]
        except KeyError:
            raise GraphError(f"no placement for service {service!r}") from None

    def services_on(self, machine: str) -> List[str]:
        return sorted(
            name
            for name, host in self.service_machines.items()
            if host == machine
        )

    def to_dict(self) -> dict:
        return {
            "graph": self.graph.name,
            "service_machines": dict(self.service_machines),
            "edges": {
                f"{src}->{dst}": [
                    {
                        "elements": list(segment.elements),
                        "platform": segment.platform.value,
                        "machine": segment.machine,
                    }
                    for segment in plan.segments
                ]
                for (src, dst), plan in self.edge_plans.items()
            },
        }


def _core_demand(graph: ServiceGraph, service: str) -> int:
    """Host cores a service occupies: one per server-side app replica,
    plus one for its client-side issue thread (services that call out
    get a distinct thread pool for issuing RPCs)."""
    return max(1, graph.services[service].replicas) + 1


def assign_service_machines(
    graph: ServiceGraph,
    machines: Sequence[MachineSpec],
) -> Dict[str, str]:
    """Map every service to a machine.

    Pins win outright (and may name machines outside the pool — the
    caller promised they exist). Unpinned services go least-loaded-first
    in topological order, reserving one core per machine for the shared
    mRPC engine thread the runtime creates there.
    """
    if not machines:
        raise GraphError("graph placement needs at least one machine")
    pool = {spec.name: spec for spec in machines}
    # free cores per pool machine, minus the engine core reserved on use
    free: Dict[str, int] = {spec.name: spec.cores for spec in machines}
    occupied: set = set()

    def charge(machine: str, cores: int) -> None:
        if machine not in free:
            return  # pinned outside the pool: caller's capacity problem
        need = cores + (0 if machine in occupied else 1)
        if free[machine] < need:
            raise GraphError(
                f"machine {machine!r} out of cores "
                f"({free[machine]} free, {need} needed)"
            )
        if machine not in occupied:
            occupied.add(machine)
            free[machine] -= 1
        free[machine] -= cores

    assignment: Dict[str, str] = {}
    for service in graph.topological_order():
        spec = graph.services[service]
        demand = _core_demand(graph, service)
        if spec.machine is not None:
            assignment[service] = spec.machine
            charge(spec.machine, demand)
            continue
        # least-loaded first: a mesh wants services *spread*, not packed
        # — every occupied machine funnels its hops through one shared
        # engine thread, so packing concentrates the bottleneck
        candidates = sorted(
            pool, key=lambda name: (-free[name], list(pool).index(name))
        )
        for candidate in candidates:
            need = demand + (0 if candidate in occupied else 1)
            if free[candidate] >= need:
                assignment[service] = candidate
                charge(candidate, demand)
                break
        else:
            raise GraphError(
                f"no machine has {demand} free cores for service "
                f"{service!r} (pool: "
                + ", ".join(f"{m}={free[m]}" for m in pool)
                + ")"
            )
    return assignment


def solve_graph_placement(
    graph: ServiceGraph,
    program: Program,
    schema: RpcSchema,
    strategy: str = "software",
    machines: Optional[Sequence[MachineSpec]] = None,
    compiler: Optional[AdnCompiler] = None,
) -> GraphPlacement:
    """Assign services to machines and solve every edge's chain.

    Raises :class:`GraphError` for topology-level failures and lets
    per-edge :class:`~repro.errors.PlacementError` propagate — an edge
    whose chain cannot be placed is a real deployment error, not
    something to paper over.
    """
    pool = list(machines) if machines is not None else default_machine_pool()
    assignment = assign_service_machines(graph, pool)
    compiler = compiler or AdnCompiler()

    placement = GraphPlacement(
        graph=graph, service_machines=assignment, machines=pool
    )
    for edge in graph.edges:
        decl = ChainDecl(src=edge.src, dst=edge.dst, elements=edge.elements)
        chain = compiler.compile_chain(
            decl, program, schema, app_name=graph.name
        )
        if edge.offload is not None:
            # split-chain compilation: the device-legal prefix runs on
            # the hardware in front of the destination host; capacity
            # refusals fall back to host placement with a diagnostic
            plan, decision = solve_offload_plan(
                chain,
                schema,
                edge.offload,
                server_machine=assignment[edge.dst],
                queue_limit=edge.queue_limit,
                path=f"{graph.name}:{edge.name}",
            )
            placement.edge_offloads[edge.key] = decision
            placement.diagnostics.extend(decision.diagnostics)
        else:
            cluster = ClusterSpec(
                client_machine=assignment[edge.src],
                server_machine=assignment[edge.dst],
            )
            plan = solve_placement(
                PlacementRequest(
                    chain=chain,
                    schema=schema,
                    cluster=cluster,
                    strategy=strategy,
                )
            )
        placement.edge_chains[edge.key] = chain
        placement.edge_plans[edge.key] = plan
    return placement
