"""Service-graph topology: services, RPC edges, per-edge chains.

The paper pitches per-application networks for *microservice meshes*,
and real meshes are DAGs of tens of services (bookinfo, online-boutique,
hotel-reservation), not one client→server chain. A
:class:`ServiceGraph` is the layer above the element DSL: it names the
services, the RPC edges between them, and the element chain attached to
each edge — the unit everything downstream consumes (placement solve per
edge under shared machines, one runnable hop per edge, mesh workload at
the entry services).

Build one three ways:

* the fluent :class:`GraphBuilder` (``examples/bookinfo.py``);
* a JSON topology spec (:meth:`ServiceGraph.from_json`, what
  ``python -m repro graph`` loads);
* directly from :class:`ServiceSpec`/:class:`EdgeSpec` values.

Validation is structural (endpoints exist, no duplicate or self edges,
acyclic) plus semantic against a compiled program/schema
(:meth:`ServiceGraph.check_chains`): every attached element must exist
and compile against the RPC schema, exactly like a ``chain`` clause in
an ``app`` block.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError

EdgeKey = Tuple[str, str]


@dataclass(frozen=True)
class ServiceSpec:
    """One service in the application graph."""

    name: str
    #: server-side application replicas (sets the app thread capacity)
    replicas: int = 1
    #: pin the service to a machine; ``None`` lets the graph placement
    #: solve assign one
    machine: Optional[str] = None
    #: application schema fields this service's *logic* consumes.
    #: ``None`` means undeclared — the interprocedural analyzer then
    #: conservatively assumes the service reads every application field.
    #: Declaring reads is what lets mesh-wide dead-field elimination
    #: shrink the wire headers feeding this service.
    reads: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.reads is not None and not isinstance(self.reads, tuple):
            object.__setattr__(self, "reads", tuple(self.reads))

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.replicas != 1:
            out["replicas"] = self.replicas
        if self.machine is not None:
            out["machine"] = self.machine
        if self.reads is not None:
            out["reads"] = list(self.reads)
        return out


@dataclass(frozen=True)
class EdgeSpec:
    """One RPC edge ``src -> dst`` with its attached element chain and
    the per-edge reliability/overload profile the runtime realizes.

    The deadline knobs mirror the single-hop stack: a
    ``deadline_budget_ms`` bounds the *logical* call on this edge and is
    what the wire header propagates downstream; retries happen only when
    ``max_attempts > 1``. ``admission``/``queue_limit``/``breaker`` turn
    on the PR-5 overload machinery for this edge's processors.
    """

    src: str
    dst: str
    elements: Tuple[str, ...] = ()
    #: overall budget for one logical call over this edge (ms); also the
    #: value propagated on the wire so downstream hops inherit it
    deadline_budget_ms: Optional[float] = None
    #: total attempts per logical call (1 = no retries)
    max_attempts: int = 1
    per_attempt_timeout_ms: Optional[float] = None
    #: install a CoDel-style admission controller on this edge's
    #: processors
    admission: bool = False
    queue_limit: Optional[int] = None
    #: client-side circuit breaker + token-bucket retry budget
    breaker: bool = False
    #: a failed call on this edge fails the parent RPC; optional edges
    #: (e.g. recommendations) degrade the answer instead
    required: bool = True
    #: fields the admission controller hashes for fate-coherent shedding
    #: (empty: the runtime's default config applies); sibling edges that
    #: shed on different fields split one logical request's fate —
    #: ADN604 checks this statically
    hash_fields: Tuple[str, ...] = ()
    #: offload tier for this edge's chain: "nic" or "switch" splits the
    #: device-legal element prefix onto the hardware in front of the
    #: destination host (repro.offload); None keeps the software solve
    offload: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.elements, tuple):
            object.__setattr__(self, "elements", tuple(self.elements))
        if not isinstance(self.hash_fields, tuple):
            object.__setattr__(self, "hash_fields", tuple(self.hash_fields))
        if self.offload is not None and self.offload not in (
            "nic", "switch"
        ):
            raise GraphError(
                f"edge {self.src}->{self.dst}: unknown offload tier "
                f"{self.offload!r} (choose 'nic' or 'switch')"
            )

    @property
    def key(self) -> EdgeKey:
        return (self.src, self.dst)

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def retries(self) -> bool:
        return self.max_attempts > 1

    def to_dict(self) -> dict:
        out: dict = {"src": self.src, "dst": self.dst}
        if self.elements:
            out["elements"] = list(self.elements)
        for key, default in (
            ("deadline_budget_ms", None),
            ("max_attempts", 1),
            ("per_attempt_timeout_ms", None),
            ("admission", False),
            ("queue_limit", None),
            ("breaker", False),
            ("required", True),
            ("offload", None),
        ):
            value = getattr(self, key)
            if value != default:
                out[key] = value
        if self.hash_fields:
            out["hash_fields"] = list(self.hash_fields)
        return out


@dataclass
class ServiceGraph:
    """A validated application graph (services + RPC edges, a DAG)."""

    name: str
    services: Dict[str, ServiceSpec] = field(default_factory=dict)
    edges: List[EdgeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate_structure()

    # -- structure -----------------------------------------------------------

    def _validate_structure(self) -> None:
        seen: set = set()
        for edge in self.edges:
            if edge.src not in self.services:
                raise GraphError(
                    f"graph {self.name!r}: edge {edge.name} references "
                    f"unknown service {edge.src!r}"
                )
            if edge.dst not in self.services:
                raise GraphError(
                    f"graph {self.name!r}: edge {edge.name} references "
                    f"unknown service {edge.dst!r}"
                )
            if edge.src == edge.dst:
                raise GraphError(
                    f"graph {self.name!r}: self-edge {edge.name} "
                    "(a service does not RPC itself)"
                )
            if edge.key in seen:
                raise GraphError(
                    f"graph {self.name!r}: duplicate edge {edge.name}"
                )
            if edge.max_attempts < 1:
                raise GraphError(
                    f"graph {self.name!r}: edge {edge.name} needs "
                    "max_attempts >= 1"
                )
            seen.add(edge.key)
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Services ordered callers-first; raises :class:`GraphError`
        naming a cycle member if the graph is not a DAG."""
        indegree: Dict[str, int] = {name: 0 for name in self.services}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for edge in self.outgoing(current):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    # insertion keeps `ready` sorted: deterministic order
                    position = 0
                    while (
                        position < len(ready)
                        and ready[position] < edge.dst
                    ):
                        position += 1
                    ready.insert(position, edge.dst)
        if len(order) != len(self.services):
            stuck = sorted(set(self.services) - set(order))
            raise GraphError(
                f"graph {self.name!r} has a cycle through "
                f"{', '.join(stuck)} (service graphs must be DAGs)"
            )
        return order

    # -- queries -------------------------------------------------------------

    def edge(self, src: str, dst: str) -> EdgeSpec:
        for candidate in self.edges:
            if candidate.key == (src, dst):
                return candidate
        raise GraphError(f"graph {self.name!r}: no edge {src}->{dst}")

    def outgoing(self, service: str) -> List[EdgeSpec]:
        return [edge for edge in self.edges if edge.src == service]

    def incoming(self, service: str) -> List[EdgeSpec]:
        return [edge for edge in self.edges if edge.dst == service]

    def entry_services(self) -> List[str]:
        """Services no other service calls — where external load lands."""
        called = {edge.dst for edge in self.edges}
        return [name for name in self.services if name not in called]

    def leaf_services(self) -> List[str]:
        return [name for name in self.services if not self.outgoing(name)]

    def depth(self) -> int:
        """Longest call path, in hops."""
        depth: Dict[str, int] = {}
        for service in reversed(self.topological_order()):
            children = self.outgoing(service)
            depth[service] = (
                1 + max(depth[e.dst] for e in children) if children else 0
            )
        return max(depth.values(), default=0)

    def with_edge(self, src: str, dst: str, **overrides) -> "ServiceGraph":
        """A copy of the graph with one edge's spec fields replaced."""
        edges = [
            replace(edge, **overrides) if edge.key == (src, dst) else edge
            for edge in self.edges
        ]
        return ServiceGraph(
            name=self.name, services=dict(self.services), edges=edges
        )

    # -- semantic validation -------------------------------------------------

    def check_chains(self, program, schema=None) -> List[str]:
        """Validate every edge's attached chain against the program
        (unknown element or filter names). Returns error strings instead
        of raising so a topology report can show them all at once.
        Schema mismatches surface when the chain is compiled; name
        resolution is the mistake a topology author actually makes
        (``schema`` is accepted for call-site symmetry with the
        compile path and is unused here)."""
        known = set(program.elements) | set(program.filters)
        errors: List[str] = []
        for edge in self.edges:
            for element_name in edge.elements:
                if element_name not in known:
                    errors.append(
                        f"edge {edge.name}: unknown element "
                        f"{element_name!r}"
                    )
        return errors

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "services": [
                self.services[name].to_dict() for name in self.services
            ],
            "edges": [edge.to_dict() for edge in self.edges],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceGraph":
        if not isinstance(data, dict):
            raise GraphError("topology spec must be a JSON object")
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise GraphError("topology spec needs a string 'name'")
        services: Dict[str, ServiceSpec] = {}
        for raw in data.get("services", ()):
            if isinstance(raw, str):
                raw = {"name": raw}
            if not isinstance(raw, dict) or "name" not in raw:
                raise GraphError(
                    "each service must be a name or an object with one"
                )
            reads = raw.get("reads")
            spec = ServiceSpec(
                name=str(raw["name"]),
                replicas=int(raw.get("replicas", 1)),
                machine=raw.get("machine"),
                reads=(
                    tuple(str(f) for f in reads)
                    if reads is not None
                    else None
                ),
            )
            if spec.name in services:
                raise GraphError(f"duplicate service {spec.name!r}")
            services[spec.name] = spec
        edges: List[EdgeSpec] = []
        for raw in data.get("edges", ()):
            if not isinstance(raw, dict):
                raise GraphError("each edge must be a JSON object")
            unknown = set(raw) - {
                "src", "dst", "elements", "deadline_budget_ms",
                "max_attempts", "per_attempt_timeout_ms", "admission",
                "queue_limit", "breaker", "required", "hash_fields",
                "offload",
            }
            if unknown:
                raise GraphError(
                    f"edge {raw.get('src')}->{raw.get('dst')}: unknown "
                    f"key(s) {', '.join(sorted(map(str, unknown)))}"
                )
            if "src" not in raw or "dst" not in raw:
                raise GraphError("each edge needs 'src' and 'dst'")
            deadline = raw.get("deadline_budget_ms")
            timeout = raw.get("per_attempt_timeout_ms")
            queue_limit = raw.get("queue_limit")
            edges.append(
                EdgeSpec(
                    src=str(raw["src"]),
                    dst=str(raw["dst"]),
                    elements=tuple(raw.get("elements", ())),
                    deadline_budget_ms=(
                        float(deadline) if deadline is not None else None
                    ),
                    max_attempts=int(raw.get("max_attempts", 1)),
                    per_attempt_timeout_ms=(
                        float(timeout) if timeout is not None else None
                    ),
                    admission=bool(raw.get("admission", False)),
                    queue_limit=(
                        int(queue_limit) if queue_limit is not None else None
                    ),
                    breaker=bool(raw.get("breaker", False)),
                    required=bool(raw.get("required", True)),
                    hash_fields=tuple(
                        str(f) for f in raw.get("hash_fields", ())
                    ),
                    offload=(
                        str(raw["offload"])
                        if raw.get("offload") is not None
                        else None
                    ),
                )
            )
        return cls(name=name, services=services, edges=edges)

    @classmethod
    def from_json(cls, text: str) -> "ServiceGraph":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise GraphError(f"invalid topology JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "ServiceGraph":
        with open(path) as handle:
            return cls.from_json(handle.read())


class GraphBuilder:
    """Fluent construction of a :class:`ServiceGraph`.

    >>> graph = (GraphBuilder("bookinfo")
    ...          .service("productpage")
    ...          .service("reviews", replicas=2)
    ...          .edge("productpage", "reviews",
    ...                elements=("Logging",), deadline_budget_ms=20.0)
    ...          .build())
    """

    def __init__(self, name: str):
        self._name = name
        self._services: Dict[str, ServiceSpec] = {}
        self._edges: List[EdgeSpec] = []

    def service(
        self,
        name: str,
        replicas: int = 1,
        machine: Optional[str] = None,
        reads: Optional[Sequence[str]] = None,
    ) -> "GraphBuilder":
        if name in self._services:
            raise GraphError(f"duplicate service {name!r}")
        self._services[name] = ServiceSpec(
            name=name,
            replicas=replicas,
            machine=machine,
            reads=tuple(reads) if reads is not None else None,
        )
        return self

    def edge(
        self,
        src: str,
        dst: str,
        elements: Sequence[str] = (),
        **spec_fields,
    ) -> "GraphBuilder":
        """Add ``src -> dst``; implicitly declares unseen endpoints as
        plain single-replica services."""
        for endpoint in (src, dst):
            if endpoint not in self._services:
                self._services[endpoint] = ServiceSpec(name=endpoint)
        self._edges.append(
            EdgeSpec(src=src, dst=dst, elements=tuple(elements), **spec_fields)
        )
        return self

    def build(self) -> ServiceGraph:
        return ServiceGraph(
            name=self._name,
            services=dict(self._services),
            edges=list(self._edges),
        )
