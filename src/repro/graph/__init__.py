"""Service-graph layer (repro.graph): multi-service application graphs.

The paper's prototype (and this repo's first five PRs) runs one element
chain between one caller and one callee. Real applications — the ones
ADN's "application-defined" pitch is about — are *graphs* of services,
each RPC edge carrying its own chain. This package is that layer:

* :mod:`.model` — :class:`ServiceGraph`: services, edges, per-edge
  chains and reliability profiles; builder, JSON topology specs, DAG
  validation;
* :mod:`.placement` — assign services to machines, then run the
  existing per-chain placement solver per edge under the shared hosts;
* :mod:`.runtime` — :class:`GraphRuntime`: one ADN hop per edge,
  composed so deadline budgets and priorities propagate through
  fan-out and failures surface with their class intact;
* :mod:`.workload` — :class:`MeshWorkload`: open-loop diurnal Poisson
  arrivals, Zipf-skewed users (millions, O(1) per draw), priority mix;
* :mod:`.scenario` — bookinfo and a 12-service hotel mesh, plus
  :func:`run_graph_scenario` wiring workload + faults + overload
  control end to end.
"""

from .lint import (
    check_control_plane_single_point,
    check_deadline_propagation,
    spec_cluster_block,
)
from .model import EdgeSpec, GraphBuilder, ServiceGraph, ServiceSpec
from .placement import (
    GraphPlacement,
    MachineSpec,
    assign_service_machines,
    default_machine_pool,
    solve_graph_placement,
)
from .runtime import EdgeStats, GraphRuntime, build_graph_cluster
from .scenario import (
    MESH_SCHEMA,
    GraphScenarioResult,
    bookinfo_graph,
    hotel_mesh_graph,
    mesh_program,
    run_graph_scenario,
)
from .workload import MeshWorkload, MeshWorkloadConfig, ZipfSampler

__all__ = [
    "EdgeSpec",
    "EdgeStats",
    "GraphBuilder",
    "GraphPlacement",
    "GraphRuntime",
    "GraphScenarioResult",
    "MESH_SCHEMA",
    "MachineSpec",
    "MeshWorkload",
    "MeshWorkloadConfig",
    "ServiceGraph",
    "ServiceSpec",
    "ZipfSampler",
    "assign_service_machines",
    "bookinfo_graph",
    "build_graph_cluster",
    "check_control_plane_single_point",
    "check_deadline_propagation",
    "default_machine_pool",
    "hotel_mesh_graph",
    "mesh_program",
    "run_graph_scenario",
    "solve_graph_placement",
    "spec_cluster_block",
]
