"""Topology-level lint for :class:`~repro.graph.model.ServiceGraph`.

The DSL-side rule (``ADN405`` in :mod:`repro.lint.rules.graph`) reads
deadline custody off app chains; this module applies the same rule to a
graph spec directly, where the facts are first-class fields instead of
filter meta: an edge is deadline-*sensitive* when it retries
(``max_attempts > 1``) or runs admission control, and an edge
*establishes* a budget when ``deadline_budget_ms`` is set. Both front
ends share the actual traversal
(:func:`repro.lint.deadline.walk_deadline_custody`). Findings are
ordinary :class:`~repro.lint.diagnostics.Diagnostic` objects so the CLI
renders them exactly like file lints.

This module also owns ``ADN600``: lifting spec-loading and
chain-resolution failures (malformed JSON, dangling edges, unknown
element names) into diagnostics instead of tracebacks, so
``repro graph``/``repro check --graph`` report them with a path, code,
and element like every other finding.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from ..dsl.ast_nodes import Program
from ..dsl.schema import RpcSchema
from ..lint.deadline import CustodyEdge, walk_deadline_custody
from ..lint.diagnostics import Diagnostic, Severity
from .model import EdgeSpec, GraphError, ServiceGraph


def _sensitive(edge: EdgeSpec) -> Tuple[str, ...]:
    reasons = []
    if edge.max_attempts > 1:
        reasons.append(f"retries (max_attempts={edge.max_attempts})")
    if edge.admission:
        reasons.append("admission control")
    return tuple(reasons)


def _custody_edges(graph: ServiceGraph) -> List[CustodyEdge]:
    return [
        CustodyEdge(
            src=edge.src,
            dst=edge.dst,
            name=edge.name,
            sensitive=_sensitive(edge),
            carries_budget=edge.deadline_budget_ms is not None,
            payload=edge,
        )
        for edge in graph.edges
    ]


def check_deadline_propagation(
    graph: ServiceGraph, path: str = "<graph>"
) -> List[Diagnostic]:
    """ADN405 over a graph spec: every deadline-sensitive edge must be
    reachable under a budget — either every upstream edge into its
    source sets ``deadline_budget_ms`` (the runtime then derives the
    child budget from the parent's remainder), or, for entry edges with
    no upstream, the edge itself must set one."""
    out: List[Diagnostic] = []
    for finding in walk_deadline_custody(_custody_edges(graph)):
        edge, parent = finding.edge, finding.parent
        reasons = " and ".join(edge.sensitive)
        if parent is None:
            out.append(
                Diagnostic(
                    code="ADN405",
                    severity=Severity.WARNING,
                    message=(
                        f"entry edge {edge.name} uses {reasons} but sets "
                        "no deadline_budget_ms — nothing bounds the "
                        "work its elements act on"
                    ),
                    path=path,
                    element=edge.name,
                    fix="set deadline_budget_ms on the edge",
                )
            )
        else:
            out.append(
                Diagnostic(
                    code="ADN405",
                    severity=Severity.WARNING,
                    message=(
                        f"edge {edge.name} uses {reasons} but upstream "
                        f"edge {parent.name} propagates no deadline "
                        "budget"
                    ),
                    path=path,
                    element=edge.name,
                    fix=f"set deadline_budget_ms on {parent.name} so "
                    "the remaining budget reaches the downstream "
                    "elements",
                )
            )
    return out


def spec_cluster_block(path: str) -> Optional[dict]:
    """Return a topology spec's optional top-level ``cluster`` block.

    ``ServiceGraph.from_dict`` deliberately ignores unknown top-level
    keys, so the deployment declaration rides alongside the graph
    without touching the model. Returns ``None`` when the file is
    unreadable, not JSON, or declares no object-valued ``cluster`` —
    load failures are ADN600's to report, not this helper's."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(payload, dict):
        block = payload.get("cluster")
        if isinstance(block, dict):
            return block
    return None


def check_control_plane_single_point(
    graph: ServiceGraph,
    cluster: Optional[dict],
    program: Optional[Program] = None,
    path: str = "<graph>",
) -> List[Diagnostic]:
    """ADN407 over a graph spec: the spec declares its deployment via a
    top-level ``cluster`` block, the mesh depends on the controller
    reacting to failures — retrying edges, or (when the element program
    is at hand) checkpointed chain elements — and the block sets no
    ``standby_controller``. A spec with no ``cluster`` block takes no
    position on deployment and stays silent; the DSL-side rule (with
    ``--standby-controller``) covers that path."""
    if not isinstance(cluster, dict) or cluster.get("standby_controller"):
        return []
    checkpointed: List[str] = []
    if program is not None:
        for edge in graph.edges:
            for name in edge.elements:
                decl = program.elements.get(name)
                if (
                    decl is not None
                    and decl.meta.get("checkpoint")
                    and name not in checkpointed
                ):
                    checkpointed.append(name)
    retrying = [edge.name for edge in graph.edges if edge.retries]
    reasons = []
    if checkpointed:
        reasons.append(
            "checkpointed element(s) " + ", ".join(checkpointed)
        )
    if retrying:
        reasons.append("retrying edge(s) " + ", ".join(retrying))
    if not reasons:
        return []
    return [
        Diagnostic(
            code="ADN407",
            severity=Severity.WARNING,
            message=(
                f"graph {graph.name!r} declares a cluster with no "
                "standby controller, but its mesh depends on "
                "controller-driven recovery: " + "; ".join(reasons)
            ),
            path=path,
            element=graph.name,
            fix="set 'standby_controller: true' in the spec's cluster "
            "block and deploy the warm-standby pair "
            "(repro.control.resilience)",
        )
    ]


# -- ADN600: spec loading and resolution as diagnostics -------------------


def _spec_error(message: str, path: str, element: str = "") -> Diagnostic:
    return Diagnostic(
        code="ADN600",
        severity=Severity.ERROR,
        message=message,
        path=path,
        element=element,
        fix="fix the topology spec; see docs/graph_analysis.md for the "
        "JSON shape",
    )


def load_graph_spec(
    path: str,
) -> Tuple[Optional[ServiceGraph], List[Diagnostic]]:
    """Load a JSON topology spec, turning every failure mode — unreadable
    file, invalid JSON, structural errors like dangling edges or
    duplicate services — into ``ADN600`` diagnostics instead of raised
    exceptions. Returns ``(graph, diagnostics)``; ``graph`` is ``None``
    exactly when loading failed."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return None, [_spec_error(f"cannot read spec: {exc}", path)]
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, [
            _spec_error(f"invalid JSON: {exc}", path)
        ]
    try:
        graph = ServiceGraph.from_dict(payload)
    except (GraphError, TypeError, ValueError, KeyError) as exc:
        return None, [_spec_error(str(exc), path)]
    return graph, []


def check_chain_resolution(
    graph: ServiceGraph,
    program: Program,
    schema: RpcSchema,
    path: str = "<graph>",
) -> List[Diagnostic]:
    """ADN600 for name resolution: every element named on an edge must
    resolve in the program (element or filter). Wraps
    :meth:`ServiceGraph.check_chains` so unknown names surface as
    diagnostics carrying the offending edge."""
    out: List[Diagnostic] = []
    for edge in graph.edges:
        for name in edge.elements:
            if name in program.elements or name in program.filters:
                continue
            out.append(
                _spec_error(
                    f"edge {edge.name} names unknown element {name!r}",
                    path,
                    element=edge.name,
                )
            )
    for message in graph.check_chains(program, schema):
        if "unknown element" in message:
            continue  # already reported per-edge above, with the edge name
        out.append(_spec_error(message, path))
    return out


def check_offload_capacity(
    graph: ServiceGraph,
    program: Program,
    schema: RpcSchema,
    path: str = "<graph>",
) -> List[Diagnostic]:
    """ADN406 over a graph spec: edges that declare an offload tier get
    the same split-chain capacity walk the deploy-time solver runs, so
    a chain whose prefix cannot fit the device reports its host
    fallback while the spec is being reviewed, not at placement time.
    Shares the implementation with :func:`repro.offload.split.split_chain`
    — the diagnostics *are* the solver's."""
    from ..compiler.compiler import AdnCompiler
    from ..dsl.ast_nodes import ChainDecl
    from ..errors import AdnError
    from ..offload.split import split_chain

    out: List[Diagnostic] = []
    compiler = AdnCompiler()
    for edge in graph.edges:
        if edge.offload is None:
            continue
        try:
            chain = compiler.compile_chain(
                ChainDecl(src=edge.src, dst=edge.dst, elements=edge.elements),
                program,
                schema,
                app_name=graph.name,
            )
        except AdnError:
            continue  # resolution problems are ADN600's to report
        decision = split_chain(
            chain, schema, edge.offload, path=f"{path}:{edge.name}"
        )
        out.extend(decision.diagnostics)
    return out
