"""Topology-level lint for :class:`~repro.graph.model.ServiceGraph`.

The DSL-side rule (``ADN405`` in :mod:`repro.lint.rules.graph`) reads
deadline custody off app chains; this module applies the same rule to a
graph spec directly, where the facts are first-class fields instead of
filter meta: an edge is deadline-*sensitive* when it retries
(``max_attempts > 1``) or runs admission control, and an edge
*establishes* a budget when ``deadline_budget_ms`` is set. Findings are
ordinary :class:`~repro.lint.diagnostics.Diagnostic` objects so the CLI
renders them exactly like file lints.
"""

from __future__ import annotations

from typing import List

from ..lint.diagnostics import Diagnostic, Severity
from .model import EdgeSpec, ServiceGraph


def _sensitive(edge: EdgeSpec) -> List[str]:
    reasons = []
    if edge.max_attempts > 1:
        reasons.append(f"retries (max_attempts={edge.max_attempts})")
    if edge.admission:
        reasons.append("admission control")
    return reasons


def check_deadline_propagation(
    graph: ServiceGraph, path: str = "<graph>"
) -> List[Diagnostic]:
    """ADN405 over a graph spec: every deadline-sensitive edge must be
    reachable under a budget — either every upstream edge into its
    source sets ``deadline_budget_ms`` (the runtime then derives the
    child budget from the parent's remainder), or, for entry edges with
    no upstream, the edge itself must set one."""
    out: List[Diagnostic] = []
    for edge in graph.edges:
        reasons = _sensitive(edge)
        if not reasons:
            continue
        upstream = graph.incoming(edge.src)
        if not upstream:
            if edge.deadline_budget_ms is None:
                out.append(
                    Diagnostic(
                        code="ADN405",
                        severity=Severity.WARNING,
                        message=(
                            f"entry edge {edge.name} uses "
                            f"{' and '.join(reasons)} but sets no "
                            "deadline_budget_ms — nothing bounds the "
                            "work its elements act on"
                        ),
                        path=path,
                        element=edge.name,
                        fix="set deadline_budget_ms on the edge",
                    )
                )
            continue
        for parent in upstream:
            if parent.deadline_budget_ms is not None:
                continue
            out.append(
                Diagnostic(
                    code="ADN405",
                    severity=Severity.WARNING,
                    message=(
                        f"edge {edge.name} uses {' and '.join(reasons)} "
                        f"but upstream edge {parent.name} propagates no "
                        "deadline budget"
                    ),
                    path=path,
                    element=edge.name,
                    fix=f"set deadline_budget_ms on {parent.name} so "
                    "the remaining budget reaches the downstream "
                    "elements",
                )
            )
    return out
