# Convenience targets for the ADN reproduction.

PYTHON ?= python3

.PHONY: install test bench faults chaos-soak overload offload graph graph-check sanitize analyze examples check-all lint typecheck loc

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@# a bare `del name` of a never-reused local is dead code we have
	@# been bitten by before; keep the tree free of it
	@! grep -rn --include='*.py' -E '^\s*del [a-z_]+$$' src/ \
	    || (echo 'dead `del` statements found in src/' && exit 1)
	PYTHONPATH=src $(PYTHON) -m repro lint $(wildcard examples/*.adn) \
	    --stdlib --fail-on error

typecheck:
	@# abstract type & effect checker over every example and the stdlib,
	@# then per-pass translation validation of every example's pipelines
	for f in $(wildcard examples/*.adn); do \
	    PYTHONPATH=src $(PYTHON) -m repro check $$f --types --stdlib \
	        || exit 1; \
	done
	for f in $(wildcard examples/*.adn); do \
	    PYTHONPATH=src $(PYTHON) -m repro compile --verify $$f >/dev/null \
	        || exit 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

faults:
	@# the seeded fault soak (small trial count) plus the end-to-end
	@# crash-recovery scenario and the faults CLI demo
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_chaos.py -q -k fault_soak
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_faults.py -q -k RecoveryScenario
	PYTHONPATH=src $(PYTHON) -m repro faults --rpcs 2000

chaos-soak:
	@# control-plane resilience: the resilience unit suite, the seeded
	@# multi-fault chaos soak via the CLI (exits nonzero on any
	@# split-brain application), and the failover benchmark smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_resilience.py -q
	PYTHONPATH=src $(PYTHON) -m repro chaos --trials 4 --rpcs 600 \
	    --json chaos-soak.json
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/test_control_resilience.py -q -k smoke

overload:
	@# overload-control smoke: the unit suite, the goodput-sweep smoke
	@# benchmark (baseline collapse vs protected degradation), and the
	@# overload CLI demo
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_overload.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_overload.py -q -k smoke
	PYTHONPATH=src $(PYTHON) -m repro overload --duration 0.05

offload:
	@# NIC/switch offload smoke: the split-chain/device unit suite, the
	@# NIC-shed-vs-server-shed goodput benchmark (smoke endpoints), and
	@# the offload CLI demo
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_offload.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_offload.py -q -k smoke
	PYTHONPATH=src $(PYTHON) -m repro offload --duration 0.05

graph:
	@# service-graph layer: topology validation + lint (ADN405) over the
	@# shipped spec and both built-in graphs, the graph unit suites, and
	@# a small end-to-end mesh scenario via the CLI demo graph
	PYTHONPATH=src $(PYTHON) -m repro graph examples/bookinfo.graph.json \
	    --fail-on warning
	PYTHONPATH=src $(PYTHON) -m repro graph --demo hotel-mesh \
	    --fail-on warning --format json >/dev/null
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_graph.py \
	    tests/test_graph_runtime.py -q
	PYTHONPATH=src $(PYTHON) examples/bookinfo.py

graph-check:
	@# interprocedural analyzer (ADN600-ADN606): the shipped bookinfo
	@# spec and the hotel-mesh demo must be clean at warning level; the
	@# intentionally broken retry-storm spec must FAIL; plus the
	@# analyzer unit suite and the analyzer-overhead microbenchmark
	PYTHONPATH=src $(PYTHON) -m repro graph examples/bookinfo.graph.json \
	    --check --no-place --fail-on warning
	PYTHONPATH=src $(PYTHON) -m repro graph --demo hotel-mesh --check \
	    --no-place --fail-on warning --format json >/dev/null
	@! PYTHONPATH=src $(PYTHON) -m repro graph \
	    examples/retry_storm.graph.json --check --no-place >/dev/null \
	    || (echo 'retry_storm.graph.json should have failed --check' \
	        && exit 1)
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_graph_analysis.py -q
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/test_graph_analysis_overhead.py -q

sanitize:
	@# runtime shadow sanitizer: unit suite + chaos trials with the
	@# sanitizer attached (clean meshes must stay silent under faults;
	@# the double-charge example must trip it) + overhead bound
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_sanitizer.py -q
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/test_sanitizer_overhead.py -q

analyze: lint typecheck graph-check
	@# aggregate static-analysis gate: style lint + ADN lint, abstract
	@# typecheck + translation validation, the interprocedural graph
	@# analyzer, the effect-summary engine suite, and the negative
	@# gate — the intentionally broken double-charge spec must FAIL
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_effects.py -q
	@! PYTHONPATH=src $(PYTHON) -m repro graph \
	    examples/double_charge.graph.json --check --no-place >/dev/null \
	    || (echo 'double_charge.graph.json should have failed --check' \
	        && exit 1)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/object_store.py
	$(PYTHON) examples/autoscaling.py
	$(PYTHON) examples/offload_planner.py
	$(PYTHON) examples/resilience.py
	$(PYTHON) examples/external_ingress.py
	$(PYTHON) examples/three_tier.py

check-all: test bench examples

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
