# Convenience targets for the ADN reproduction.

PYTHON ?= python3

.PHONY: install test bench examples check-all loc

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/object_store.py
	$(PYTHON) examples/autoscaling.py
	$(PYTHON) examples/offload_planner.py
	$(PYTHON) examples/resilience.py
	$(PYTHON) examples/external_ingress.py
	$(PYTHON) examples/three_tier.py

check-all: test bench examples

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
