"""Shed-point economics — the NIC-offload experiment (ROADMAP item 5).

Drive the same protected two-service mesh at 0.5x..3x nominal capacity
twice: once with the whole ``Acl, Logging, Compression`` chain in the
backend host's engine (shed at server), once with the edge declaring
``offload="nic"`` so split-chain compilation moves the device-legal
``Acl, Logging`` prefix onto the backend's SmartNIC and admission sheds
in front of the host (shed at NIC).

Acceptance shape: at 3x offered load the NIC-shedding mesh delivers
strictly higher goodput than host-only shedding, and host CPU-seconds
per admitted RPC drop (the host stops burning engine cycles on RPCs it
then rejects). Everything is seeded — the same config reproduces the
same comparison bit for bit.
"""

import dataclasses

import pytest

from repro.offload.sweep import (
    OffloadSweepConfig,
    format_comparison,
    run_offload_comparison,
    run_offload_point,
)

from bench_harness import bench_assert, print_table

CONFIG = OffloadSweepConfig(
    multipliers=(0.5, 1.0, 2.0, 3.0), duration_s=0.2
)

#: reduced shape for ``make offload`` / ``-k smoke`` — endpoints only
SMOKE_CONFIG = dataclasses.replace(
    CONFIG, multipliers=(0.5, 3.0), duration_s=0.1
)


@pytest.fixture(scope="module")
def comparison():
    return run_offload_comparison(CONFIG)


def _by_multiplier(points):
    return {point.multiplier: point for point in points}


def test_goodput_table(comparison, benchmark):
    def report():
        def cell(row, col):
            multiplier = float(col.split("x")[0])
            return _by_multiplier(comparison[row])[multiplier].goodput_rps

        print(format_comparison(comparison))
        return print_table(
            "goodput (rps) vs offered load, by shed point",
            rows=["server", "nic"],
            columns=[f"{m}x" for m in CONFIG.multipliers],
            cell=cell,
        )

    bench_assert(benchmark, report)


def test_nic_shedding_beats_host_shedding_at_3x(comparison, benchmark):
    def check():
        server = _by_multiplier(comparison["server"])[3.0]
        nic = _by_multiplier(comparison["nic"])[3.0]
        assert nic.goodput_rps > server.goodput_rps, (
            f"NIC shed point delivered {nic.goodput_rps:.0f} rps vs "
            f"{server.goodput_rps:.0f} host-only — expected strictly "
            "higher mesh goodput"
        )
        # the mechanism: overload sheds actually moved into the network
        assert nic.sheds_at_nic > 0
        assert server.sheds_at_nic == 0
        return nic.goodput_rps / max(server.goodput_rps, 1.0)

    bench_assert(benchmark, check)


def test_host_cpu_per_admitted_rpc_drops(comparison, benchmark):
    def check():
        server = _by_multiplier(comparison["server"])[3.0]
        nic = _by_multiplier(comparison["nic"])[3.0]
        assert nic.host_cpu_ms_per_ok < server.host_cpu_ms_per_ok, (
            f"host CPU per admitted RPC was {nic.host_cpu_ms_per_ok:.4f}"
            f" ms with NIC shedding vs {server.host_cpu_ms_per_ok:.4f}"
            " host-only"
        )
        # and the NIC is genuinely doing the refused work instead
        assert nic.nic_cpu_s > 0.0
        return server.host_cpu_ms_per_ok / nic.host_cpu_ms_per_ok

    bench_assert(benchmark, check)


def test_low_load_parity(comparison, benchmark):
    """Below saturation the two variants admit the same traffic — the
    offload changes where work runs, not what the mesh answers."""

    def check():
        server = _by_multiplier(comparison["server"])[0.5]
        nic = _by_multiplier(comparison["nic"])[0.5]
        assert server.issued == nic.issued  # same seeded arrivals
        assert server.ok == server.issued
        assert nic.ok == nic.issued
        return nic.ok

    bench_assert(benchmark, check)


def test_comparison_is_deterministic(comparison, benchmark):
    """Bit-identical under a fixed seed: re-running a point reproduces
    every counter and latency digit."""

    def check():
        again = run_offload_point(3.0, "nic", config=CONFIG)
        assert again.to_dict() == (
            _by_multiplier(comparison["nic"])[3.0].to_dict()
        )
        return again.goodput_rps

    bench_assert(benchmark, check)


def test_offload_smoke(benchmark):
    """Endpoints-only variant for ``make offload`` (select with
    ``-k smoke``): at 3x the NIC shed point wins on both goodput and
    host CPU per admitted RPC."""

    def check():
        comparison = run_offload_comparison(SMOKE_CONFIG)
        print(format_comparison(comparison))
        server = comparison["server"][-1]
        nic = comparison["nic"][-1]
        assert nic.offloaded_prefix == ["Acl", "Logging"]
        assert nic.goodput_rps > server.goodput_rps
        assert nic.host_cpu_ms_per_ok < server.host_cpu_ms_per_ok
        assert nic.sheds_at_nic > 0
        return nic.goodput_rps

    bench_assert(benchmark, check)
