"""Service-mesh overhead (§1/§2): "it can increase message processing
latency by up to 2.7–7.1x and CPU usage by up to 1.6–7x" — measured as
gRPC+Envoy sidecars versus plain gRPC with no mesh.

Also records ADN against both, quantifying how much of the mesh tax the
application-defined network removes.
"""

import pytest

from bench_harness import (
    bench_assert,
    print_table,
    run_adn,
    run_envoy,
    run_plain_grpc,
)

CHAIN = ("Logging", "Acl", "Fault")


@pytest.fixture(scope="module")
def overhead_results():
    return {
        "plain gRPC": {
            "latency": run_plain_grpc("latency"),
            "throughput": run_plain_grpc("throughput"),
        },
        "gRPC+Envoy": {
            "latency": run_envoy(CHAIN, "latency"),
            "throughput": run_envoy(CHAIN, "throughput"),
        },
        "ADN+mRPC": {
            "latency": run_adn(CHAIN, "latency"),
            "throughput": run_adn(CHAIN, "throughput"),
        },
    }


def test_mesh_overhead_table(overhead_results, benchmark):
    def report():
        return print_table(
            "Mesh overhead vs plain gRPC",
            rows=list(overhead_results),
            columns=["median_us", "rate_krps", "cpu_us_per_rpc"],
            cell=lambda row, col: {
                "median_us": overhead_results[row][
                    "latency"
                ].latency.median_us(),
                "rate_krps": overhead_results[row][
                    "throughput"
                ].throughput_krps,
                "cpu_us_per_rpc": overhead_results[row][
                    "throughput"
                ].cpu_us_per_rpc(),
            }[col],
        )

    bench_assert(benchmark, report)


def test_mesh_latency_tax_in_paper_band(overhead_results, benchmark):
    def check():
        plain = overhead_results["plain gRPC"]["latency"].latency.median_us()
        mesh = overhead_results["gRPC+Envoy"]["latency"].latency.median_us()
        ratio = mesh / plain
        assert 2.7 <= ratio <= 8.0, f"mesh latency tax {ratio:.1f}x"
        return ratio

    bench_assert(benchmark, check)


def test_mesh_cpu_tax_in_paper_band(overhead_results, benchmark):
    def check():
        plain = overhead_results["plain gRPC"]["throughput"].cpu_us_per_rpc()
        mesh = overhead_results["gRPC+Envoy"]["throughput"].cpu_us_per_rpc()
        ratio = mesh / plain
        assert 1.6 <= ratio <= 7.0, f"mesh CPU tax {ratio:.1f}x"
        return ratio

    bench_assert(benchmark, check)


def test_adn_beats_even_plain_grpc(overhead_results, benchmark):
    def check():
        """ADN removes not just the sidecars but the whole wrapped
        stack, so it undercuts even meshless gRPC (consistent with
        mRPC's result against gRPC)."""
        plain = overhead_results["plain gRPC"]["latency"].latency.median_us()
        adn = overhead_results["ADN+mRPC"]["latency"].latency.median_us()
        assert adn < plain
        return plain / adn

    bench_assert(benchmark, check)


def test_wire_bytes_overhead(overhead_results, benchmark):
    def check():
        """The wrapped stack sends several times more bytes for the same
        application payloads."""
        plain = overhead_results["plain gRPC"]["throughput"].notes[
            "wire_bytes"
        ]
        adn = overhead_results["ADN+mRPC"]["throughput"].notes["wire_bytes"]
        assert plain > 1.5 * adn
        return plain / adn

    bench_assert(benchmark, check)
