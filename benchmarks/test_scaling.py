"""Disruption-free scale-out (§4 Q3 / §5.2): the controller scales RPC
processing out under a workload step, migrating keyed element state with
only a sub-millisecond pause — requests are delayed during the flip,
never dropped.

This is Figure 2 configuration 4 made dynamic: capacity follows load.
"""

import pytest

from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.runtime.message import RpcOutcome
from repro.sim import Resource, Simulator, SteppedLoadClient
from repro.state.table import StateTable

from bench_harness import bench_assert, print_table

SERVICE_US = 100.0  # per-RPC engine work
PHASES = [(3_000, 0.4), (18_000, 1.2), (3_000, 0.4)]  # rps, seconds


def lb_state_table(rows=2000):
    decl = StateDecl(
        name="endpoints_cache",
        columns=(
            ColumnDef("k", FieldType.INT, is_key=True),
            ColumnDef("v", FieldType.STR),
        ),
    )
    table = StateTable(decl)
    for i in range(rows):
        table.insert({"k": i, "v": f"session-{i}"})
    return table


def run_scaling(autoscale: bool):
    sim = Simulator()
    engine = Resource(sim, capacity=1, name="engine")
    table = lb_state_table()
    paused = {"until": 0.0}

    def call(**fields):
        issued = sim.now
        if sim.now < paused["until"]:
            # the data plane buffers during a migration flip
            yield sim.timeout(paused["until"] - sim.now)
        yield from engine.use(SERVICE_US * 1e-6)
        return RpcOutcome(
            request={}, response={}, issued_at=issued, completed_at=sim.now
        )

    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            sim,
            engine,
            AutoscalerConfig(
                sample_interval_s=0.05,
                cooldown_s=0.1,
                high_watermark=0.8,
                low_watermark=0.2,
                max_capacity=4,
            ),
            stateful_tables=[table],
        )
        total = sum(duration for _rate, duration in PHASES)
        sim.process(autoscaler.run(total))
    client = SteppedLoadClient(sim, call, phases=PHASES)
    metrics = client.run()
    return metrics, client, autoscaler, engine


@pytest.fixture(scope="module")
def scaling_runs():
    static_metrics, static_client, _none, _e1 = run_scaling(autoscale=False)
    auto_metrics, auto_client, autoscaler, engine = run_scaling(autoscale=True)
    return {
        "static": (static_metrics, static_client),
        "autoscaled": (auto_metrics, auto_client),
        "autoscaler": autoscaler,
        "engine": engine,
    }


def test_scaling_table(scaling_runs, benchmark):
    def report():
        rows = ["static capacity=1", "autoscaled"]
        runs = {
            "static capacity=1": scaling_runs["static"],
            "autoscaled": scaling_runs["autoscaled"],
        }

        def cell(row, col):
            metrics, client = runs[row]
            if col == "spike p99 (ms)":
                return client.per_phase[1].latency.percentile(99) * 1e3
            if col == "spike median (ms)":
                return client.per_phase[1].latency.median * 1e3
            return metrics.completed / 1000

        return print_table(
            "Scale-out under a 6x load spike",
            rows=rows,
            columns=["completed (k)", "spike median (ms)", "spike p99 (ms)"],
            cell=cell,
        )

    bench_assert(benchmark, report)


def test_autoscaler_scaled_out_during_spike(scaling_runs, benchmark):
    def check():
        autoscaler = scaling_runs["autoscaler"]
        assert autoscaler.scale_out_count >= 1
        # and scaled back in when the spike ended
        assert scaling_runs["engine"].capacity <= 4
        return autoscaler.scale_out_count

    bench_assert(benchmark, check)


def test_spike_latency_improves_with_scaling(scaling_runs, benchmark):
    def check():
        _static_m, static_client = scaling_runs["static"]
        _auto_m, auto_client = scaling_runs["autoscaled"]
        static_spike = static_client.per_phase[1].latency.percentile(99)
        auto_spike = auto_client.per_phase[1].latency.percentile(99)
        assert auto_spike < static_spike / 2
        return static_spike / auto_spike

    bench_assert(benchmark, check)


def test_no_rpcs_dropped(scaling_runs, benchmark):
    def check():
        for label in ("static", "autoscaled"):
            metrics, _client = scaling_runs[label]
            assert metrics.aborted == 0, label

    bench_assert(benchmark, check)


def test_migration_pause_sub_millisecond(scaling_runs, benchmark):
    def check():
        autoscaler = scaling_runs["autoscaler"]
        pauses = [
            event.migration.pause_s
            for event in autoscaler.events
            if event.migration is not None
        ]
        assert pauses
        for pause in pauses:
            assert pause < 1e-3, f"flip pause {pause * 1e6:.0f} us"
        return max(pauses)

    bench_assert(benchmark, check)


def test_state_intact_after_scaling(scaling_runs, benchmark):
    def check():
        autoscaler = scaling_runs["autoscaler"]
        for table in autoscaler.stateful_tables:
            assert len(table) == 2000

    bench_assert(benchmark, check)
