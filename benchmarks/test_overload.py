"""Goodput under overload — the graceful-degradation experiment.

Drive the ADN+mRPC path at 0.5x..3x nominal capacity, twice:

* **baseline** — unbounded queue, unbudgeted retries, no deadlines.
  Past saturation the retry storm takes over (every attempt times out,
  each logical call re-offers its work ~4x) and goodput collapses;
* **protected** — bounded queue, CoDel+utilization admission control,
  token-bucket retry budget, circuit breaker, deadline propagation.
  Goodput flattens at capacity and admitted RPCs keep bounded latency.

Acceptance shape: at 3x offered load the protected stack keeps >=70% of
its own peak goodput while the baseline keeps <30% of its peak; p50 of
*admitted* RPCs stays bounded. Everything is seeded — the same config
reproduces the same curve, point for point.
"""

import dataclasses

import pytest

from repro.overload import CIRCUIT_OPEN, QUEUE_FULL, SHED
from repro.overload.sweep import (
    SweepConfig,
    format_sweep,
    run_overload_point,
    run_overload_sweep,
)

from bench_harness import bench_assert, print_table

CONFIG = SweepConfig(multipliers=(0.5, 1.0, 1.5, 2.0, 3.0), duration_s=0.2)

#: reduced shape for ``make overload`` / ``-k smoke`` — endpoints only
SMOKE_CONFIG = dataclasses.replace(
    CONFIG, multipliers=(0.5, 3.0), duration_s=0.1
)


@pytest.fixture(scope="module")
def sweep():
    return {
        "baseline": run_overload_sweep(protected=False, config=CONFIG),
        "protected": run_overload_sweep(protected=True, config=CONFIG),
    }


def _by_multiplier(points):
    return {point.multiplier: point for point in points}


def test_goodput_table(sweep, benchmark):
    def report():
        def cell(row, col):
            multiplier = float(col.split("x")[0])
            return _by_multiplier(sweep[row])[multiplier].goodput_rps

        print(format_sweep(sweep["baseline"]))
        print(format_sweep(sweep["protected"]))
        return print_table(
            "goodput (rps) vs offered load",
            rows=["baseline", "protected"],
            columns=[f"{m}x" for m in CONFIG.multipliers],
            cell=cell,
        )

    bench_assert(benchmark, report)


def test_baseline_collapses_past_saturation(sweep, benchmark):
    def check():
        points = sweep["baseline"]
        peak = max(p.goodput_rps for p in points)
        at_3x = _by_multiplier(points)[3.0]
        ratio = at_3x.goodput_rps / peak
        assert ratio < 0.30, (
            f"baseline kept {ratio:.1%} of its {peak:.0f} rps peak at 3x "
            "— expected metastable collapse"
        )
        # the collapse mechanism is the retry storm: every abort is a
        # timeout and each logical call burned ~max_attempts attempts
        assert at_3x.aborted_by.get("Timeout", 0) == at_3x.aborted
        assert at_3x.amplification > 0.8 * CONFIG.max_attempts
        return ratio

    bench_assert(benchmark, check)


def test_protected_goodput_holds_at_3x(sweep, benchmark):
    def check():
        points = sweep["protected"]
        peak = max(p.goodput_rps for p in points)
        at_3x = _by_multiplier(points)[3.0]
        ratio = at_3x.goodput_rps / peak
        assert ratio >= 0.70, (
            f"protected stack kept only {ratio:.1%} of its "
            f"{peak:.0f} rps peak at 3x"
        )
        return ratio

    bench_assert(benchmark, check)


def test_admitted_latency_stays_bounded(sweep, benchmark):
    def check():
        worst = max(p.p50_ok_ms for p in sweep["protected"])
        # admitted RPCs never see more than a few target-delays of queue
        assert worst < 5 * CONFIG.target_delay_ms, (
            f"protected p50 of admitted RPCs reached {worst:.2f} ms"
        )
        return worst

    bench_assert(benchmark, check)


def test_protection_suppresses_amplification(sweep, benchmark):
    def check():
        base = _by_multiplier(sweep["baseline"])[3.0].amplification
        prot = _by_multiplier(sweep["protected"])[3.0].amplification
        # budget + fast rejects: barely any retries spent under overload
        assert prot < 1.5, f"protected amplification {prot:.2f}x"
        assert base > 2 * prot
        return base / prot

    bench_assert(benchmark, check)


def test_protected_aborts_are_explicit(sweep, benchmark):
    def check():
        at_3x = _by_multiplier(sweep["protected"])[3.0]
        explicit = sum(
            at_3x.aborted_by.get(reason, 0)
            for reason in (SHED, QUEUE_FULL, CIRCUIT_OPEN)
        )
        # overload surfaces as cheap, named rejects — not timeouts
        assert explicit >= 0.9 * at_3x.aborted, at_3x.aborted_by
        assert at_3x.sheds + at_3x.queue_rejects > 0
        return explicit

    bench_assert(benchmark, check)


def test_sweep_is_deterministic(sweep, benchmark):
    def check():
        again = run_overload_point(3.0, protected=True, config=CONFIG)
        assert again == _by_multiplier(sweep["protected"])[3.0]
        return again.goodput_rps

    bench_assert(benchmark, check)


def test_overload_smoke(benchmark):
    """Endpoints-only variant for ``make overload`` (select with
    ``-k smoke``): protection keeps goodput up at 3x, baseline doesn't."""

    def check():
        baseline = run_overload_sweep(protected=False, config=SMOKE_CONFIG)
        protected = run_overload_sweep(protected=True, config=SMOKE_CONFIG)
        print(format_sweep(baseline))
        print(format_sweep(protected))
        base_peak = max(p.goodput_rps for p in baseline)
        prot_peak = max(p.goodput_rps for p in protected)
        assert baseline[-1].goodput_rps < 0.30 * base_peak
        assert protected[-1].goodput_rps >= 0.70 * prot_peak
        return protected[-1].goodput_rps

    bench_assert(benchmark, check)
