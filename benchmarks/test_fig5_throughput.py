"""Figure 5 (left panel): RPC rate (krps) for Logging / ACL / Fault
under gRPC+Envoy vs ADN+mRPC vs hand-coded mRPC.

Paper numbers: ADN gives a **5–6x higher RPC rate** than Envoy, and is
within **3–12%** of hand-coded mRPC. Workload: one client thread, 128
concurrent RPCs, short byte-string request/response (§6).
"""

import pytest

from bench_harness import PAPER_ELEMENTS, bench_assert, print_table

SYSTEMS = ["gRPC+Envoy", "ADN+mRPC", "Hand-coded mRPC"]


def test_fig5_rpc_rate_table(fig5_throughput, benchmark):
    matrix = fig5_throughput

    def report():
        return print_table(
            "Figure 5 (left): RPC rate",
            rows=SYSTEMS,
            columns=list(PAPER_ELEMENTS),
            cell=lambda system, element: matrix[element][
                system
            ].throughput_krps,
            unit="krps",
        )

    bench_assert(benchmark, report)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_adn_rate_5_to_6x_envoy(fig5_throughput, element, benchmark):
    def check():
        envoy = fig5_throughput[element]["gRPC+Envoy"].throughput_krps
        adn = fig5_throughput[element]["ADN+mRPC"].throughput_krps
        ratio = adn / envoy
        assert 4.5 <= ratio <= 7.0, f"{element}: ADN/Envoy rate {ratio:.2f}"
        return ratio

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_envoy_rate_order_of_magnitude(fig5_throughput, element, benchmark):
    def check():
        # the paper's Envoy bars sit around 15-20 krps
        envoy = fig5_throughput[element]["gRPC+Envoy"].throughput_krps
        assert 10 <= envoy <= 30, f"{element}: Envoy at {envoy:.1f} krps"
        return envoy

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_adn_close_to_handcoded(fig5_throughput, element, benchmark):
    def check():
        # per-element configs show a small gap; the full-chain headline
        # (3-12%) is asserted in test_headline_claims.py
        adn = fig5_throughput[element]["ADN+mRPC"].throughput_krps
        hand = fig5_throughput[element]["Hand-coded mRPC"].throughput_krps
        gap = (hand - adn) / hand * 100
        assert 0.5 <= gap <= 15.0, f"{element}: generated-code gap {gap:.1f}%"
        return gap

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_all_rpcs_complete(fig5_throughput, element, benchmark):
    def check():
        for system in SYSTEMS:
            metrics = fig5_throughput[element][system]
            assert metrics.completed == 4000, (element, system)

    bench_assert(benchmark, check)


def test_fault_injection_really_drops(fig5_throughput, benchmark):
    def check():
        # ~2% of requests abort under fault injection, in every system
        for system in SYSTEMS:
            metrics = fig5_throughput["Fault"][system]
            rate = metrics.aborted / metrics.completed
            assert 0.008 <= rate <= 0.05, (system, rate)

    bench_assert(benchmark, check)


def test_acl_really_denies(fig5_throughput, benchmark):
    def check():
        # ~10% of the workload uses the read-only user and is denied
        for system in SYSTEMS:
            metrics = fig5_throughput["Acl"][system]
            rate = metrics.aborted / metrics.completed
            assert 0.05 <= rate <= 0.2, (system, rate)

    bench_assert(benchmark, check)
