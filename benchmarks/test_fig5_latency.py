"""Figure 5 (right panel): end-to-end RPC latency (µs) for Logging /
ACL / Fault under gRPC+Envoy vs ADN+mRPC vs hand-coded mRPC.

Paper numbers: ADN gives **17–20x lower RPC latency** than using Envoy
for the same functionality; the Envoy bars sit around 1.1–1.25 ms.
"""

import pytest

from bench_harness import PAPER_ELEMENTS, bench_assert, print_table

SYSTEMS = ["gRPC+Envoy", "ADN+mRPC", "Hand-coded mRPC"]


def test_fig5_latency_table(fig5_latency, benchmark):
    matrix = fig5_latency

    def report():
        return print_table(
            "Figure 5 (right): median RPC latency",
            rows=SYSTEMS,
            columns=list(PAPER_ELEMENTS),
            cell=lambda system, element: matrix[element][
                system
            ].latency.median_us(),
            unit="us",
        )

    bench_assert(benchmark, report)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_adn_latency_17_to_20x_lower(fig5_latency, element, benchmark):
    def check():
        envoy = fig5_latency[element]["gRPC+Envoy"].latency.median_us()
        adn = fig5_latency[element]["ADN+mRPC"].latency.median_us()
        ratio = envoy / adn
        assert 14.0 <= ratio <= 23.0, f"{element}: Envoy/ADN {ratio:.1f}x"
        return ratio

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_envoy_latency_near_paper_band(fig5_latency, element, benchmark):
    def check():
        envoy = fig5_latency[element]["gRPC+Envoy"].latency.median_us()
        assert 800 <= envoy <= 1400, f"{element}: Envoy at {envoy:.0f} us"
        return envoy

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_adn_latency_tens_of_us(fig5_latency, element, benchmark):
    def check():
        adn = fig5_latency[element]["ADN+mRPC"].latency.median_us()
        assert 30 <= adn <= 90, f"{element}: ADN at {adn:.0f} us"
        return adn

    bench_assert(benchmark, check)


@pytest.mark.parametrize("element", PAPER_ELEMENTS)
def test_handcoded_no_slower_than_generated(fig5_latency, element, benchmark):
    def check():
        adn = fig5_latency[element]["ADN+mRPC"].latency.median_us()
        hand = fig5_latency[element]["Hand-coded mRPC"].latency.median_us()
        assert hand <= adn

    bench_assert(benchmark, check)


def test_latency_ratio_consistent_across_elements(fig5_latency, benchmark):
    def check():
        """The ratio is stable across the three elements (the stack
        dominates, not the element)."""
        ratios = []
        for element in PAPER_ELEMENTS:
            envoy = fig5_latency[element]["gRPC+Envoy"].latency.median_us()
            adn = fig5_latency[element]["ADN+mRPC"].latency.median_us()
            ratios.append(envoy / adn)
        assert max(ratios) - min(ratios) < 6.0
        return ratios

    bench_assert(benchmark, check)
