"""Mesh extensibility tax (§2): "the isolation mechanisms for safely
running these plugins (e.g., Web Assembly) further drive up the
overhead."

Custom network functions in today's meshes run as WASM plugins inside
the sidecar; this bench compares Envoy with built-in filters, Envoy with
the same filters as WASM plugins, and ADN — where custom elements are
compiled to native engine modules and pay no sandbox tax at all.
"""

import pytest

from repro.baselines import EnvoyMeshStack
from repro.dsl import FunctionRegistry, load_stdlib
from repro.ir import analyze_element, build_element_ir
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

from bench_harness import (
    SCHEMA,
    THROUGHPUT_CONCURRENCY,
    bench_assert,
    print_table,
    run_adn,
)

CHAIN = ("Logging", "Acl", "Fault")


def run_envoy_variant(wasm: bool, mode: str):
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    irs = {}
    for name in CHAIN:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        irs[name] = ir
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = EnvoyMeshStack(
        sim,
        cluster,
        SCHEMA,
        client_filters=[irs["Logging"], irs["Fault"]],
        server_filters=[irs["Acl"]],
        registry=registry,
        wasm_filters=2 if wasm else 0,  # the client-side pair as plugins
    )
    if mode == "throughput":
        client = ClosedLoopClient(
            sim,
            stack.call,
            concurrency=THROUGHPUT_CONCURRENCY,
            total_rpcs=3000,
            warmup_rpcs=300,
        )
    else:
        client = ClosedLoopClient(sim, stack.call, concurrency=1, total_rpcs=300)
    metrics = client.run()
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    return metrics


@pytest.fixture(scope="module")
def plugin_results():
    return {
        "Envoy built-in": {
            "throughput": run_envoy_variant(False, "throughput"),
            "latency": run_envoy_variant(False, "latency"),
        },
        "Envoy WASM plugins": {
            "throughput": run_envoy_variant(True, "throughput"),
            "latency": run_envoy_variant(True, "latency"),
        },
        "ADN native modules": {
            "throughput": run_adn(CHAIN, "throughput"),
            "latency": run_adn(CHAIN, "latency"),
        },
    }


def test_wasm_plugin_table(plugin_results, benchmark):
    def report():
        return print_table(
            "Custom network functions: plugin sandbox tax",
            rows=list(plugin_results),
            columns=["rate_krps", "median_us"],
            cell=lambda row, col: {
                "rate_krps": plugin_results[row][
                    "throughput"
                ].throughput_krps,
                "median_us": plugin_results[row][
                    "latency"
                ].latency.median_us(),
            }[col],
        )

    bench_assert(benchmark, report)


def test_wasm_costs_more_than_builtin(plugin_results, benchmark):
    def check():
        builtin = plugin_results["Envoy built-in"]["throughput"]
        wasm = plugin_results["Envoy WASM plugins"]["throughput"]
        assert wasm.throughput_krps < builtin.throughput_krps
        return builtin.throughput_krps / wasm.throughput_krps

    bench_assert(benchmark, check)


def test_adn_pays_no_sandbox_tax(plugin_results, benchmark):
    def check():
        """ADN's custom elements compile to native modules: the gap to
        the WASM variant exceeds the gap to built-in filters."""
        adn = plugin_results["ADN native modules"]["latency"].latency.median_us()
        builtin = plugin_results["Envoy built-in"][
            "latency"
        ].latency.median_us()
        wasm = plugin_results["Envoy WASM plugins"][
            "latency"
        ].latency.median_us()
        assert wasm > builtin
        assert wasm / adn > builtin / adn
        return wasm / adn

    bench_assert(benchmark, check)
