"""Benchmark configuration: make the harness importable and register
the shared fig5 fixture so both panels reuse one set of simulation runs."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def fig5_throughput():
    from bench_harness import fig5_matrix

    return fig5_matrix("throughput")


@pytest.fixture(scope="session")
def fig5_latency():
    from bench_harness import fig5_matrix

    return fig5_matrix("latency")
