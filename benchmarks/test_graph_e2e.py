"""End-to-end mesh benchmark: a 12-service graph under 3x overload with
a concurrent mid-graph crash.

The single-hop overload benchmark (test_overload.py) shows the
protected stack degrading gracefully on one edge; this one puts the
same machinery (admission control, deadline propagation, retry budgets,
circuit breakers — PR 5) plus fault injection/recovery (PR 4) on the
hotel-reservation mesh: 12 services, 12 edges, fan-out at the gateway,
three hops deep. The workload is open-loop diurnal Poisson over a
million Zipf-skewed users, so load keeps arriving while the mesh
degrades.

Acceptance shape (ISSUE 6): with offered load at 3x the peak operating
point AND a machine crash taking out three mid-graph services for a
quarter of the run, mesh-wide goodput stays >= 70% of the unstressed
peak. Sheds are fate-coherent (hash-keyed admission), so one request's
parallel sub-RPCs live or die together instead of compounding
independent shed draws across the gateway's fan-out.
"""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan, MACHINE_CRASH
from repro.graph import hotel_mesh_graph, run_graph_scenario

from bench_harness import bench_assert, print_table

SEED = 1
#: the peak operating point: ~91-93% of offered load answered ok
PEAK_RPS = 800.0
#: 3x the peak operating point
STRESS_RPS = 2400.0
DURATION_S = 0.3
#: mid-run machine crash: out for ~13% of the run, restart covered
CRASH_AT_S = 0.1
CRASH_FOR_S = 0.04


def _crash_plan(placement) -> FaultPlan:
    """Crash the machine hosting ``rate`` — a mid-graph service two
    hops below the gateway (gateway -> search -> rate)."""
    return FaultPlan(events=[
        FaultEvent(
            at_s=CRASH_AT_S,
            kind=MACHINE_CRASH,
            target=placement.machine_of("rate"),
            duration_s=CRASH_FOR_S,
        )
    ])


@pytest.fixture(scope="module")
def mesh():
    peak = run_graph_scenario(
        base_rps=PEAK_RPS, duration_s=DURATION_S, seed=SEED
    )
    overload = run_graph_scenario(
        base_rps=STRESS_RPS, duration_s=DURATION_S, seed=SEED
    )
    stressed = run_graph_scenario(
        base_rps=STRESS_RPS,
        duration_s=DURATION_S,
        fault_plan=_crash_plan(peak.placement),
        seed=SEED,
    )
    return {"peak": peak, "3x": overload, "3x+crash": stressed}


def test_graph_shape_is_mesh_scale(mesh):
    graph = mesh["peak"].graph
    assert len(graph.services) >= 10
    assert len(graph.edges) >= 10
    assert graph.depth() >= 3  # the crash is genuinely mid-graph


def test_goodput_table(mesh, benchmark):
    def report():
        return print_table(
            "hotel mesh: goodput (rps) and ok-ratio by condition",
            rows=["goodput_rps", "ok_ratio_pct"],
            columns=list(mesh),
            cell=lambda row, col: (
                mesh[col].goodput_rps
                if row == "goodput_rps"
                else mesh[col].goodput_ratio * 100.0
            ),
        )

    bench_assert(benchmark, report)


def test_mesh_goodput_holds_at_3x_with_midgraph_crash(mesh, benchmark):
    def check():
        peak = mesh["peak"].goodput_rps
        stressed = mesh["3x+crash"].goodput_rps
        ratio = stressed / peak
        assert ratio >= 0.70, (
            f"mesh kept {ratio:.1%} of its {peak:.0f} rps peak under 3x "
            "load + mid-graph crash — protection did not hold"
        )
        # overload alone (no crash) must hold too
        assert mesh["3x"].goodput_rps / peak >= 0.70
        return ratio

    bench_assert(benchmark, check)


def test_crash_was_injected_and_reverted(mesh):
    timeline = mesh["3x+crash"].fault_timeline
    actions = {(entry.action, entry.kind) for entry in timeline}
    assert ("inject", MACHINE_CRASH) in actions
    assert ("revert", MACHINE_CRASH) in actions


def test_breakers_open_upstream_of_the_crash(mesh):
    """The crashed machine hosts rate/profile/notify — services two
    hops below the gateway. The failure class propagates upstream
    (timeouts cross the service boundary under their own token), so
    breakers open on gateway-sourced edges, not just adjacent ones."""
    opens = mesh["3x+crash"].breaker_opens()
    assert opens, "no breaker opened anywhere despite a machine crash"
    assert any(edge.startswith("gateway->") for edge in opens), (
        f"breakers opened only at {sorted(opens)} — expected the crash "
        "to propagate to the gateway's edges"
    )
    # the unstressed peak never trips a breaker
    assert mesh["peak"].breaker_opens() == {}


def test_overload_is_answered_by_shedding_not_collapse(mesh):
    """Under 3x load the mesh sheds a meaningful fraction of traffic at
    admission (cheap, before service time) — that is *why* goodput
    holds — and high-priority traffic is shed last."""
    stressed = mesh["3x+crash"]
    assert stressed.sheds() > 100
    high = stressed.workload.goodput_ratio(priority=1)
    low = stressed.workload.goodput_ratio(priority=0)
    assert high > low + 0.15, (
        f"high-priority ok-ratio {high:.1%} vs low {low:.1%} — admission "
        "is not prioritizing"
    )


def test_admitted_latency_stays_bounded(mesh):
    """Goodput held by shedding is only graceful if what *is* admitted
    finishes fast: median end-to-end latency under stress stays inside
    the 60 ms end-to-end deadline budget."""
    for name in ("peak", "3x", "3x+crash"):
        median_ms = mesh[name].workload.metrics.latency.median_us() / 1e3
        assert median_ms < 60.0, f"{name}: median {median_ms:.1f} ms"


def test_rejection_happens_before_service_time(mesh):
    """Graceful degradation means refusing work *early*: under stress
    the dominant failure classes are admission sheds and bounded-queue
    rejections (a fixed, tiny cost each), not in-service timeouts.
    (In-flight deadline expiry at downstream boundaries is exercised
    directly in tests/test_graph_runtime.py — here admission rejects
    doomed work even earlier.)"""
    stressed = mesh["3x+crash"]
    early, late = 0, 0
    for stats in stressed.runtime.edge_stats.values():
        for token, count in stats.aborted_by.items():
            if token in {"Shed", "QueueFull", "CircuitOpen"}:
                early += count
            elif token == "Timeout":
                late += count
    assert early > late * 2, (
        f"{early} early rejections vs {late} timeouts — overload is "
        "being paid for in service time, not shed at the door"
    )


def test_runs_are_reproducible():
    """Same seed, same graph, same curve — the whole mesh simulation is
    deterministic."""
    a = run_graph_scenario(
        graph=hotel_mesh_graph(), base_rps=600.0, duration_s=0.1, seed=9
    )
    b = run_graph_scenario(
        graph=hotel_mesh_graph(), base_rps=600.0, duration_s=0.1, seed=9
    )
    assert a.workload.metrics.issued == b.workload.metrics.issued
    assert a.goodput_rps == b.goodput_rps
    assert a.runtime.mesh_stats() == b.runtime.mesh_stats()


# -- static analysis vs measured runtime (ISSUE 7) --------------------------


def test_static_amplification_bound_holds_at_runtime(mesh, benchmark):
    """ADN601's static bound (product of max_attempts along the worst
    root path) must upper-bound the *measured* attempts-per-logical-call
    on every edge, in every condition — including the crash run where
    retries actually fire. The static analysis is sound or it is
    useless."""
    from repro.analysis.graph import analyze_graph
    from repro.graph import MESH_SCHEMA, mesh_program

    analysis = analyze_graph(hotel_mesh_graph(), mesh_program(), MESH_SCHEMA)
    assert analysis.worst_amplification == 4.0
    assert analysis.worst_path == ("gateway", "search", "geo")

    def check():
        worst_measured = 0.0
        for name, result in mesh.items():
            for (src, dst), stack in result.runtime.stacks.items():
                stats = stack.retry_stats
                if stats is None or stats.logical_calls == 0:
                    continue
                measured = stats.amplification()
                bound = analysis.amplification_bound(src, dst)
                assert measured <= bound + 1e-9, (
                    f"{name}: edge {src}->{dst} measured {measured:.3f}x "
                    f"attempts but the static bound is {bound:g}x"
                )
                worst_measured = max(worst_measured, measured)
        assert worst_measured <= analysis.worst_amplification
        print(
            f"worst measured amplification {worst_measured:.3f}x "
            f"<= static bound {analysis.worst_amplification:g}x"
        )

    bench_assert(benchmark, check)


def _replay_bookinfo(edge_app_reads=None, calls=16):
    """Drive a deterministic request sequence through bookinfo and
    return (runtime, outcomes)."""
    from repro.graph import MESH_SCHEMA, bookinfo_graph, mesh_program
    from repro.graph.placement import solve_graph_placement
    from repro.graph.runtime import GraphRuntime, build_graph_cluster
    from repro.runtime.message import reset_rpc_ids
    from repro.sim.costmodel import CostModel
    from repro.sim.engine import Simulator

    reset_rpc_ids()
    sim = Simulator()
    graph = bookinfo_graph()
    placement = solve_graph_placement(graph, mesh_program(), MESH_SCHEMA)
    cluster = build_graph_cluster(
        sim, placement, costs=CostModel(element_dispatch_us=2.0)
    )
    runtime = GraphRuntime(
        sim, cluster, placement, MESH_SCHEMA,
        edge_app_reads=edge_app_reads,
    )
    outcomes = []

    def one(i):
        outcome = yield sim.process(runtime.entry_call(
            payload=b"x" * 16, username=f"u{i}", obj_id=i, priority=i % 2,
        ))
        outcomes.append(outcome)

    for i in range(calls):
        sim.process(one(i))
    sim.run(until=sim.now + 5.0)
    return runtime, outcomes


def test_graph_dead_fields_shrinks_wires_bit_identically(benchmark):
    """Mesh-wide dead-field elimination on bookinfo: the proven-live
    sets shrink at least one edge's wire header, every IR rewrite is
    translation-validated, and an end-to-end replay with the shrunken
    headers is bit-identical to the baseline."""
    from repro.analysis.graph import eliminate_dead_fields_graph
    from repro.graph import MESH_SCHEMA, bookinfo_graph, mesh_program

    plan = eliminate_dead_fields_graph(
        bookinfo_graph(), mesh_program(), MESH_SCHEMA
    )
    assert len(plan.shrunk_edges()) >= 1
    for change in plan.changes.values():
        if change.verdict is not None:
            assert change.verdict.ok is not False

    def check():
        base_rt, base = _replay_bookinfo()
        slim_rt, slim = _replay_bookinfo(
            edge_app_reads=plan.edge_app_reads()
        )
        assert len(base) == len(slim) == 16
        for a, b in zip(base, slim):
            assert a.aborted_by == b.aborted_by
            assert a.request == b.request
            assert a.response == b.response
        base_hdr = base_rt.stack(
            "productpage", "details"
        ).hop_plan.layout.min_size_bytes()
        slim_hdr = slim_rt.stack(
            "productpage", "details"
        ).hop_plan.layout.min_size_bytes()
        assert slim_hdr < base_hdr
        base_wire = sum(
            s.wire_bytes_total for s in base_rt.stacks.values()
        )
        slim_wire = sum(
            s.wire_bytes_total for s in slim_rt.stacks.values()
        )
        assert slim_wire < base_wire
        print(
            f"productpage->details header {base_hdr} -> {slim_hdr} B; "
            f"total wire bytes {base_wire} -> {slim_wire} "
            f"({plan.bytes_saved()} B/req planned across the mesh)"
        )

    bench_assert(benchmark, check)
