"""Cost of per-pass translation validation (``compile --verify``).

The validator replays every pass's rewrite three ways (certificates,
abstract environments, concolic exemplar execution), so it is not free;
this bench records the overhead per pass — the same ``verify_ms``
figures ``compile --explain`` prints in its ``verified`` column — and
asserts validation stays a small, bounded fraction of a compile."""

import pytest

from repro.dsl import FunctionRegistry, load_stdlib
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.optimizer import ChainContext, OptimizerOptions, optimize_chain

from bench_harness import SCHEMA, PAPER_ELEMENTS, bench_assert, print_table

#: the paper chain plus a field-writing element so every pass has work
CHAIN = ("Mirror",) + PAPER_ELEMENTS


def build_elements(registry):
    program = load_stdlib(schema=SCHEMA)
    irs = []
    for name in CHAIN:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        irs.append(ir)
    return irs


def run_pipeline(verify: bool):
    registry = FunctionRegistry()
    context = ChainContext(registry=registry, schema=SCHEMA)
    options = OptimizerOptions(fusion=True, verify=verify)
    chain = optimize_chain(build_elements(registry), context, options)
    return chain.pass_reports


@pytest.fixture(scope="module")
def reports():
    return {
        "verified": run_pipeline(verify=True),
        "plain": run_pipeline(verify=False),
    }


class TestValidatorOverhead:
    def test_per_pass_overhead_table(self, reports, benchmark):
        verified = [r for r in reports["verified"] if not r.skipped]

        def report():
            rows = [r.name for r in verified]
            by_name = {r.name: r for r in verified}
            print()
            print_table(
                "translation validation overhead per pass",
                rows,
                ["pass ms", "verify ms"],
                lambda row, col: {
                    "pass ms": by_name[row].wall_ms,
                    "verify ms": by_name[row].verify_ms,
                }[col],
                unit="ms",
            )
            return sum(r.verify_ms for r in verified)

        total_verify_ms = bench_assert(benchmark, report)
        # every enabled pass carries a verdict and a recorded cost
        assert all(r.validated is True for r in verified)
        assert all(r.verify_ms >= 0.0 for r in verified)
        # validation must stay cheap in absolute terms: the concolic
        # replay touches a handful of exemplar messages, not a workload
        assert total_verify_ms < 2000.0

    def test_verify_off_costs_nothing(self, reports, benchmark):
        plain = reports["plain"]

        def check():
            return sum(r.verify_ms for r in plain)

        assert bench_assert(benchmark, check) == 0.0
        assert all(r.validated is None for r in plain)
