"""Lines-of-code comparison (§6 text / abstract): "ADN elements have
tens of lines of SQL, whereas hand-written mRPC modules have hundreds of
lines of Rust" — "reducing the lines of code by two orders of magnitude".

Three columns per element: the DSL source we actually compile, the
hand-written Python modules in this repo (a same-language reference
point), and the paper's Rust mRPC module counts.
"""

from repro.baselines import RUST_LOC, hand_module_loc
from repro.dsl.stdlib import stdlib_loc

from bench_harness import PAPER_ELEMENTS, bench_assert, print_table


def test_loc_table(benchmark):
    def report():
        return print_table(
            "Lines of code per element (paper §6)",
            rows=list(PAPER_ELEMENTS),
            columns=["ADN DSL", "hand Python", "hand Rust (paper)"],
            cell=lambda element, col: float(
                {
                    "ADN DSL": stdlib_loc(element),
                    "hand Python": hand_module_loc(element),
                    "hand Rust (paper)": RUST_LOC[element],
                }[col]
            ),
            unit="non-blank lines",
        )

    bench_assert(benchmark, report)


def test_dsl_is_tens_of_lines(benchmark):
    def check():
        for element in PAPER_ELEMENTS:
            loc = stdlib_loc(element)
            assert loc <= 30, f"{element}: {loc} DSL lines"
        return [stdlib_loc(e) for e in PAPER_ELEMENTS]

    bench_assert(benchmark, check)


def test_rust_is_two_orders_of_magnitude_more(benchmark):
    def check():
        ratios = []
        for element in PAPER_ELEMENTS:
            ratio = RUST_LOC[element] / stdlib_loc(element)
            ratios.append(ratio)
            assert ratio >= 20, f"{element}: only {ratio:.0f}x"
        # averaged, the gap approaches two orders of magnitude
        assert sum(ratios) / len(ratios) >= 30
        return ratios

    bench_assert(benchmark, check)


def test_hand_python_several_times_dsl(benchmark):
    def check():
        for element in PAPER_ELEMENTS:
            assert hand_module_loc(element) >= 3 * stdlib_loc(element)

    bench_assert(benchmark, check)


def test_generated_code_larger_than_dsl(benchmark):
    def check():
        """The compiler writes the verbose code so the developer doesn't
        have to: generated Python exceeds its DSL source."""
        from bench_harness import compile_chain

        chain = compile_chain(PAPER_ELEMENTS)
        for element in PAPER_ELEMENTS:
            generated = chain.elements[element].artifact("python").loc
            assert generated > stdlib_loc(element)

    bench_assert(benchmark, check)
