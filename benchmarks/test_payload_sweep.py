"""ADN's advantage vs. payload size.

The paper's workload is "a short byte string". Growing the payload does
not erode the advantage in this range: Envoy re-marshals the body on
every traversal (per-byte cost at each of the four proxy passes plus
both endpoint stacks) while mRPC moves payloads zero-copy, paying only
wire serialization — so the absolute gap *grows* with payload while the
ratio stays roughly flat. The ratio would only collapse once raw wire
time dominates everything (multi-MB transfers).
"""

import pytest

from bench_harness import bench_assert, print_table, run_adn, run_envoy

CHAIN = ("Logging", "Acl", "Fault")
PAYLOAD_SIZES = (64, 1024, 8192, 32768)


def fields_fn_for(size):
    def fields(rng, index):
        return {
            "payload": b"x" * size,
            "username": "usr2" if rng.random() < 0.9 else "usr1",
            "obj_id": rng.randrange(1 << 16),
        }

    return fields


@pytest.fixture(scope="module")
def envoy_sweep():
    """Envoy latency per payload size (needs the fields hook)."""
    import bench_harness
    from repro.dsl import FunctionRegistry, load_stdlib
    from repro.ir import analyze_element, build_element_ir
    from repro.baselines import EnvoyMeshStack
    from repro.runtime.message import reset_rpc_ids
    from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

    results = {}
    program = load_stdlib(schema=bench_harness.SCHEMA)
    for size in PAYLOAD_SIZES:
        reset_rpc_ids()
        registry = FunctionRegistry()
        irs = {}
        for name in CHAIN:
            ir = build_element_ir(program.elements[name])
            analyze_element(ir, registry)
            irs[name] = ir
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = EnvoyMeshStack(
            sim,
            cluster,
            bench_harness.SCHEMA,
            client_filters=[irs["Logging"], irs["Fault"]],
            server_filters=[irs["Acl"]],
            registry=registry,
        )
        client = ClosedLoopClient(
            sim,
            stack.call,
            concurrency=1,
            total_rpcs=200,
            fields_fn=fields_fn_for(size),
        )
        results[size] = client.run().latency.median_us()
    return results


@pytest.fixture(scope="module")
def adn_sweep():
    results = {}
    for size in PAYLOAD_SIZES:
        metrics = run_adn(CHAIN, "latency", fields_fn=fields_fn_for(size))
        results[size] = metrics.latency.median_us()
    return results


def test_payload_sweep_table(adn_sweep, envoy_sweep, benchmark):
    def report():
        return print_table(
            "median latency (us) vs payload size",
            rows=["adn", "envoy", "ratio"],
            columns=[f"{size}B" for size in PAYLOAD_SIZES],
            cell=lambda row, col: {
                "adn": adn_sweep[int(col[:-1])],
                "envoy": envoy_sweep[int(col[:-1])],
                "ratio": envoy_sweep[int(col[:-1])] / adn_sweep[int(col[:-1])],
            }[row],
        )

    bench_assert(benchmark, report)


def test_ratio_stable_across_sizes(adn_sweep, envoy_sweep, benchmark):
    def check():
        """Zero-copy vs repeated marshalling: the ratio holds ~19-20x
        across three orders of magnitude of payload."""
        ratios = [
            envoy_sweep[size] / adn_sweep[size] for size in PAYLOAD_SIZES
        ]
        for ratio in ratios:
            assert 14 <= ratio <= 25, ratios
        return ratios

    bench_assert(benchmark, check)


def test_absolute_gap_grows_with_payload(adn_sweep, envoy_sweep, benchmark):
    def check():
        gaps = [envoy_sweep[size] - adn_sweep[size] for size in PAYLOAD_SIZES]
        assert gaps == sorted(gaps), gaps
        return gaps

    bench_assert(benchmark, check)


def test_adn_still_wins_at_32k(adn_sweep, envoy_sweep, benchmark):
    def check():
        ratio = envoy_sweep[32768] / adn_sweep[32768]
        assert ratio > 2.0
        return ratio

    bench_assert(benchmark, check)


def test_small_payload_matches_headline(adn_sweep, envoy_sweep, benchmark):
    def check():
        ratio = envoy_sweep[64] / adn_sweep[64]
        assert 14 <= ratio <= 23
        return ratio

    bench_assert(benchmark, check)
