"""Control-plane resilience under failure — the failover experiment.

Three pinned results, each bit-identical under its fixed seed:

* **controller crash mid-recovery** — the leader dies while recovering
  a crashed data host. With the warm standby the journaled recovery
  resumes after lease expiry and mesh goodput stays >= 70% of the
  unstressed peak; without it the recovery is orphaned and the
  workload never finishes (the closed loop times out);
* **epoch fencing** — a control partition during recovery deposes the
  leader mid-push. The healed stale leader's late plan bounces off the
  epoch fence (zero stale applications across the chaos soak); with
  the fence disabled the same schedule demonstrates the split-brain
  double-application;
* **gray-failure detection** — a machine running 20x slow keeps
  heartbeating, so crash-only phi-accrual never fires; the gray score
  over per-window service latency detects it and routes around.
"""

import pytest

from repro.control.resilience import (
    CTRL_A,
    STATS_MACHINE,
    run_chaos_soak,
    run_control_resilience_scenario,
)
from repro.faults import (
    GRAY_DEGRADE,
    FaultEvent,
    FaultPlan,
    controller_crash_during_failover_plan,
    partition_during_recovery_plan,
)

from bench_harness import bench_assert, print_table

CRASH_MID_RECOVERY = dict(
    seed=2,
    total_rpcs=1500,
    fault_plan=controller_crash_during_failover_plan(
        STATS_MACHINE, CTRL_A, crash_at_s=0.01, leader_crash_at_s=0.032
    ),
    run_limit_s=4.0,
)

PARTITION_MID_RECOVERY = dict(
    seed=3,
    total_rpcs=1500,
    fault_plan=partition_during_recovery_plan(
        STATS_MACHINE, CTRL_A, crash_at_s=0.01, partition_at_s=0.031,
        partition_for_s=0.06,
    ),
)

GRAY_PLAN = FaultPlan(
    events=[
        FaultEvent(
            at_s=0.1, kind=GRAY_DEGRADE, target=STATS_MACHINE,
            duration_s=0.5, magnitude=20.0,
        )
    ],
    seed=4,
)

GRAY_KWARGS = dict(
    seed=4, total_rpcs=1000, fault_plan=GRAY_PLAN, client_think_s=0.002,
    horizon_s=1.0,
)


@pytest.fixture(scope="module")
def failover_runs():
    return {
        "unstressed": run_control_resilience_scenario(
            seed=2, total_rpcs=1500, fault_plan=FaultPlan(events=[], seed=2)
        ),
        "with-failover": run_control_resilience_scenario(
            **CRASH_MID_RECOVERY
        ),
        "no-failover": run_control_resilience_scenario(
            standby=False, **CRASH_MID_RECOVERY
        ),
    }


def test_failover_table(failover_runs, benchmark):
    def report():
        return print_table(
            "controller crash mid-recovery (goodput fraction)",
            rows=["unstressed", "with-failover", "no-failover"],
            columns=["goodput", "recoveries", "failovers", "timed out"],
            cell=lambda row, col: float({
                "goodput": failover_runs[row].goodput_fraction,
                "recoveries": len(failover_runs[row].reports),
                "failovers": len(failover_runs[row].failovers),
                "timed out": failover_runs[row].timed_out,
            }[col]),
        )

    bench_assert(benchmark, report)


def test_failover_keeps_goodput_above_70_percent(failover_runs, benchmark):
    def check():
        peak = failover_runs["unstressed"].goodput_fraction
        survived = failover_runs["with-failover"]
        assert not survived.timed_out
        assert survived.goodput_fraction >= 0.70 * peak
        # the takeover actually happened and resumed the journaled job
        (failover,) = survived.failovers
        assert failover.term == 2
        assert STATS_MACHINE in failover.resumed
        assert [r.machine for r in survived.reports] == [STATS_MACHINE]
        return survived.goodput_fraction

    bench_assert(benchmark, check)


def test_no_failover_baseline_orphans_the_mesh(failover_runs, benchmark):
    def check():
        orphaned = failover_runs["no-failover"]
        assert orphaned.timed_out
        assert orphaned.reports == []
        assert (
            orphaned.goodput_fraction
            < failover_runs["with-failover"].goodput_fraction
        )
        return orphaned.goodput_fraction

    bench_assert(benchmark, check)


def test_zero_stale_applications_across_chaos_trials(benchmark):
    def check():
        fenced = run_control_resilience_scenario(**PARTITION_MID_RECOVERY)
        assert fenced.stale_plans_rejected >= 1
        assert fenced.stale_plans_applied == 0
        unfenced = run_control_resilience_scenario(
            fence_epochs=False, **PARTITION_MID_RECOVERY
        )
        assert unfenced.stale_plans_applied >= 1
        soak = run_chaos_soak(trials=4, base_seed=100, total_rpcs=600)
        assert soak["total_stale_applied"] == 0
        return soak["total_stale_rejected"]

    bench_assert(benchmark, check)


def test_gray_failure_detected_and_routed_around(benchmark):
    def check():
        gray = run_control_resilience_scenario(
            gray_factor=3.0, **GRAY_KWARGS
        )
        (report,) = gray.reports
        assert report.kind == "gray"
        assert report.machine == STATS_MACHINE
        assert report.elements_moved  # routed around, not just noticed
        # crash-only phi-accrual never fires: the machine heartbeats
        crash_only = run_control_resilience_scenario(
            gray_factor=0.0, **GRAY_KWARGS
        )
        assert crash_only.reports == []
        assert STATS_MACHINE not in crash_only.detector.suspects
        return report.recovered_at

    bench_assert(benchmark, check)


def test_replay_is_bit_identical(failover_runs, benchmark):
    def check():
        again = run_control_resilience_scenario(**CRASH_MID_RECOVERY)
        assert again.signature() == failover_runs["with-failover"].signature()
        gray = [
            run_control_resilience_scenario(gray_factor=3.0, **GRAY_KWARGS)
            for _ in range(2)
        ]
        assert gray[0].signature() == gray[1].signature()
        return again.goodput_fraction

    bench_assert(benchmark, check)


def test_control_resilience_smoke(benchmark):
    """Reduced shape for ``make chaos-soak`` (select with ``-k smoke``):
    failover beats no-failover through a controller blackout, and the
    fence stays tight."""

    def check():
        kwargs = dict(CRASH_MID_RECOVERY, total_rpcs=800)
        survived = run_control_resilience_scenario(**kwargs)
        orphaned = run_control_resilience_scenario(standby=False, **kwargs)
        assert not survived.timed_out
        assert orphaned.timed_out
        assert survived.goodput_fraction >= 0.70
        assert survived.stale_plans_applied == 0
        print(
            f"goodput with failover {survived.goodput_fraction:.3f} vs "
            f"orphaned {orphaned.goodput_fraction:.3f} "
            f"(failovers={len(survived.failovers)}, "
            f"recoveries={len(survived.reports)})"
        )
        return survived.goodput_fraction

    bench_assert(benchmark, check)
