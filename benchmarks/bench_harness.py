"""Shared harness for the paper-reproduction benchmarks.

Builds the three stacks of Figure 5 — gRPC+Envoy, ADN+mRPC (generated),
and hand-coded mRPC — on the simulated two-machine testbed and runs the
paper's workload: a single-threaded client keeping ``concurrency`` RPCs
in flight, short byte-string request/response (§6).

Two run modes per the figure's two panels:

* ``throughput`` — 128 concurrent RPCs, report completed krps;
* ``latency`` — concurrency 1 (unloaded), report median RTT in µs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines import EnvoyMeshStack, GrpcStack
from repro.compiler.compiler import AdnCompiler, CompiledChain
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.runtime.processor import PlacementPlan
from repro.sim import ClosedLoopClient, RunMetrics, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "bench",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)

#: the paper's evaluation elements (Figure 5's x axis)
PAPER_ELEMENTS = ("Logging", "Acl", "Fault")

#: which sidecar hosts each element's Envoy filter
ENVOY_FILTER_SIDE = {
    "Logging": "client",
    "Fault": "client",
    "Acl": "server",
    "LbKeyHash": "client",
    "Compression": "client",
    "Decompression": "server",
    "AccessControl": "server",
}

THROUGHPUT_CONCURRENCY = 128
THROUGHPUT_RPCS = 4000
LATENCY_RPCS = 400


@dataclass
class BenchResult:
    """One cell of a result table."""

    system: str
    workload: str
    metrics: RunMetrics

    @property
    def krps(self) -> float:
        return self.metrics.throughput_krps

    @property
    def median_us(self) -> float:
        return self.metrics.latency.median_us()


def compile_chain(
    elements: Sequence[str], registry: Optional[FunctionRegistry] = None
) -> CompiledChain:
    registry = registry or FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=tuple(elements))
    return compiler.compile_chain(decl, program, SCHEMA)


def _run_client(
    sim, call, mode: str, seed: int = 1, fields_fn=None
) -> RunMetrics:
    if mode == "throughput":
        client = ClosedLoopClient(
            sim,
            call,
            concurrency=THROUGHPUT_CONCURRENCY,
            total_rpcs=THROUGHPUT_RPCS,
            warmup_rpcs=THROUGHPUT_RPCS // 10,
            seed=seed,
            fields_fn=fields_fn,
        )
    else:
        client = ClosedLoopClient(
            sim,
            call,
            concurrency=1,
            total_rpcs=LATENCY_RPCS,
            seed=seed,
            fields_fn=fields_fn,
        )
    return client.run()


#: object ids used by the §2 workload (small set so the AccessControl
#: whitelist can be seeded exactly)
SECTION2_OBJECT_IDS = tuple(range(0, 64))


def section2_fields(rng, index):
    """Workload for the §2 chain: keyed objects, mostly-writable users."""
    return {
        "payload": b"hello world " * 8,
        "username": "usr2" if rng.random() < 0.9 else "usr1",
        "obj_id": SECTION2_OBJECT_IDS[index % len(SECTION2_OBJECT_IDS)],
    }


def _seed_access_control(stack) -> None:
    """Whitelist every (user, object) pair the §2 workload uses."""
    for processor in stack.processors:
        if "AccessControl" not in processor.segment.elements:
            continue
        table = processor.element_state("AccessControl").table("acl")
        for username in ("usr1", "usr2"):
            for obj_id in SECTION2_OBJECT_IDS:
                table.insert(
                    {"username": username, "obj_id": obj_id, "allowed": True}
                )


def run_adn(
    elements: Sequence[str],
    mode: str,
    handcoded: bool = False,
    plan: Optional[PlacementPlan] = None,
    cluster_kwargs: Optional[dict] = None,
    seed: int = 1,
    fields_fn=None,
) -> RunMetrics:
    """One ADN+mRPC run; returns the metrics with CPU accounting."""
    reset_rpc_ids()
    registry = FunctionRegistry()
    chain = compile_chain(elements, registry)
    sim = Simulator()
    cluster = two_machine_cluster(sim, **(cluster_kwargs or {}))
    stack = AdnMrpcStack(
        sim,
        cluster,
        chain,
        SCHEMA,
        registry,
        plan=plan,
        handcoded=handcoded,
    )
    if "AccessControl" in elements:
        _seed_access_control(stack)
        fields_fn = fields_fn or section2_fields
    metrics = _run_client(sim, stack.call, mode, seed, fields_fn)
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    metrics.notes["wire_bytes"] = stack.wire_bytes_total
    return metrics


def run_envoy(
    elements: Sequence[str], mode: str, seed: int = 1
) -> RunMetrics:
    """One gRPC+Envoy run with the same elements as sidecar filters."""
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    client_filters = []
    server_filters = []
    for name in elements:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        side = ENVOY_FILTER_SIDE.get(name, "client")
        (client_filters if side == "client" else server_filters).append(ir)
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = EnvoyMeshStack(
        sim,
        cluster,
        SCHEMA,
        client_filters=client_filters,
        server_filters=server_filters,
        registry=registry,
    )
    metrics = _run_client(sim, stack.call, mode, seed)
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    metrics.notes["wire_bytes"] = stack.wire_bytes_total
    return metrics


def run_plain_grpc(mode: str, seed: int = 1) -> RunMetrics:
    """Plain gRPC, no mesh (the mesh-overhead reference point)."""
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = GrpcStack(sim, cluster, SCHEMA)
    metrics = _run_client(sim, stack.call, mode, seed)
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    metrics.notes["wire_bytes"] = stack.wire_bytes_total
    return metrics


def fig5_matrix(mode: str) -> Dict[str, Dict[str, RunMetrics]]:
    """The full Figure 5 matrix: element → system → metrics."""
    matrix: Dict[str, Dict[str, RunMetrics]] = {}
    for element in PAPER_ELEMENTS:
        matrix[element] = {
            "gRPC+Envoy": run_envoy([element], mode),
            "ADN+mRPC": run_adn([element], mode),
            "Hand-coded mRPC": run_adn([element], mode, handcoded=True),
        }
    return matrix


def bench_assert(benchmark, fn):
    """Run assertions/reporting as a single-round pedantic benchmark, so
    the shape checks execute under ``pytest --benchmark-only``."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(
    title: str,
    rows: List[str],
    columns: List[str],
    cell,
    unit: str = "",
) -> str:
    """Format a paper-style table; returns (and prints) the text."""
    widths = [max(18, len(c) + 2) for c in columns]
    lines = [title, "=" * len(title)]
    header = f"{'':20s}" + "".join(
        f"{col:>{w}s}" for col, w in zip(columns, widths)
    )
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{cell(row, col):>{w}.1f}" for col, w in zip(columns, widths)
        )
        lines.append(f"{row:20s}" + cells)
    if unit:
        lines.append(f"(values in {unit})")
    text = "\n".join(lines)
    print("\n" + text)
    return text
