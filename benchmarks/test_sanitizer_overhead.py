"""Shadow-sanitizer overhead: chaos trials with the checker attached.

The `StateSanitizer` observes every table insert/update/delete and var
write during a trial, so its cost lands on the hottest path the runtime
has. For it to be usable as an always-on CI gate (`make sanitize`), a
sanitized trial must stay within 2x the wall-clock of an unsanitized
one — measured on the same mesh, workload, fault plan, and seed.
"""

import time

from repro.faults.plan import FaultEvent, FaultPlan
from repro.graph.scenario import hotel_mesh_graph, run_graph_scenario
from repro.state.table import StateSanitizer

from bench_harness import bench_assert, print_table

#: sanitizer-on wall-clock must stay under this multiple of off
MAX_SLOWDOWN = 2.0
#: trials too fast to time honestly get a noise floor instead of a ratio
FLOOR_S = 0.05

LINK_LOSS = FaultPlan(
    events=[
        FaultEvent(
            at_s=0.02, kind="link_loss", magnitude=0.3, duration_s=0.08
        )
    ],
    seed=3,
)


def timed_trial(sanitizer):
    started = time.perf_counter()
    run_graph_scenario(
        graph=hotel_mesh_graph(),
        duration_s=0.15,
        base_rps=1_500.0,
        fault_plan=LINK_LOSS,
        sanitizer=sanitizer,
        seed=3,
    )
    return time.perf_counter() - started


def test_sanitizer_overhead_bounded(benchmark):
    timings = {}

    def run():
        # interleave off/on pairs and keep the best of each, so a
        # one-off scheduler hiccup cannot fail the bound
        off = min(timed_trial(None) for _ in range(2))
        sanitizer = StateSanitizer()
        on = min(timed_trial(sanitizer) for _ in range(2))
        sanitizer.check_divergence()
        assert sanitizer.violations == [], [
            v.describe() for v in sanitizer.violations
        ]
        timings["off"] = off * 1e3
        timings["on"] = on * 1e3
        if off > FLOOR_S:
            assert on < off * MAX_SLOWDOWN, (
                f"sanitized trial took {on * 1e3:.0f} ms vs "
                f"{off * 1e3:.0f} ms bare ({on / off:.2f}x, "
                f"bound {MAX_SLOWDOWN:g}x)"
            )
        else:
            # sub-floor trials: bound the absolute overhead instead
            assert on < FLOOR_S * MAX_SLOWDOWN
        print_table(
            "hotel-mesh chaos trial wall time",
            rows=["wall_ms"],
            columns=["sanitizer off", "sanitizer on"],
            cell=lambda row, col: timings[
                "off" if "off" in col else "on"
            ],
            unit="ms",
        )

    bench_assert(benchmark, run)


def test_disabled_sanitizer_is_near_free():
    """`StateSanitizer(enabled=False)` keeps the hooks attached but
    records nothing — the observer early-outs must keep it cheap and,
    above all, silent."""
    sanitizer = StateSanitizer(enabled=False)
    timed_trial(sanitizer)
    sanitizer.check_divergence()
    assert sanitizer.violations == []
