"""Application peering (paper §7): translating directly between two
ADNs' wire formats versus down-shifting to the standard stack between
them.

"Such 'application peering' not only removes one translation step but
also eliminates the need to 'down-shift' application messages to IP and
back."
"""

import pytest

from repro.compiler.headers import plan_hop_headers
from repro.runtime.gateway import peering_savings
from repro.runtime.message import make_request

from bench_harness import SCHEMA, bench_assert, compile_chain, print_table


@pytest.fixture(scope="module")
def savings():
    # two ADN apps with different chains (hence different wire formats)
    sender_chain = compile_chain(("LbKeyHash", "Acl"))
    receiver_chain = compile_chain(("Logging", "Fault"))
    sender_layout = plan_hop_headers(sender_chain.ir, SCHEMA, [0])[0].layout
    receiver_layout = plan_hop_headers(receiver_chain.ir, SCHEMA, [0])[0].layout
    message = make_request(
        SCHEMA,
        src="A.0",
        dst="ext-service",
        payload=b"x" * 64,
        username="usr2",
        obj_id=7,
    )
    return peering_savings(sender_layout, receiver_layout, SCHEMA, message)


def test_peering_table(savings, benchmark):
    def report():
        return print_table(
            "App peering vs down-shift (64-byte payload)",
            rows=["peered (ADN->ADN)", "down-shift (via gRPC)"],
            columns=["wire bytes", "cpu_us"],
            cell=lambda row, col: {
                ("peered (ADN->ADN)", "wire bytes"): savings["peered_bytes"],
                ("peered (ADN->ADN)", "cpu_us"): savings["peered_cpu_us"],
                ("down-shift (via gRPC)", "wire bytes"): savings[
                    "downshift_bytes"
                ],
                ("down-shift (via gRPC)", "cpu_us"): savings[
                    "downshift_cpu_us"
                ],
            }[(row, col)],
        )

    bench_assert(benchmark, report)


def test_peering_saves_bytes(savings, benchmark):
    def check():
        assert savings["byte_ratio"] > 1.5
        return savings["byte_ratio"]

    bench_assert(benchmark, check)


def test_peering_saves_cpu(savings, benchmark):
    def check():
        # no wrapped-stack parse/serialize in the middle
        assert savings["cpu_ratio"] > 5.0
        return savings["cpu_ratio"]

    bench_assert(benchmark, check)
