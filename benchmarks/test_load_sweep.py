"""Latency vs. offered load — the classic knee curve behind Figure 5.

Open-loop (Poisson) load at increasing rates against gRPC+Envoy and
ADN+mRPC. The shape to reproduce: Envoy's latency knee sits at ~1/6th of
ADN's sustainable rate, and below both knees ADN's floor latency is an
order of magnitude lower.
"""

import pytest

from repro.baselines import EnvoyMeshStack
from repro.compiler.compiler import AdnCompiler
from repro.dsl import FunctionRegistry, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.ir import analyze_element, build_element_ir
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import OpenLoopClient, Simulator, two_machine_cluster

from bench_harness import SCHEMA, bench_assert, print_table

CHAIN = ("Logging", "Acl", "Fault")
RATES_KRPS = (2, 5, 10, 14, 40, 80)
DURATION_S = 0.25


def run_open_loop(system: str, rate_rps: float):
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    if system == "adn":
        compiler = AdnCompiler(registry=registry)
        chain = compiler.compile_chain(
            ChainDecl(src="A", dst="B", elements=CHAIN), program, SCHEMA
        )
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
    else:
        irs = {}
        for name in CHAIN:
            ir = build_element_ir(program.elements[name])
            analyze_element(ir, registry)
            irs[name] = ir
        stack = EnvoyMeshStack(
            sim,
            cluster,
            SCHEMA,
            client_filters=[irs["Logging"], irs["Fault"]],
            server_filters=[irs["Acl"]],
            registry=registry,
        )
    client = OpenLoopClient(
        sim, stack.call, rate_rps=rate_rps, duration_s=DURATION_S
    )
    return client.run(drain_s=0.2)


@pytest.fixture(scope="module")
def sweep():
    results = {"adn": {}, "envoy": {}}
    for rate_krps in RATES_KRPS:
        rate = rate_krps * 1000
        results["adn"][rate_krps] = run_open_loop("adn", rate)
        if rate_krps <= 14:  # beyond its knee Envoy melts; don't simulate it
            results["envoy"][rate_krps] = run_open_loop("envoy", rate)
    return results


def test_load_sweep_table(sweep, benchmark):
    def report():
        def cell(row, col):
            rate = int(col.split(" ")[0])
            metrics = sweep[row].get(rate)
            if metrics is None or not metrics.latency.samples:
                return float("nan")
            return metrics.latency.percentile(95) * 1e6

        return print_table(
            "p95 latency (us) vs offered load",
            rows=["adn", "envoy"],
            columns=[f"{rate} krps" for rate in RATES_KRPS],
            cell=cell,
        )

    bench_assert(benchmark, report)


def test_adn_flat_through_envoys_knee(sweep, benchmark):
    def check():
        """Approaching its ~16.6 krps saturation, Envoy's tail climbs
        steeply; ADN at the same rate has barely moved off its floor."""
        adn_low = sweep["adn"][2].latency.percentile(95)
        adn_mid = sweep["adn"][14].latency.percentile(95)
        adn_climb = adn_mid / adn_low
        envoy_low = sweep["envoy"][2].latency.percentile(95)
        envoy_knee = sweep["envoy"][14].latency.percentile(95)
        envoy_climb = envoy_knee / envoy_low
        assert adn_climb < 1.3, f"ADN climbed {adn_climb:.2f}x"
        assert envoy_climb > 1.3, f"Envoy climbed only {envoy_climb:.2f}x"
        # and the absolute queueing delta dwarfs ADN's entire latency
        assert (envoy_knee - envoy_low) > 5 * adn_mid
        return envoy_climb

    bench_assert(benchmark, check)


def test_adn_sustains_80_krps(sweep, benchmark):
    def check():
        metrics = sweep["adn"][80]
        # served at the offered rate (within Poisson noise)
        assert metrics.completed >= 0.9 * 80_000 * DURATION_S
        # and still sub-millisecond
        assert metrics.latency.percentile(95) * 1e6 < 1000
        return metrics.latency.percentile(95) * 1e6

    bench_assert(benchmark, check)


def test_floor_latency_gap(sweep, benchmark):
    def check():
        adn = sweep["adn"][2].latency.median
        envoy = sweep["envoy"][2].latency.median
        assert envoy / adn > 10
        return envoy / adn

    bench_assert(benchmark, check)
