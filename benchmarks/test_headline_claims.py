"""The paper's headline claims (§6 text / abstract), measured on the
full three-element chain — "the ADN network specification chains the
three elements ... RPCs are logged, access controlled, and some of them
are dropped":

* ADN reduces end-to-end RPC latency by **17–20x** vs Envoy;
* ADN increases RPC throughput by **5–6x** vs Envoy;
* generated modules trail hand-optimized mRPC modules by **3–12%**.
"""

import pytest

from bench_harness import bench_assert, print_table, run_adn, run_envoy

CHAIN = ("Logging", "Acl", "Fault")


@pytest.fixture(scope="module")
def chained_results():
    return {
        "throughput": {
            "gRPC+Envoy": run_envoy(CHAIN, "throughput"),
            "ADN+mRPC": run_adn(CHAIN, "throughput"),
            "Hand-coded mRPC": run_adn(CHAIN, "throughput", handcoded=True),
        },
        "latency": {
            "gRPC+Envoy": run_envoy(CHAIN, "latency"),
            "ADN+mRPC": run_adn(CHAIN, "latency"),
            "Hand-coded mRPC": run_adn(CHAIN, "latency", handcoded=True),
        },
    }


def test_headline_table(chained_results, benchmark):
    results = chained_results

    def report():
        systems = ["gRPC+Envoy", "ADN+mRPC", "Hand-coded mRPC"]
        text = print_table(
            "Headline (full Logging+ACL+Fault chain)",
            rows=systems,
            columns=["rate_krps", "median_us", "cpu_us_per_rpc"],
            cell=lambda system, col: {
                "rate_krps": results["throughput"][system].throughput_krps,
                "median_us": results["latency"][system].latency.median_us(),
                "cpu_us_per_rpc": results["throughput"][
                    system
                ].cpu_us_per_rpc(),
            }[col],
        )
        return text

    bench_assert(benchmark, report)


def test_latency_claim_17_to_20x(chained_results, benchmark):
    def check():
        envoy = chained_results["latency"]["gRPC+Envoy"].latency.median_us()
        adn = chained_results["latency"]["ADN+mRPC"].latency.median_us()
        ratio = envoy / adn
        assert 16.0 <= ratio <= 21.0, f"latency ratio {ratio:.1f}x"
        return ratio

    bench_assert(benchmark, check)


def test_throughput_claim_5_to_6x(chained_results, benchmark):
    def check():
        envoy = chained_results["throughput"]["gRPC+Envoy"].throughput_krps
        adn = chained_results["throughput"]["ADN+mRPC"].throughput_krps
        ratio = adn / envoy
        assert 4.8 <= ratio <= 6.5, f"throughput ratio {ratio:.2f}x"
        return ratio

    bench_assert(benchmark, check)


def test_codegen_gap_claim_3_to_12_percent(chained_results, benchmark):
    def check():
        adn = chained_results["throughput"]["ADN+mRPC"].throughput_krps
        hand = chained_results["throughput"][
            "Hand-coded mRPC"
        ].throughput_krps
        gap = (hand - adn) / hand * 100
        assert 3.0 <= gap <= 12.0, f"codegen gap {gap:.1f}%"
        return gap

    bench_assert(benchmark, check)


def test_cpu_reduction(chained_results, benchmark):
    def check():
        """Service meshes inflate CPU several-fold (§1/§2 cite 1.6-7x on
        top of gRPC; vs ADN the total gap is larger)."""
        envoy = chained_results["throughput"]["gRPC+Envoy"].cpu_us_per_rpc()
        adn = chained_results["throughput"]["ADN+mRPC"].cpu_us_per_rpc()
        assert envoy / adn > 4.0
        return envoy / adn

    bench_assert(benchmark, check)
