"""Generated-code overhead study (§6: "Compared to hand-optimized mRPC
modules, ADN modules have 3–12% lower performance. This degradation is
primarily due to the programming abstraction of ADN.").

Sweeps chain length: the more element work per RPC, the larger the share
of time spent in generated (vs hand-specialized) code, so the gap grows
with the chain — bounded by the paper's 12%.
"""

import pytest

from bench_harness import bench_assert, print_table, run_adn

CHAINS = {
    "1 element": ("Acl",),
    "2 elements": ("Logging", "Acl"),
    "3 elements": ("Logging", "Acl", "Fault"),
    "5 elements": ("Logging", "Acl", "Fault", "Metrics", "LbKeyHash"),
}


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for label, chain in CHAINS.items():
        generated = run_adn(chain, "throughput")
        hand = run_adn(chain, "throughput", handcoded=True)
        gap = (
            (hand.throughput_krps - generated.throughput_krps)
            / hand.throughput_krps
            * 100
        )
        results[label] = {
            "generated_krps": generated.throughput_krps,
            "hand_krps": hand.throughput_krps,
            "gap_pct": gap,
        }
    return results


def test_codegen_overhead_table(sweep, benchmark):
    def report():
        return print_table(
            "Generated vs hand-coded mRPC modules",
            rows=list(CHAINS),
            columns=["generated_krps", "hand_krps", "gap_pct"],
            cell=lambda row, col: sweep[row][col],
        )

    bench_assert(benchmark, report)


def test_gap_within_paper_band_for_eval_chain(sweep, benchmark):
    def check():
        gap = sweep["3 elements"]["gap_pct"]
        assert 3.0 <= gap <= 12.0, f"gap {gap:.1f}%"
        return gap

    bench_assert(benchmark, check)


def test_gap_grows_with_chain_length(sweep, benchmark):
    def check():
        gaps = [sweep[label]["gap_pct"] for label in CHAINS]
        assert gaps[0] < gaps[-1]
        return gaps

    bench_assert(benchmark, check)


def test_gap_never_exceeds_paper_bound(sweep, benchmark):
    def check():
        for label, cells in sweep.items():
            assert cells["gap_pct"] <= 13.0, (label, cells["gap_pct"])

    bench_assert(benchmark, check)
