"""Minimal headers and offloadability (§2/§4 Q2): the conventional
wrapped stack buries application fields behind ~120 bytes of protocol
headers; ADN's compiler emits exactly the fields downstream elements
read, placing switch-matched fields inside the first 200 bytes.
"""

import pytest

from repro.compiler.headers import (
    P4_PARSE_WINDOW_BYTES,
    plan_hop_headers,
    relayout_for_switch,
    wrapped_stack_header_bytes,
)
from repro.net import AdnWireCodec, ProtoCodec, default_grpc_headers
from repro.net.http2 import framing_overhead_bytes
from repro.net.tcp import SEGMENT_OVERHEAD

from bench_harness import SCHEMA, bench_assert, compile_chain, print_table

SECTION2 = ("LbKeyHash", "Compression", "Decompression", "AccessControl")


@pytest.fixture(scope="module")
def header_numbers():
    chain = compile_chain(SECTION2)
    plans = plan_hop_headers(chain.ir, SCHEMA, hop_after=[0])
    layout = plans[0].layout
    codec = AdnWireCodec(layout)
    sample = {
        "rpc_id": 1,
        "obj_id": 7,
        "username": "usr2",
        "dst": "B.1",
        "src": "A.0",
        "kind": "request",
        "status": "ok",
        "method": "get",
        "payload": b"x" * 64,
    }
    adn_total = codec.encoded_size(
        {k: v for k, v in sample.items() if k in layout.field_names}
    )
    adn_header = adn_total - 64  # bytes that are not the payload
    wrapped_header = (
        wrapped_stack_header_bytes()
    )  # eth+ip+tcp+http2+grpc before any payload
    grpc_payload_bytes = len(
        ProtoCodec(SCHEMA).encode(
            {"payload": b"x" * 64, "username": "usr2", "obj_id": 7}
        )
    )
    http2_overhead = framing_overhead_bytes(
        default_grpc_headers("get", "B")
    )
    return {
        "chain": chain,
        "layout": layout,
        "adn_header_bytes": adn_header,
        "wrapped_header_bytes": wrapped_header,
        "http2_overhead": http2_overhead,
        "grpc_payload_bytes": grpc_payload_bytes,
    }


def test_header_size_table(header_numbers, benchmark):
    def report():
        return print_table(
            "Per-message header bytes before application data",
            rows=["ADN minimal header", "wrapped stack (eth..gRPC)"],
            columns=["bytes"],
            cell=lambda row, col: float(
                header_numbers["adn_header_bytes"]
                if row.startswith("ADN")
                else header_numbers["wrapped_header_bytes"]
            ),
        )

    bench_assert(benchmark, report)


def test_adn_header_much_smaller(header_numbers, benchmark):
    def check():
        adn = header_numbers["adn_header_bytes"]
        wrapped = header_numbers["wrapped_header_bytes"] + SEGMENT_OVERHEAD
        assert adn * 1.5 < wrapped
        return wrapped / adn

    bench_assert(benchmark, check)


def test_switch_fields_inside_window(header_numbers, benchmark):
    def check():
        """The fields the §2 switch offload matches on (obj_id for the
        LB, username/obj_id for the ACL) sit inside the 200-byte parse
        window after the switch relayout."""
        layout = header_numbers["layout"]
        switch_layout = relayout_for_switch(
            layout, ["obj_id", "username", "rpc_id"]
        )
        for name in ("obj_id", "username", "rpc_id"):
            entry = switch_layout.field(name)
            assert entry.fixed
            assert entry.offset < P4_PARSE_WINDOW_BYTES
        return switch_layout.fixed_bytes

    bench_assert(benchmark, check)


def test_wrapped_stack_buries_fields_beyond_window(header_numbers, benchmark):
    def check():
        """With the wrapped stack, application identifiers start after
        ~120 bytes of protocol headers *plus* whatever HPACK emitted, so
        a fixed-offset match is not possible — the paper's argument for
        why meshes cannot offload."""
        fixed_prefix = header_numbers["wrapped_header_bytes"]
        http2_variable = header_numbers["http2_overhead"]
        assert fixed_prefix + http2_variable > 150
        # and the offset is not even deterministic (depends on header
        # values), unlike ADN's layout
        other = framing_overhead_bytes(
            default_grpc_headers("a-much-longer-method-name", "B")
        )
        assert other != http2_variable

    bench_assert(benchmark, check)


def test_dead_field_pass_shrinks_or_holds_headers(benchmark):
    def check():
        """The dead_fields IR pass removes write-only projections before
        header planning, so every hop's field set can only shrink or hold
        relative to compiling with the pass disabled."""
        from repro.compiler.compiler import AdnCompiler
        from repro.dsl import FunctionRegistry, load_stdlib
        from repro.dsl.ast_nodes import ChainDecl
        from repro.ir.optimizer import OptimizerOptions

        def hop_plan(dead_fields):
            registry = FunctionRegistry()
            program = load_stdlib(schema=SCHEMA)
            compiler = AdnCompiler(
                registry=registry,
                options=OptimizerOptions(dead_fields=dead_fields),
            )
            chain = compiler.compile_chain(
                ChainDecl(src="A", dst="B", elements=SECTION2),
                program,
                SCHEMA,
            )
            return plan_hop_headers(chain.ir, SCHEMA, hop_after=[0])[0]

        with_pass = hop_plan(True)
        without = hop_plan(False)
        assert set(with_pass.layout.field_names) <= set(
            without.layout.field_names
        )
        assert with_pass.needed_fields <= without.needed_fields
        return sorted(
            set(without.layout.field_names) - set(with_pass.layout.field_names)
        )

    bench_assert(benchmark, check)


def test_headers_shrink_when_fields_unused(benchmark):
    def check():
        """Drop the ACL from the chain and the username field leaves the
        wire — headers track element needs exactly."""
        full = compile_chain(SECTION2)
        slim = compile_chain(("LbKeyHash", "Compression", "Decompression"))
        full_fields = set(
            plan_hop_headers(full.ir, SCHEMA, hop_after=[0])[0].layout.field_names
        )
        slim_fields = set(
            plan_hop_headers(slim.ir, SCHEMA, hop_after=[0])[0].layout.field_names
        )
        # username is still an app schema field (the server may read it),
        # but element-driven needs differ; check needed-set shrinkage
        full_needed = plan_hop_headers(full.ir, SCHEMA, hop_after=[0])[0]
        slim_needed = plan_hop_headers(slim.ir, SCHEMA, hop_after=[0])[0]
        assert slim_needed.needed_fields <= full_needed.needed_fields
        assert slim_fields <= full_fields
        return sorted(full_fields - slim_fields)

    bench_assert(benchmark, check)
