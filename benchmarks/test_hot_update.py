"""Hot element update (§5.2): "State decoupling also enables us to
hot-update element processing logic."

Traffic runs continuously while the operator re-applies the ADNConfig
with changed element logic; the controller swaps the compiled modules on
the live processors and carries their state across. Zero dropped RPCs,
and the accumulated state (the logger's records) survives the swap.
"""

import pytest

from repro.control import AdnController, MiniKube
from repro.dsl import FieldType, RpcSchema
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

from bench_harness import bench_assert, print_table

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

APP_V1 = """
app Shop {
    service A;
    service B;
    chain A -> B { Logging, Fault }
}
"""

# v2 changes the fault element's logic (doubled abort probability) —
# a realistic policy tweak pushed without restarting anything
APP_V2 = """
element Fault2 {
    meta { abort_probability: 0.04; }
    on request { SELECT * FROM input WHERE rand() >= 0.04; }
    on response { SELECT * FROM input; }
}
app Shop {
    service A;
    service B;
    chain A -> B { Logging, Fault2 }
}
"""


@pytest.fixture(scope="module")
def hot_update_run():
    reset_rpc_ids()
    kube = MiniKube()
    controller = AdnController(kube, SCHEMA)
    kube.apply_adn_config("shop", APP_V1, "Shop")
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = controller.install_stack(sim, cluster, "A", "B")

    phase1 = ClosedLoopClient(
        sim, stack.call, concurrency=16, total_rpcs=2000
    ).run()
    log_len_before = len(
        stack.processors[0].element_state("Logging").table("log_tab")
    )

    # push the same-shape update (same chain length/placement) so the
    # controller hot-swaps in place; Fault -> Fault with new logic
    kube.apply_adn_config(
        "shop", APP_V2.replace("Fault2", "Fault"), "Shop"
    )
    still_same_stack = controller.installed[("A", "B")].stack is stack

    phase2 = ClosedLoopClient(
        sim, stack.call, concurrency=16, total_rpcs=2000, seed=2
    ).run()
    log_len_after = len(
        stack.processors[0].element_state("Logging").table("log_tab")
    )
    return {
        "phase1": phase1,
        "phase2": phase2,
        "log_before": log_len_before,
        "log_after": log_len_after,
        "in_place": still_same_stack,
    }


def test_hot_update_table(hot_update_run, benchmark):
    def report():
        run = hot_update_run
        return print_table(
            "Hot element update (Fault 2% -> 4%)",
            rows=["before update", "after update"],
            columns=["completed", "aborted"],
            cell=lambda row, col: float(
                getattr(
                    run["phase1" if row == "before update" else "phase2"],
                    col,
                )
            ),
        )

    bench_assert(benchmark, report)


def test_update_happened_in_place(hot_update_run, benchmark):
    def check():
        assert hot_update_run["in_place"]

    bench_assert(benchmark, check)


def test_no_traffic_lost(hot_update_run, benchmark):
    def check():
        assert hot_update_run["phase1"].completed == 2000
        assert hot_update_run["phase2"].completed == 2000

    bench_assert(benchmark, check)


def test_new_logic_took_effect(hot_update_run, benchmark):
    def check():
        before = hot_update_run["phase1"].aborted
        after = hot_update_run["phase2"].aborted
        # 2% -> 4%: abort count should roughly double
        assert after > before * 1.3, (before, after)
        return before, after

    bench_assert(benchmark, check)


def test_logger_state_carried_across(hot_update_run, benchmark):
    def check():
        assert hot_update_run["log_before"] > 0
        assert (
            hot_update_run["log_after"] > hot_update_run["log_before"]
        )

    bench_assert(benchmark, check)
