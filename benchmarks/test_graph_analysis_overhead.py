"""Analyzer overhead: interprocedural analysis cost vs graph size.

``repro graph --check`` runs in CI and at the developer's keystroke, so
the whole ADN600-606 suite — lowering, liveness, amplification, abstract
environment propagation across every boundary — has to stay interactive
on meshes far larger than the demos. This pins the scaling shape at
10/50/100 edges (the hotel mesh is 12).
"""

from repro.analysis.graph import analyze_graph
from repro.graph import MESH_SCHEMA, GraphBuilder, mesh_program

from bench_harness import bench_assert, print_table

EDGE_COUNTS = (10, 50, 100)
#: per-size wall budget (ms) — interactive even at 100 edges
BUDGET_MS = {10: 150.0, 50: 600.0, 100: 1200.0}
#: fan-out per layer: every service calls WIDTH children
WIDTH = 4


def synthetic_mesh(edge_count: int):
    """A layered DAG with exactly ``edge_count`` edges, WIDTH-wide
    fan-out, alternating chains, retries and admission — shaped like a
    real mesh so every rule has work to do."""
    builder = GraphBuilder(f"mesh-{edge_count}")
    frontier = ["s0"]
    serial = 1
    edges = 0
    while edges < edge_count:
        next_frontier = []
        for parent in frontier:
            for _ in range(WIDTH):
                if edges >= edge_count:
                    break
                child = f"s{serial}"
                serial += 1
                builder.edge(
                    parent,
                    child,
                    elements=(
                        ("Logging", "LbKeyHash")
                        if edges % 2 == 0
                        else ("Logging",)
                    ),
                    deadline_budget_ms=100.0,
                    max_attempts=2 if edges % 3 == 0 else 1,
                    per_attempt_timeout_ms=10.0,
                    breaker=True,
                    admission=edges % 4 == 0,
                    hash_fields=(
                        ("username", "obj_id") if edges % 4 == 0 else ()
                    ),
                )
                edges += 1
                next_frontier.append(child)
        frontier = next_frontier or frontier
    return builder.build()


def test_analysis_cost_scales_interactively(benchmark):
    program = mesh_program()
    timings = {}

    def run():
        for count in EDGE_COUNTS:
            graph = synthetic_mesh(count)
            assert len(graph.edges) == count
            analysis = analyze_graph(graph, program, MESH_SCHEMA)
            timings[count] = analysis.analysis_ms
            assert analysis.analysis_ms < BUDGET_MS[count], (
                f"{count} edges took {analysis.analysis_ms:.1f} ms "
                f"(budget {BUDGET_MS[count]:g} ms)"
            )
        print_table(
            "interprocedural analysis wall time by mesh size",
            rows=["analysis_ms"],
            columns=[f"{c} edges" for c in EDGE_COUNTS],
            cell=lambda row, col: timings[int(col.split()[0])],
            unit="ms",
        )

    bench_assert(benchmark, run)


def test_analysis_is_deterministic():
    """Same graph, same diagnostics, same bounds — the analyzer must be
    a pure function of its inputs (no iteration-order leakage)."""
    program = mesh_program()
    graph = synthetic_mesh(50)
    a = analyze_graph(graph, program, MESH_SCHEMA)
    b = analyze_graph(graph, program, MESH_SCHEMA)
    assert [d.message for d in a.diagnostics] == [
        d.message for d in b.diagnostics
    ]
    assert a.worst_amplification == b.worst_amplification
    assert a.worst_path == b.worst_path
    assert a.live == b.live
