"""Ablation of the compiler's six IR passes (§5.2): constant folding,
predicate pushdown, early-drop reordering, dead-field elimination,
cross-element fusion, and parallelization grouping.

The paper claims these rewrites are available *because* the DSL exposes
element semantics; this bench quantifies each on a drop-heavy chain
where reordering pays (an expensive payload element behind cheap
droppers)."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FunctionRegistry, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.ir.optimizer import OptimizerOptions
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

from bench_harness import SCHEMA, bench_assert, print_table

#: expensive payload work behind two droppers — reordering the droppers
#: ahead of it skips the compression for denied/faulted RPCs
CHAIN = ("Encryption", "Acl", "Fault")

VARIANTS = {
    "all optimizations": OptimizerOptions(),
    "no reorder": OptimizerOptions(reorder=False),
    "no parallelize": OptimizerOptions(parallelize=False),
    "no dead fields": OptimizerOptions(dead_fields=False),
    "no folding/pushdown": OptimizerOptions(
        constant_folding=False, predicate_pushdown=False
    ),
    "none": OptimizerOptions(
        constant_folding=False,
        predicate_pushdown=False,
        reorder=False,
        parallelize=False,
        dead_fields=False,
    ),
}


def run_variant(options) -> dict:
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry, options=options)
    decl = ChainDecl(src="A", dst="B", elements=CHAIN)
    chain = compiler.compile_chain(decl, program, SCHEMA)
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)

    def fields(rng, index):
        return {
            "payload": b"x" * 512,  # big enough that encryption costs
            "username": "usr2" if rng.random() < 0.5 else "usr1",
            "obj_id": index,
        }

    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=128,
        total_rpcs=3000,
        warmup_rpcs=300,
        fields_fn=fields,
    )
    metrics = client.run()
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    return {
        "order": chain.element_order,
        "stages": chain.ir.stages,
        "rate_krps": metrics.throughput_krps,
        "cpu_us_per_rpc": metrics.cpu_us_per_rpc(),
    }


@pytest.fixture(scope="module")
def ablation():
    results = {
        label: run_variant(options) for label, options in VARIANTS.items()
    }
    # cross-element fusion (paper Q2, opt-in) stacks on the other passes:
    # the fuse_elements IR pass merges the chain into one element
    results["all + fusion"] = run_variant(OptimizerOptions(fusion=True))
    return results


def test_ablation_table(ablation, benchmark):
    def report():
        return print_table(
            "Optimizer ablation (Encryption+ACL+Fault, 50% denials)",
            rows=list(ablation),
            columns=["rate_krps", "cpu_us_per_rpc"],
            cell=lambda row, col: ablation[row][col],
        )

    bench_assert(benchmark, report)


def test_reorder_moves_droppers_first(ablation, benchmark):
    def check():
        optimized = ablation["all optimizations"]["order"]
        baseline = ablation["no reorder"]["order"]
        assert baseline[0] == "Encryption"
        assert optimized[0] in ("Acl", "Fault")
        return optimized

    bench_assert(benchmark, check)


def test_reorder_improves_throughput(ablation, benchmark):
    def check():
        with_reorder = ablation["all optimizations"]["rate_krps"]
        without = ablation["no reorder"]["rate_krps"]
        assert with_reorder > without * 1.05, (with_reorder, without)
        return with_reorder / without

    bench_assert(benchmark, check)


def test_reorder_cuts_cpu(ablation, benchmark):
    def check():
        with_reorder = ablation["all optimizations"]["cpu_us_per_rpc"]
        without = ablation["no reorder"]["cpu_us_per_rpc"]
        assert with_reorder < without
        return without - with_reorder

    bench_assert(benchmark, check)


def test_droppers_share_a_parallel_stage(ablation, benchmark):
    def check():
        stages = ablation["all optimizations"]["stages"]
        assert any(len(stage) >= 2 for stage in stages)

    bench_assert(benchmark, check)


def test_unoptimized_still_correct(ablation, benchmark):
    def check():
        # optimizations change cost, never results: every variant serves
        # the full workload
        for label, cells in ablation.items():
            assert cells["rate_krps"] > 10, label

    bench_assert(benchmark, check)


def test_fusion_saves_dispatch(ablation, benchmark):
    def check():
        fused = ablation["all + fusion"]
        unfused = ablation["all optimizations"]
        # one element -> one dispatch, and never slower end-to-end
        assert len(fused["order"]) == 1
        assert fused["cpu_us_per_rpc"] < unfused["cpu_us_per_rpc"]
        assert fused["rate_krps"] >= unfused["rate_krps"]
        return unfused["cpu_us_per_rpc"] - fused["cpu_us_per_rpc"]

    bench_assert(benchmark, check)


def test_dead_fields_never_hurt(ablation, benchmark):
    def check():
        with_pass = ablation["all optimizations"]["cpu_us_per_rpc"]
        without = ablation["no dead fields"]["cpu_us_per_rpc"]
        # dead-field elimination only removes work; cost must not rise
        assert with_pass <= without * 1.01, (with_pass, without)
        return without - with_pass

    bench_assert(benchmark, check)
