"""Recovery disruption vs. state size (§5.2, extended to crashes).

The paper's claim for planned migration — "the system only needs to
migrate the new updates after the last migration", so disruption tracks
the delta backlog, not the state-table size — must survive *unplanned*
failures too: the checkpointer's warm standby already holds the folded
shadow when the machine dies, so the restore blackout pays only the
streamed-but-unfolded backlog plus a fixed flip.

Two sweeps over the crash-recovery scenario pin both halves:

* resident table size 100 -> 4000 rows, identical workload: the restore
  blackout must stay flat;
* crash later and later into the same workload (a growing un-folded
  backlog): the blackout must grow with the backlog it replays.
"""

import pytest

from repro.faults import default_crash_plan, run_recovery_scenario

from bench_harness import bench_assert, print_table

TABLE_SIZES = [100, 1000, 4000]
CRASH_TIMES_S = [0.004, 0.008, 0.016]

#: fold cadence pushed out of the run entirely so the backlog at the
#: crash is exactly what streamed since the start — the knob the second
#: sweep turns
NEVER_FOLD = 10**6


def run_for(table_rows: int, crash_at_s: float):
    return run_recovery_scenario(
        seed=2,
        total_rpcs=2500,
        table_rows=table_rows,
        fault_plan=default_crash_plan(seed=2, crash_at_s=crash_at_s),
        fold_every=NEVER_FOLD,
    )


@pytest.fixture(scope="module")
def size_sweep():
    return {
        rows: run_for(table_rows=rows, crash_at_s=0.008)
        for rows in TABLE_SIZES
    }


@pytest.fixture(scope="module")
def backlog_sweep():
    return {
        crash_at: run_for(table_rows=500, crash_at_s=crash_at)
        for crash_at in CRASH_TIMES_S
    }


def test_recovery_tables(size_sweep, backlog_sweep, benchmark):
    def report():
        print_table(
            "Restore blackout vs. resident table size (crash at 8 ms)",
            rows=[f"{rows} rows" for rows in TABLE_SIZES],
            columns=["restore_us", "replayed", "unavail_ms"],
            cell=lambda row, col: {
                "restore_us": size_sweep[int(row.split()[0])].report.restore_s
                * 1e6,
                "replayed": float(
                    size_sweep[int(row.split()[0])].report.deltas_replayed
                ),
                "unavail_ms": size_sweep[
                    int(row.split()[0])
                ].report.unavailability_s
                * 1e3,
            }[col],
        )
        return print_table(
            "Restore blackout vs. delta backlog (500 resident rows)",
            rows=[f"crash at {at * 1e3:.0f} ms" for at in CRASH_TIMES_S],
            columns=["restore_us", "replayed", "unavail_ms"],
            cell=lambda row, col: {
                "restore_us": backlog_sweep[
                    float(row.split()[2]) * 1e-3
                ].report.restore_s
                * 1e6,
                "replayed": float(
                    backlog_sweep[
                        float(row.split()[2]) * 1e-3
                    ].report.deltas_replayed
                ),
                "unavail_ms": backlog_sweep[
                    float(row.split()[2]) * 1e-3
                ].report.unavailability_s
                * 1e3,
            }[col],
        )

    bench_assert(benchmark, report)


def test_blackout_flat_in_table_size(size_sweep, benchmark):
    def check():
        blackouts = [
            size_sweep[rows].report.restore_s for rows in TABLE_SIZES
        ]
        # 40x more resident state, same blackout: nothing in the restore
        # path touches the table body
        assert max(blackouts) <= min(blackouts) * 1.2, blackouts
        # while the state itself did arrive
        for rows in TABLE_SIZES:
            assert size_sweep[rows].report.rows_restored >= rows

    bench_assert(benchmark, check)


def test_blackout_grows_with_backlog(backlog_sweep, benchmark):
    def check():
        replayed = [
            backlog_sweep[at].report.deltas_replayed for at in CRASH_TIMES_S
        ]
        blackouts = [
            backlog_sweep[at].report.restore_s for at in CRASH_TIMES_S
        ]
        # later crash => more un-folded deltas => longer replay
        assert replayed == sorted(replayed) and replayed[0] < replayed[-1], (
            replayed
        )
        assert blackouts == sorted(blackouts) and (
            blackouts[0] < blackouts[-1]
        ), blackouts

    bench_assert(benchmark, check)


def test_workload_survives_every_sweep_point(
    size_sweep, backlog_sweep, benchmark
):
    def check():
        for result in list(size_sweep.values()) + list(
            backlog_sweep.values()
        ):
            assert result.metrics.completed == result.total_rpcs
            assert result.metrics.aborted == 0

    bench_assert(benchmark, check)
